//! The tablet server (§3.3, §3.6, §3.8).
//!
//! One [`TabletServer`] owns a single log instance in the DFS, a set of
//! tablets (each with one multiversion index per column group), an
//! optional read buffer, a transaction manager and the checkpoint /
//! recovery machinery. Everything a server knows can be rebuilt from its
//! log — the log *is* the database.

use crate::checkpoint::{
    self, checkpoint_dir, index_file_name, CheckpointMeta, TableMeta, TabletMeta,
};
use crate::read_buffer::ReadBuffer;
use crate::segdir::SegmentDirectory;
use crate::spill::SpillConfig;
use crate::tablet::{TableState, TabletState};
use logbase_common::engine::{ScanItem, StorageEngine};
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::schema::{KeyRange, TableSchema, TabletDesc, TabletId};
use logbase_common::{Error, LogPtr, Lsn, Record, Result, RowKey, Timestamp, Value};
use logbase_coordination::{FencingToken, LockService, TimestampOracle};
use logbase_dfs::Dfs;
use logbase_index::IndexEntry;
use logbase_wal::{
    Compression, GroupCommitConfig, GroupCommitLog, LogConfig, LogEntryKind, LogWriter,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tablet-server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Server name; prefixes every DFS path the server writes.
    pub name: String,
    /// Log segment rotation threshold.
    pub segment_bytes: u64,
    /// Read-buffer budget in bytes; 0 disables the buffer (§3.6.1: the
    /// read buffer "is only an optional component").
    pub read_buffer_bytes: u64,
    /// Updates per column-group index that trigger an automatic
    /// checkpoint; 0 = checkpoint only on demand (§3.6.1).
    pub checkpoint_threshold: u64,
    /// Group-commit batching knobs (§3.7.2).
    pub group_commit: GroupCommitConfig,
    /// Per-batch log compression codec. Compressed and raw frames
    /// coexist in one log, so the setting can change across restarts
    /// without any migration of existing segments.
    pub wal_compression: Compression,
    /// When set, indexes spill to an LSM disk tier once over budget.
    pub spill: Option<SpillConfig>,
    /// Range scans coalesce pointer reads whose gap is below this many
    /// bytes into one DFS read (pays off after compaction clusters data).
    pub scan_coalesce_gap: u64,
    /// Worker threads for range/full scans: index probes fan out over
    /// tablets and record fetches fan out over coalesced segment runs,
    /// merging in key order. `0` = available parallelism; `1` = fully
    /// sequential scans. Results are byte-identical at any setting.
    pub scan_threads: usize,
    /// Read-buffer shard count (`0` = available parallelism). Each shard
    /// has its own lock + LRU instance, so concurrent point reads on
    /// different keys do not serialize on one global cache mutex.
    pub read_buffer_shards: usize,
    /// Complete checkpoints kept on DFS; older ones are pruned after
    /// each checkpoint and at startup. Recovery only ever reads the
    /// latest — the rest are bounded history. Minimum 1.
    pub retain_checkpoints: usize,
    /// When set, a cost-aware background compaction service starts with
    /// the server (see [`crate::scheduler`]); its rate limit is
    /// installed as the maintenance I/O budget.
    pub compaction_scheduler: Option<crate::scheduler::CompactionSchedulerConfig>,
}

impl ServerConfig {
    /// Paper-default configuration for a server named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ServerConfig {
            name: name.into(),
            segment_bytes: logbase_common::config::DEFAULT_SEGMENT_BYTES,
            read_buffer_bytes: 16 * 1024 * 1024,
            checkpoint_threshold: 0,
            group_commit: GroupCommitConfig::default(),
            wal_compression: Compression::None,
            spill: None,
            scan_coalesce_gap: 64 * 1024,
            scan_threads: 0,
            read_buffer_shards: 0,
            retain_checkpoints: 2,
            compaction_scheduler: None,
        }
    }

    /// Builder-style segment-size override.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Builder-style group-commit override.
    #[must_use]
    pub fn with_group_commit(mut self, group_commit: GroupCommitConfig) -> Self {
        self.group_commit = group_commit;
        self
    }

    /// Builder-style log-compression override.
    #[must_use]
    pub fn with_wal_compression(mut self, compression: Compression) -> Self {
        self.wal_compression = compression;
        self
    }

    /// Builder-style read-buffer override (0 disables).
    #[must_use]
    pub fn with_read_buffer(mut self, bytes: u64) -> Self {
        self.read_buffer_bytes = bytes;
        self
    }

    /// Builder-style checkpoint-threshold override.
    #[must_use]
    pub fn with_checkpoint_threshold(mut self, updates: u64) -> Self {
        self.checkpoint_threshold = updates;
        self
    }

    /// Builder-style spill-mode override.
    #[must_use]
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Builder-style checkpoint-retention override (clamped to ≥ 1).
    #[must_use]
    pub fn with_retain_checkpoints(mut self, keep: usize) -> Self {
        self.retain_checkpoints = keep.max(1);
        self
    }

    /// Builder-style scan-thread override (0 = available parallelism,
    /// 1 = sequential).
    #[must_use]
    pub fn with_scan_threads(mut self, threads: usize) -> Self {
        self.scan_threads = threads;
        self
    }

    /// Builder-style read-buffer shard-count override (0 = default).
    #[must_use]
    pub fn with_read_buffer_shards(mut self, shards: usize) -> Self {
        self.read_buffer_shards = shards;
        self
    }

    /// Builder-style background-compaction service override.
    #[must_use]
    pub fn with_compaction_scheduler(
        mut self,
        scheduler: crate::scheduler::CompactionSchedulerConfig,
    ) -> Self {
        self.compaction_scheduler = Some(scheduler);
        self
    }
}

/// Released tablet contents: `(column group, latest records)` pairs.
pub type TabletContents = Vec<(u16, Vec<ScanItem>)>;

/// Operational statistics of one server.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Total index entries across tablets and column groups (memory tier).
    pub index_entries: u64,
    /// Approximate index bytes (memory tier).
    pub index_bytes: u64,
    /// Read-buffer `(hits, misses)`.
    pub read_buffer: (u64, u64),
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Current log segment.
    pub log_segment: u32,
}

/// The LogBase tablet server.
pub struct TabletServer {
    pub(crate) dfs: Dfs,
    pub(crate) config: ServerConfig,
    pub(crate) log: GroupCommitLog,
    pub(crate) segdir: SegmentDirectory,
    pub(crate) tables: RwLock<HashMap<String, Arc<TableState>>>,
    pub(crate) read_buffer: Option<ReadBuffer>,
    pub(crate) oracle: TimestampOracle,
    pub(crate) locks: LockService,
    /// Transaction history recorder (isolation checking); `None` unless
    /// installed via [`TabletServer::set_history_recorder`]. The atomic
    /// flag keeps the disabled-state cost to one relaxed load.
    history: RwLock<Option<Arc<crate::history::HistoryRecorder>>>,
    history_enabled: AtomicBool,
    /// First-committer-wins validation switch; always on in production.
    /// Tests flip it off to seed lost-update anomalies the SI checker
    /// must catch.
    validate_writes: AtomicBool,
    ckpt_seq: AtomicU64,
    checkpoints_taken: AtomicU64,
    pub(crate) compactions_run: AtomicU64,
    /// Serializes checkpoint/compaction against each other.
    pub(crate) maintenance: Mutex<()>,
    /// Write barrier: every data write holds it shared across its
    /// [log append → index update] window; the checkpoint holds it
    /// exclusively while capturing the redo start position, so no log
    /// record below that position can be missing from the indexes being
    /// persisted (otherwise an acknowledged write could be lost — redo
    /// would start past it while the index checkpoint predates it).
    pub(crate) write_barrier: RwLock<()>,
    /// Fencing token of the server's registry session, when the cluster
    /// layer runs lease-based membership. Guards the log (via the
    /// writer's gate) and checkpoint/compaction DFS writes.
    fencing: RwLock<Option<FencingToken>>,
    secondary: crate::secondary::SecondaryRegistry,
    /// What startup GC did when this server was opened (all-zero for a
    /// freshly created server).
    gc_report: Mutex<crate::gc::GcReport>,
    /// Token bucket draining compaction/log-GC bulk I/O; `None` runs
    /// maintenance unthrottled.
    maintenance_limiter: RwLock<Option<Arc<logbase_common::RateLimiter>>>,
    /// Handle of the auto-started background compaction service.
    scheduler: Mutex<Option<crate::scheduler::SchedulerHandle>>,
}

impl TabletServer {
    /// Create a brand-new server (fresh log).
    pub fn create(dfs: Dfs, config: ServerConfig) -> Result<Arc<Self>> {
        Self::create_with(dfs, config, TimestampOracle::new(), LockService::new())
    }

    /// Create a new server sharing a cluster-wide oracle and lock service.
    pub fn create_with(
        dfs: Dfs,
        config: ServerConfig,
        oracle: TimestampOracle,
        locks: LockService,
    ) -> Result<Arc<Self>> {
        let log_prefix = format!("{}/log", config.name);
        let writer = Arc::new(LogWriter::create(
            dfs.clone(),
            LogConfig::new(&log_prefix)
                .with_segment_bytes(config.segment_bytes)
                .with_compression(config.wal_compression),
        )?);
        let server = Arc::new(Self::assemble(dfs, config, writer, oracle, locks));
        Self::start_services(&server);
        Ok(server)
    }

    fn assemble(
        dfs: Dfs,
        config: ServerConfig,
        writer: Arc<LogWriter>,
        oracle: TimestampOracle,
        locks: LockService,
    ) -> Self {
        let log_prefix = format!("{}/log", config.name);
        let read_buffer = (config.read_buffer_bytes > 0).then(|| {
            if config.read_buffer_shards == 0 {
                ReadBuffer::lru(config.read_buffer_bytes)
            } else {
                ReadBuffer::lru_sharded(config.read_buffer_bytes, config.read_buffer_shards)
            }
        });
        TabletServer {
            segdir: SegmentDirectory::new(log_prefix),
            log: GroupCommitLog::new(writer, config.group_commit.clone()),
            tables: RwLock::new(HashMap::new()),
            read_buffer,
            oracle,
            locks,
            history: RwLock::new(None),
            history_enabled: AtomicBool::new(false),
            validate_writes: AtomicBool::new(true),
            ckpt_seq: AtomicU64::new(0),
            checkpoints_taken: AtomicU64::new(0),
            compactions_run: AtomicU64::new(0),
            maintenance: Mutex::new(()),
            write_barrier: RwLock::new(()),
            fencing: RwLock::new(None),
            secondary: crate::secondary::SecondaryRegistry::default(),
            gc_report: Mutex::new(crate::gc::GcReport::default()),
            maintenance_limiter: RwLock::new(None),
            scheduler: Mutex::new(None),
            dfs,
            config,
        }
    }

    /// Install the configured maintenance rate limit and start the
    /// background compaction service, when the config asks for one.
    fn start_services(server: &Arc<Self>) {
        let Some(sched) = server.config.compaction_scheduler.clone() else {
            return;
        };
        server.set_maintenance_rate(sched.rate_limit_bytes_per_sec);
        let handle = crate::scheduler::start(server, sched);
        *server.scheduler.lock() = Some(handle);
    }

    /// Cap compaction/log-GC bulk I/O at `bytes_per_sec` (token bucket
    /// with a one-second burst); `None` removes the cap. Foreground
    /// reads and writes are never throttled.
    pub fn set_maintenance_rate(&self, bytes_per_sec: Option<u64>) {
        *self.maintenance_limiter.write() =
            bytes_per_sec.map(|bps| Arc::new(logbase_common::RateLimiter::per_sec(bps)));
    }

    /// DFS handle maintenance bulk I/O should go through: rate-limited
    /// when a maintenance budget is installed, the plain handle
    /// otherwise.
    pub(crate) fn maintenance_dfs(&self) -> Dfs {
        match &*self.maintenance_limiter.read() {
            Some(l) => self.dfs.rate_limited(Arc::clone(l)),
            None => self.dfs.clone(),
        }
    }

    /// Stop the background compaction service, if one is running
    /// (idempotent; also happens implicitly when the server drops).
    pub fn stop_scheduler(&self) {
        if let Some(handle) = self.scheduler.lock().take() {
            handle.stop();
        }
    }

    /// Sequence number of the currently open (append-target) log
    /// segment; everything below it is sealed.
    pub(crate) fn open_log_segment(&self) -> u32 {
        self.log.writer().current_segment()
    }

    /// Snapshot of the sorted-segment directory (scheduler input).
    pub(crate) fn sorted_snapshot(&self) -> Vec<(u32, String)> {
        self.segdir.snapshot()
    }

    /// Cumulative reads recorded against `segment` (scheduler input).
    pub(crate) fn segment_heat(&self, segment: u32) -> u64 {
        self.segdir.heat(segment)
    }

    /// The report from the startup GC pass [`TabletServer::open`] ran
    /// (orphans deleted, partial checkpoints removed, interrupted
    /// maintenance rolled forward or back).
    pub fn startup_gc_report(&self) -> crate::gc::GcReport {
        self.gc_report.lock().clone()
    }

    /// Audit this server's DFS files and return the unreachable ones
    /// (see [`crate::gc::fsck`]). Empty after a clean recovery.
    pub fn fsck(&self) -> Vec<String> {
        crate::gc::fsck(&self.dfs, &self.config.name, &self.segdir)
    }

    /// The server's metrics sink (shared with its DFS).
    pub fn metrics(&self) -> &MetricsHandle {
        self.dfs.metrics()
    }

    /// Install (or replace, after re-registration) the server's fencing
    /// token. Every log append from now on is admitted only while the
    /// token validates; a session expiry turns the server into a fenced
    /// zombie whose writes fail with `Error::Fenced`.
    pub fn set_fencing(&self, token: FencingToken) {
        *self.fencing.write() = Some(token.clone());
        let metrics = Arc::clone(self.metrics());
        self.log.writer().set_gate(Arc::new(move || {
            token.check().inspect_err(|_| {
                Metrics::incr(&metrics.fenced_writes_rejected);
            })
        }));
    }

    /// Check the fencing token (no-op when fencing is not configured).
    /// Maintenance paths (checkpoint, compaction) call this before
    /// touching DFS files outside the log append path.
    pub fn check_fenced(&self) -> Result<()> {
        if let Some(token) = self.fencing.read().clone() {
            token.check().inspect_err(|_| {
                Metrics::incr(&self.metrics().fenced_writes_rejected);
            })?;
        }
        Ok(())
    }

    /// The server's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The cluster timestamp oracle in use.
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// Install a transaction history recorder (isolation checking). The
    /// same recorder may be shared by every server of a cluster. Pass
    /// `None` to disable recording again.
    pub fn set_history_recorder(&self, rec: Option<Arc<crate::history::HistoryRecorder>>) {
        if let Some(rec) = &rec {
            // Versions at or below the current oracle position predate
            // the recorded history (setup writes, earlier epochs).
            rec.note_baseline(self.oracle.current());
        }
        self.history_enabled.store(rec.is_some(), Ordering::Release);
        *self.history.write() = rec;
    }

    /// The installed history recorder, if recording is on. Hot paths
    /// call this once per hook site; the disabled state costs a single
    /// relaxed atomic load.
    pub fn history_recorder(&self) -> Option<Arc<crate::history::HistoryRecorder>> {
        if !self.history_enabled.load(Ordering::Relaxed) {
            return None;
        }
        self.history.read().clone()
    }

    /// Whether first-committer-wins validation is on (always, outside
    /// checker self-tests).
    pub(crate) fn validation_enabled(&self) -> bool {
        self.validate_writes.load(Ordering::Relaxed)
    }

    /// Disable (or re-enable) commit validation. Exists solely so the SI
    /// checker's self-test can seed a lost-update anomaly and prove it
    /// detects one; never call this outside tests.
    #[doc(hidden)]
    pub fn set_validation_enabled_for_tests(&self, on: bool) {
        self.validate_writes.store(on, Ordering::Relaxed);
    }

    /// The underlying DFS handle.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Sequence number the *next* checkpoint will take. Restored from
    /// the latest checkpoint at recovery, so names derived from it never
    /// collide across server lifetimes (compaction uses it to name
    /// sorted-segment generations).
    pub(crate) fn next_checkpoint_seq(&self) -> u64 {
        self.ckpt_seq.load(Ordering::Relaxed) + 1
    }

    /// The secondary-index registry (§5 future-work extension).
    pub(crate) fn secondary(&self) -> &crate::secondary::SecondaryRegistry {
        &self.secondary
    }

    /// Resolve a pointer's segment id to its DFS file name (secondary
    /// index lookups fetch records the same way the primary path does).
    pub(crate) fn resolve_segment(&self, segment: u32) -> String {
        self.segdir.resolve(segment)
    }

    /// Direct access to the group-commit log — test-only hook used to
    /// forge partial transaction states (e.g. a write without its commit
    /// record) that the public API can never produce.
    #[doc(hidden)]
    pub fn log_for_tests(&self) -> &GroupCommitLog {
        &self.log
    }

    // ------------------------------------------------------------------
    // Schema & tablet management
    // ------------------------------------------------------------------

    /// Create a table and serve its whole key range as one tablet.
    /// The schema is logged (a DDL record), so it survives a crash even
    /// before the first checkpoint.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        self.log_schema(&schema)?;
        self.create_table_unlogged(schema)
    }

    pub(crate) fn create_table_unlogged(&self, schema: TableSchema) -> Result<()> {
        let name = schema.name.clone();
        let table = Arc::new(TableState::new(schema)?);
        let desc = TabletDesc {
            id: TabletId {
                table: name.clone(),
                range_index: 0,
            },
            range: KeyRange::all(),
        };
        table.add_tablet(Arc::new(self.new_tablet_state(desc, &table.schema)?));
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::Schema(format!("table {name} already exists")));
        }
        tables.insert(name, table);
        Ok(())
    }

    fn log_schema(&self, schema: &TableSchema) -> Result<()> {
        let schema_json = serde_json::to_string(schema)
            .map_err(|e| Error::Schema(format!("schema serialization failed: {e}")))?;
        self.log
            .append(&schema.name, LogEntryKind::Schema { schema_json })?;
        Ok(())
    }

    /// Register a table without tablets (the cluster layer assigns them).
    pub fn register_table(&self, schema: TableSchema) -> Result<()> {
        self.log_schema(&schema)?;
        let name = schema.name.clone();
        let table = Arc::new(TableState::new(schema)?);
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::Schema(format!("table {name} already exists")));
        }
        tables.insert(name, table);
        Ok(())
    }

    /// Assign a tablet to this server.
    pub fn assign_tablet(&self, desc: TabletDesc) -> Result<()> {
        let table = self.table(&desc.id.table)?;
        if table.tablet(desc.id.range_index).is_some() {
            return Err(Error::Schema(format!(
                "tablet {} already assigned",
                desc.id
            )));
        }
        table.add_tablet(Arc::new(self.new_tablet_state(desc, &table.schema)?));
        Ok(())
    }

    fn new_tablet_state(&self, desc: TabletDesc, schema: &TableSchema) -> Result<TabletState> {
        TabletState::new(
            desc,
            schema,
            self.config
                .spill
                .as_ref()
                .map(|cfg| (&self.dfs, cfg, self.config.name.as_str())),
        )
    }

    pub(crate) fn table(&self, name: &str) -> Result<Arc<TableState>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Schema(format!("unknown table {name}")))
    }

    /// Descriptors of the tablets this server serves for `table`.
    pub fn tablet_descs(&self, table: &str) -> Vec<TabletDesc> {
        self.table(table)
            .map(|t| {
                t.tablets_snapshot()
                    .iter()
                    .map(|tab| tab.desc.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Names of hosted tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------------
    // Data operations (§3.6)
    // ------------------------------------------------------------------

    /// Insert or update one record. Appends to the log (group-commit),
    /// then updates the in-memory index and read buffer (§3.6.1).
    pub fn put(&self, table: &str, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        let table_state = self.table(table)?;
        let tablet = table_state.route(&key)?;
        let index = Arc::clone(tablet.index(cg)?);
        // Reservation: transaction snapshots exclude this timestamp until
        // the index update below lands, so no snapshot reads a version
        // that is durable in the log but not yet visible in the index.
        let reservation = self.oracle.reserve();
        let ts = reservation.timestamp();
        let record = Record::put(key.clone(), cg, ts, value.clone());
        let barrier = self.write_barrier.read();
        let (_, ptr) = self.log.append(
            table,
            LogEntryKind::Write {
                txn_id: 0,
                tablet: tablet.desc.id.range_index,
                record,
            },
        )?;
        index.insert(key.clone(), ts, ptr)?;
        drop(barrier);
        drop(reservation);
        for sec in self.secondary.of(table, cg) {
            sec.insert(&key, ts, &value, ptr);
        }
        if let Some(rb) = &self.read_buffer {
            rb.put(&table_state.name, cg, &key, ts, Some(value));
        }
        Metrics::incr(&self.metrics().records_written);
        self.maybe_auto_checkpoint(&index)?;
        Ok(ts)
    }

    /// Ingest a record with an externally assigned version timestamp —
    /// the tablet-migration path: when a tablet moves between servers,
    /// the recipient re-appends the records to *its own* log (the
    /// paper's log-splitting, §3.8) while preserving their original
    /// commit timestamps so multiversion reads stay correct.
    pub fn ingest_record(
        &self,
        table: &str,
        cg: u16,
        key: RowKey,
        ts: Timestamp,
        value: Value,
    ) -> Result<()> {
        let table_state = self.table(table)?;
        let tablet = table_state.route(&key)?;
        let index = Arc::clone(tablet.index(cg)?);
        let record = Record::put(key.clone(), cg, ts, value);
        let barrier = self.write_barrier.read();
        let (_, ptr) = self.log.append(
            table,
            LogEntryKind::Write {
                txn_id: 0,
                tablet: tablet.desc.id.range_index,
                record,
            },
        )?;
        index.insert(key, ts, ptr)?;
        drop(barrier);
        self.oracle.advance_to(ts);
        Ok(())
    }

    /// Hand a tablet off: remove it from this server's serving set and
    /// return its descriptor plus the latest version of every record it
    /// holds (per column group), for the recipient to ingest.
    pub fn release_tablet(
        &self,
        table: &str,
        range_index: u32,
    ) -> Result<(TabletDesc, TabletContents)> {
        let table_state = self.table(table)?;
        let tablet = table_state.remove_tablet(range_index).ok_or_else(|| {
            Error::TabletNotServed(format!("{table}/{range_index} not served here"))
        })?;
        let mut contents = Vec::new();
        for (cg, index) in tablet.indexes.iter().enumerate() {
            let entries = index.range_latest_at(&tablet.desc.range, Timestamp::MAX, usize::MAX)?;
            let items = self.fetch_entries(entries)?;
            contents.push((cg as u16, items));
        }
        Ok((tablet.desc.clone(), contents))
    }

    /// Shrink a served tablet to `new_range`, pruning moved keys from
    /// its in-memory indexes (the donor side of a tablet handoff).
    pub fn resize_tablet(&self, table: &str, range_index: u32, new_range: KeyRange) -> Result<()> {
        let table_state = self.table(table)?;
        let tablet = table_state.replace_tablet_range(range_index, new_range.clone())?;
        for index in &tablet.indexes {
            index.retain_range(&new_range);
        }
        Ok(())
    }

    fn maybe_auto_checkpoint(&self, index: &crate::spill::SpillableIndex) -> Result<()> {
        let threshold = self.config.checkpoint_threshold;
        if threshold > 0 && index.mem().updates_since_checkpoint() >= threshold {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Latest visible value of `key` (§3.6.2).
    pub fn get(&self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.get_at(table, cg, key, Timestamp::MAX)
    }

    /// Value of `key` visible at `at` (multiversion read).
    pub fn get_at(&self, table: &str, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>> {
        let table_state = self.table(table)?;
        let tablet = table_state.route(key)?;
        let index = tablet.index(cg)?;
        let Some(vp) = index.latest_at(key, at)? else {
            return Ok(None);
        };
        Metrics::incr(&self.metrics().records_read);
        // Hot/cold accounting for the compaction scheduler: the visible
        // version's segment took read interest, cache hit or not.
        self.segdir.record_read(vp.ptr.segment);
        // Read-buffer hit only when it caches exactly the visible version.
        if let Some(rb) = &self.read_buffer {
            if let Some((ts, value)) = rb.get(&table_state.name, cg, key) {
                if ts == vp.ts {
                    Metrics::incr(&self.metrics().cache_hits);
                    return Ok(value);
                }
            }
            Metrics::incr(&self.metrics().cache_misses);
        }
        let entry =
            logbase_wal::read_entry_in(&self.dfs, &self.segdir.resolve(vp.ptr.segment), vp.ptr)?;
        let (record, _, _) = entry.as_write().ok_or_else(|| {
            Error::Corruption(format!(
                "index pointer {} does not address a write entry",
                vp.ptr
            ))
        })?;
        let value = record.value.clone();
        if let Some(rb) = &self.read_buffer {
            rb.put(&table_state.name, cg, key, vp.ts, value.clone());
        }
        Ok(value)
    }

    /// Version timestamp of the latest visible write of `key` (used by
    /// transaction validation; `None` when the key has no version).
    pub fn latest_version(&self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Timestamp>> {
        let table_state = self.table(table)?;
        let tablet = table_state.route(key)?;
        Ok(tablet.index(cg)?.latest(key)?.map(|vp| vp.ts))
    }

    /// Delete a record (§3.6.3): drop its index entries, then persist an
    /// invalidated log entry so the delete survives recovery.
    pub fn delete(&self, table: &str, cg: u16, key: &[u8]) -> Result<()> {
        let table_state = self.table(table)?;
        let tablet = table_state.route(key)?;
        let index = tablet.index(cg)?;
        let reservation = self.oracle.reserve();
        let ts = reservation.timestamp();
        let record = Record::tombstone(RowKey::copy_from_slice(key), cg, ts);
        let barrier = self.write_barrier.read();
        self.log.append(
            table,
            LogEntryKind::Write {
                txn_id: 0,
                tablet: tablet.desc.id.range_index,
                record,
            },
        )?;
        index.remove_key(key)?;
        drop(barrier);
        drop(reservation);
        if let Some(rb) = &self.read_buffer {
            rb.invalidate(&table_state.name, cg, key);
        }
        Ok(())
    }

    /// Range scan (§3.6.4): probe the index for the latest version of
    /// each key in `range`, then fetch the records from the log,
    /// coalescing adjacent pointers into shared DFS reads.
    pub fn range_scan(
        &self,
        table: &str,
        cg: u16,
        range: &KeyRange,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        self.range_scan_at(table, cg, range, Timestamp::MAX, limit)
    }

    /// Range scan at snapshot `at`.
    pub fn range_scan_at(
        &self,
        table: &str,
        cg: u16,
        range: &KeyRange,
        at: Timestamp,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        self.range_scan_at_threads(table, cg, range, at, limit, self.resolved_scan_threads())
    }

    /// Effective scan worker count (`scan_threads`, 0 = parallelism).
    fn resolved_scan_threads(&self) -> usize {
        match self.config.scan_threads {
            0 => logbase_common::config::default_parallelism(),
            n => n,
        }
    }

    /// [`TabletServer::range_scan_at`] with an explicit worker count.
    /// Index probes fan out over tablets and record fetches over
    /// coalesced segment runs; tablets serve disjoint sorted key ranges,
    /// so concatenating per-tablet results in range order *is* the key
    /// order merge, and results are byte-identical at any thread count
    /// (the benchmark ablation and scan-correctness tests rely on this).
    #[doc(hidden)]
    pub fn range_scan_at_threads(
        &self,
        table: &str,
        cg: u16,
        range: &KeyRange,
        at: Timestamp,
        limit: usize,
        threads: usize,
    ) -> Result<Vec<ScanItem>> {
        let table_state = self.table(table)?;
        let mut tablets = table_state.tablets_snapshot();
        tablets.sort_by(|a, b| a.desc.range.start.cmp(&b.desc.range.start));
        let threads = threads.max(1);
        let mut entries: Vec<IndexEntry> = Vec::new();
        if threads == 1 || tablets.len() <= 1 {
            for tablet in tablets {
                if entries.len() >= limit {
                    break;
                }
                let sub = intersect(range, &tablet.desc.range);
                if sub.is_empty() && sub.end.is_some() {
                    continue;
                }
                entries.extend(tablet.index(cg)?.range_latest_at(
                    &sub,
                    at,
                    limit - entries.len(),
                )?);
            }
        } else {
            // Parallel probe: each worker claims tablets off a shared
            // cursor and probes up to `limit` entries. `range_latest_at`
            // returns a key-ordered prefix, so per-tablet results
            // concatenated in range order and truncated to `limit`
            // equal the sequential early-stopping walk.
            let slots: Vec<Mutex<Option<Result<Vec<IndexEntry>>>>> =
                tablets.iter().map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            let workers = threads.min(tablets.len());
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let t = cursor.fetch_add(1, Ordering::Relaxed);
                        if t >= tablets.len() {
                            return;
                        }
                        let tablet = &tablets[t];
                        let sub = intersect(range, &tablet.desc.range);
                        if sub.is_empty() && sub.end.is_some() {
                            *slots[t].lock() = Some(Ok(Vec::new()));
                            continue;
                        }
                        let probed = tablet
                            .index(cg)
                            .and_then(|idx| idx.range_latest_at(&sub, at, limit));
                        *slots[t].lock() = Some(probed);
                    });
                }
            });
            for slot in slots {
                let probed = slot
                    .into_inner()
                    .expect("every tablet slot is filled by a worker")?;
                if entries.len() >= limit {
                    break;
                }
                let room = limit - entries.len();
                entries.extend(probed.into_iter().take(room));
            }
        }
        self.fetch_entries_threads(entries, threads)
    }

    /// Fetch the records behind a batch of index entries, preserving the
    /// input order in the result.
    fn fetch_entries(&self, entries: Vec<IndexEntry>) -> Result<Vec<ScanItem>> {
        self.fetch_entries_threads(entries, self.resolved_scan_threads())
    }

    /// [`TabletServer::fetch_entries`] with an explicit worker count.
    /// Pointers are sorted `(segment, offset)` and coalesced into runs
    /// (gap ≤ `scan_coalesce_gap`); each run is one batched DFS read
    /// that decodes all of its entries, and runs execute on a bounded
    /// worker pool. Result order is the input entry order regardless of
    /// which worker decoded which run.
    fn fetch_entries_threads(
        &self,
        entries: Vec<IndexEntry>,
        threads: usize,
    ) -> Result<Vec<ScanItem>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        // Plan reads: sort pointer order per segment, coalescing runs.
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| (entries[i].ptr.segment, entries[i].ptr.offset));
        let gap = self.config.scan_coalesce_gap;
        let mut runs: Vec<Vec<usize>> = Vec::new();
        for &i in &order {
            let e = &entries[i];
            let start_new = match runs.last().and_then(|r| r.last()) {
                Some(&prev) => {
                    let p = &entries[prev];
                    p.ptr.segment != e.ptr.segment
                        || e.ptr
                            .offset
                            .saturating_sub(p.ptr.offset + u64::from(p.ptr.len))
                            > gap
                }
                None => true,
            };
            if start_new {
                runs.push(Vec::new());
            }
            runs.last_mut().expect("just pushed").push(i);
        }
        // One batched DFS read per run; decode every entry in the window.
        let exec_run = |run: &[usize]| -> Result<Vec<(usize, ScanItem)>> {
            let seg = entries[run[0]].ptr.segment;
            self.segdir.record_read(seg);
            let name = self.segdir.resolve(seg);
            let start = entries[run[0]].ptr.offset;
            let last = &entries[*run.last().expect("non-empty run")];
            let end = last.ptr.offset + u64::from(last.ptr.len);
            let window = self.dfs.read(&name, start, end - start)?;
            let mut items = Vec::with_capacity(run.len());
            for &i in run {
                let e = &entries[i];
                let entry = logbase_wal::decode_entry_in_window(&window, start, e.ptr, &name)?;
                let (record, _, _) = entry.as_write().ok_or_else(|| {
                    Error::Corruption(format!("scan pointer {} is not a write", e.ptr))
                })?;
                if let Some(v) = record.value.clone() {
                    items.push((i, (e.key.clone(), e.ts, v)));
                }
            }
            Ok(items)
        };
        let workers = threads.max(1).min(runs.len());
        let mut out: Vec<Option<ScanItem>> = vec![None; entries.len()];
        if workers <= 1 {
            for run in &runs {
                for (i, item) in exec_run(run)? {
                    out[i] = Some(item);
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, ScanItem)>> =
                Mutex::new(Vec::with_capacity(entries.len()));
            std::thread::scope(|s| -> Result<()> {
                let mut handles = Vec::new();
                for _ in 0..workers {
                    handles.push(s.spawn(|| -> Result<()> {
                        loop {
                            let r = cursor.fetch_add(1, Ordering::Relaxed);
                            if r >= runs.len() {
                                return Ok(());
                            }
                            let items = exec_run(&runs[r])?;
                            collected.lock().extend(items);
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("scan fetch worker panicked")?;
                }
                Ok(())
            })?;
            for (i, item) in collected.into_inner() {
                out[i] = Some(item);
            }
        }
        Metrics::add(&self.metrics().records_read, entries.len() as u64);
        Ok(out.into_iter().flatten().collect())
    }

    /// Full table scan (§3.6.4): walk every segment, counting records
    /// whose stored version matches the current version in the index.
    /// Segments are scanned by a bounded worker pool
    /// (`ServerConfig::scan_threads`).
    pub fn full_scan(&self, table: &str, cg: u16) -> Result<u64> {
        self.full_scan_threads(table, cg, self.resolved_scan_threads())
    }

    /// [`TabletServer::full_scan`] with an explicit worker count.
    #[doc(hidden)]
    pub fn full_scan_threads(&self, table: &str, cg: u16, threads: usize) -> Result<u64> {
        let table_state = self.table(table)?;
        let log_prefix = format!("{}/log", self.config.name);
        let mut files: Vec<String> = self
            .dfs
            .list(&format!("{log_prefix}/segment-"))
            .into_iter()
            .collect();
        files.extend(self.segdir.snapshot().into_iter().map(|(_, name)| name));

        let scan_file = |file: &str| -> Result<u64> {
            let mut matched = 0u64;
            let mut reader = self.dfs.open_reader(file)?;
            loop {
                if reader.remaining() < logbase_common::codec::FRAME_HEADER_LEN as u64 {
                    break;
                }
                let header = reader.read_exact(logbase_common::codec::FRAME_HEADER_LEN as u64)?;
                let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
                if reader.remaining() < len {
                    break;
                }
                let payload = reader.read_exact(len)?;
                let Ok(entry) = logbase_wal::LogEntry::decode(payload) else {
                    continue;
                };
                if entry.table != table {
                    continue;
                }
                let Some((record, _, _)) = entry.as_write() else {
                    continue;
                };
                if record.meta.column_group != cg || record.is_tombstone() {
                    continue;
                }
                // Version-currency check against the index.
                let Ok(tablet) = table_state.route(&record.meta.key) else {
                    continue;
                };
                let Ok(index) = tablet.index(cg) else {
                    continue;
                };
                if index.latest(&record.meta.key)?.map(|vp| vp.ts) == Some(record.meta.timestamp) {
                    matched += 1;
                }
            }
            Ok(matched)
        };

        let workers = threads.max(1).min(files.len().max(1));
        let counter = AtomicU64::new(0);
        if workers <= 1 {
            for file in &files {
                counter.fetch_add(scan_file(file)?, Ordering::Relaxed);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| -> Result<()> {
                let mut handles = Vec::new();
                for _ in 0..workers {
                    handles.push(s.spawn(|| -> Result<()> {
                        loop {
                            let f = cursor.fetch_add(1, Ordering::Relaxed);
                            if f >= files.len() {
                                return Ok(());
                            }
                            let matched = scan_file(&files[f])?;
                            counter.fetch_add(matched, Ordering::Relaxed);
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("scan thread panicked")?;
                }
                Ok(())
            })?;
        }
        Ok(counter.load(Ordering::Relaxed))
    }

    // ------------------------------------------------------------------
    // Checkpoint & recovery (§3.8)
    // ------------------------------------------------------------------

    /// Take a checkpoint: persist every in-memory index to DFS index
    /// files plus a descriptor recording the covered log position.
    pub fn checkpoint(&self) -> Result<CheckpointMeta> {
        self.check_fenced()?;
        let _guard = self.maintenance.lock();
        self.checkpoint_inner()
    }

    /// Checkpoint body. Callers must hold the maintenance lock;
    /// compaction embeds its commit-point checkpoint under the *same*
    /// lock acquisition, which is what makes the sequence it records in
    /// the maintenance manifest ([`TabletServer::next_checkpoint_seq`])
    /// the sequence this function actually takes.
    pub(crate) fn checkpoint_inner(&self) -> Result<CheckpointMeta> {
        self.check_fenced()?;
        logbase_dfs::crash_point!(self.dfs, "checkpoint.begin");
        let seq = self.ckpt_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let dir = checkpoint_dir(&self.config.name, seq);
        // Capture the redo start BEFORE persisting indexes: entries
        // between this position and "now" may be both in the index files
        // and redone — redo is idempotent, so that is safe; the converse
        // (missed entries) would not be. The exclusive write-barrier
        // acquisition makes the capture atomic with respect to in-flight
        // writes: no log record below the captured position can still be
        // waiting for its index update.
        let (log_segment, log_offset, next_lsn) = {
            let _barrier = self.write_barrier.write();
            let (seg, off) = self.log.writer().position();
            (seg, off, self.log.writer().next_lsn())
        };

        let mut tables_meta = Vec::new();
        let tables: Vec<Arc<TableState>> = self.tables.read().values().cloned().collect();
        for table in &tables {
            let mut tablets_meta = Vec::new();
            for tablet in table.tablets_snapshot() {
                let mut index_files = Vec::new();
                for (cg, index) in tablet.indexes.iter().enumerate() {
                    index.flush_disk_tier()?;
                    let file = index_file_name(
                        &dir,
                        &table.schema.name,
                        tablet.desc.id.range_index,
                        cg as u16,
                    );
                    logbase_index::persist::save_index(&self.dfs, &file, index.mem())?;
                    logbase_dfs::crash_point!(self.dfs, "checkpoint.mid_index_files");
                    index.mem().reset_update_counter();
                    index_files.push(file);
                }
                tablets_meta.push(TabletMeta {
                    range_index: tablet.desc.id.range_index,
                    start: checkpoint::hex(&tablet.desc.range.start),
                    end: tablet.desc.range.end.as_ref().map(|e| checkpoint::hex(e)),
                    index_files,
                });
            }
            tables_meta.push(TableMeta {
                schema: table.schema.clone(),
                tablets: tablets_meta,
            });
        }
        let meta = CheckpointMeta {
            seq,
            next_lsn: next_lsn.0,
            log_segment,
            log_offset,
            max_timestamp: self.oracle.current().0,
            tables: tables_meta,
            sorted_segments: self.segdir.snapshot(),
            next_sorted: Some(self.segdir.next_sorted_id()),
        };
        logbase_dfs::crash_point!(self.dfs, "checkpoint.before_meta");
        checkpoint::write_meta(&self.dfs, &self.config.name, &meta)?;
        logbase_dfs::crash_point!(self.dfs, "checkpoint.after_meta");
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        // Bound on-DFS history: older complete checkpoints are dead
        // weight once this descriptor is durable.
        logbase_dfs::crash_point!(self.dfs, "checkpoint.before_prune");
        crate::gc::prune_checkpoints(&self.dfs, &self.config.name, self.config.retain_checkpoints)?;
        Ok(meta)
    }

    /// Open (recover) a server from its DFS state: load the latest
    /// checkpoint's index files, then redo the log tail (§3.8). Works
    /// with no checkpoint at all by scanning the entire log.
    pub fn open(dfs: Dfs, config: ServerConfig) -> Result<Arc<Self>> {
        Self::open_with(dfs, config, TimestampOracle::new(), LockService::new())
    }

    /// [`TabletServer::open`] sharing a cluster oracle and lock service.
    pub fn open_with(
        dfs: Dfs,
        config: ServerConfig,
        oracle: TimestampOracle,
        locks: LockService,
    ) -> Result<Arc<Self>> {
        let log_prefix = format!("{}/log", config.name);
        let meta = checkpoint::latest_checkpoint(&dfs, &config.name)?;

        // The writer reopens at a placeholder LSN; redo determines the
        // real one and corrects it before any append happens.
        let writer = Arc::new(LogWriter::reopen(
            dfs.clone(),
            LogConfig::new(&log_prefix)
                .with_segment_bytes(config.segment_bytes)
                .with_compression(config.wal_compression),
            Lsn(1),
        )?);
        let server = Self::assemble(dfs.clone(), config, Arc::clone(&writer), oracle, locks);

        let (start_segment, start_offset, mut max_lsn, mut max_ts) = match &meta {
            Some(m) => {
                server.ckpt_seq.store(m.seq, Ordering::Relaxed);
                server.segdir.restore(m.sorted_segments.clone());
                // The persisted allocation cursor outranks what restore()
                // inferred: a crashed compaction may have burned ids whose
                // mappings never reached a checkpoint, and spilled LSM
                // values durably encode ids — reuse would repoint them.
                if let Some(n) = m.next_sorted {
                    server.segdir.advance_next_sorted(n);
                }
                for tm in &m.tables {
                    let table = Arc::new(TableState::new(tm.schema.clone())?);
                    for tablet_meta in &tm.tablets {
                        let desc = tablet_meta.to_desc(&tm.schema.name)?;
                        let tablet = Arc::new(server.new_tablet_state(desc, &tm.schema)?);
                        for (cg, file) in tablet_meta.index_files.iter().enumerate() {
                            let loaded = logbase_index::persist::load_index(&dfs, file)?;
                            tablet.indexes[cg].mem().replace_all(loaded.scan_all());
                        }
                        table.add_tablet(tablet);
                    }
                    server.tables.write().insert(tm.schema.name.clone(), table);
                }
                (
                    m.log_segment,
                    m.log_offset,
                    m.next_lsn.saturating_sub(1),
                    m.max_timestamp,
                )
            }
            None => (0, 0, 0, 0),
        };

        // Startup GC: converge the DFS image after any mid-maintenance
        // crash *before* redo touches the log — roll an interrupted
        // compaction forward or back from its manifest, drop partial
        // checkpoint directories, prune stale history, sweep orphan
        // sorted segments.
        let report = crate::gc::startup_gc(
            &dfs,
            &server.config.name,
            &server.segdir,
            meta.as_ref().map(|m| m.seq),
            server.config.retain_checkpoints,
        )?;
        *server.gc_report.lock() = report;

        // Redo pass: apply committed effects from the log tail.
        let mut pending: HashMap<u64, Vec<(String, u32, Record, LogPtr)>> = HashMap::new();
        logbase_wal::scan_log_tolerant(
            &dfs,
            &log_prefix,
            start_segment,
            start_offset,
            |ptr, entry| {
                max_lsn = max_lsn.max(entry.lsn.0);
                match entry.kind {
                    LogEntryKind::Write {
                        txn_id,
                        tablet,
                        record,
                    } => {
                        max_ts = max_ts.max(record.meta.timestamp.0);
                        if txn_id == 0 {
                            server.redo_record(&entry.table, tablet, &record, ptr)?;
                        } else {
                            pending.entry(txn_id).or_default().push((
                                entry.table.clone(),
                                tablet,
                                record,
                                ptr,
                            ));
                        }
                    }
                    LogEntryKind::Commit { txn_id, commit_ts } => {
                        max_ts = max_ts.max(commit_ts.0);
                        if let Some(writes) = pending.remove(&txn_id) {
                            for (table, tablet, record, ptr) in writes {
                                server.redo_record(&table, tablet, &record, ptr)?;
                            }
                        }
                    }
                    LogEntryKind::Abort { txn_id } => {
                        pending.remove(&txn_id);
                    }
                    LogEntryKind::Checkpoint { .. } => {}
                    LogEntryKind::Schema { schema_json } => {
                        // DDL redo: recreate the table (one full-range
                        // tablet) unless the checkpoint already restored it.
                        if let Ok(schema) = serde_json::from_str::<TableSchema>(&schema_json) {
                            if server.table(&schema.name).is_err() {
                                server.create_table_unlogged(schema)?;
                            }
                        }
                    }
                }
                Ok(())
            },
        )?;
        // Writes with no commit record are uncommitted: ignored (§3.8).

        server.oracle.advance_to(Timestamp(max_ts));
        writer.set_next_lsn(Lsn(max_lsn + 1));
        let server = Arc::new(server);
        Self::start_services(&server);
        Ok(server)
    }

    /// Apply one logged write during redo.
    pub(crate) fn redo_record(
        &self,
        table: &str,
        tablet_hint: u32,
        record: &Record,
        ptr: LogPtr,
    ) -> Result<()> {
        // Auto-create tables seen in the log but absent from the
        // checkpoint (recovery without checkpoint).
        const AUTO_CG_COUNT: u16 = 8;
        let table_state = match self.table(table) {
            Ok(t) => t,
            Err(_) => {
                // Recovery without a checkpoint: the log names the table
                // but its schema is unknown. Create a placeholder schema
                // with a fixed column-group count; real deployments
                // always recover schemas from the checkpoint descriptor.
                let cg_count = AUTO_CG_COUNT.max(record.meta.column_group + 1);
                let mut schema = TableSchema::single_group(table, &["c0"]);
                schema.column_groups = (0..cg_count)
                    .map(|i| logbase_common::schema::ColumnGroup {
                        id: i,
                        name: format!("cg{i}"),
                        columns: vec![logbase_common::schema::Column {
                            name: format!("c{i}"),
                        }],
                    })
                    .collect();
                self.create_table(schema)?;
                self.table(table)?
            }
        };
        let tablet = match table_state.tablet(tablet_hint) {
            Some(t) => t,
            None => table_state.route(&record.meta.key)?,
        };
        // Grow the tablet's index vector lazily for auto-created tables.
        let index = match tablet.index(record.meta.column_group) {
            Ok(i) => Arc::clone(i),
            Err(e) => return Err(e),
        };
        if record.is_tombstone() {
            index.remove_key(&record.meta.key)?;
        } else {
            index.insert(record.meta.key.clone(), record.meta.timestamp, ptr)?;
        }
        Ok(())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        let mut index_entries = 0u64;
        let mut index_bytes = 0u64;
        for table in self.tables.read().values() {
            for tablet in table.tablets_snapshot() {
                for index in &tablet.indexes {
                    let s = index.mem().stats();
                    index_entries += s.entries;
                    index_bytes += s.approx_bytes;
                }
            }
        }
        ServerStats {
            index_entries,
            index_bytes,
            read_buffer: self
                .read_buffer
                .as_ref()
                .map(ReadBuffer::stats)
                .unwrap_or((0, 0)),
            checkpoints: self.checkpoints_taken.load(Ordering::Relaxed),
            compactions: self.compactions_run.load(Ordering::Relaxed),
            log_segment: self.log.writer().current_segment(),
        }
    }
}

fn intersect(a: &KeyRange, b: &KeyRange) -> KeyRange {
    let start = if a.start >= b.start {
        a.start.clone()
    } else {
        b.start.clone()
    };
    let end = match (&a.end, &b.end) {
        (Some(x), Some(y)) => Some(if x <= y { x.clone() } else { y.clone() }),
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (None, None) => None,
    };
    KeyRange { start, end }
}

/// [`StorageEngine`] adapter binding a [`TabletServer`] to one table, so
/// the benchmark harness can drive LogBase and the baselines uniformly.
pub struct LogBaseEngine {
    server: Arc<TabletServer>,
    table: String,
}

impl LogBaseEngine {
    /// Wrap `server`, routing engine calls to `table`.
    pub fn new(server: Arc<TabletServer>, table: impl Into<String>) -> Self {
        LogBaseEngine {
            server,
            table: table.into(),
        }
    }

    /// The wrapped server.
    pub fn server(&self) -> &Arc<TabletServer> {
        &self.server
    }
}

impl StorageEngine for LogBaseEngine {
    fn put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        self.server.put(&self.table, cg, key, value)
    }

    fn get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.server.get(&self.table, cg, key)
    }

    fn get_at(&self, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>> {
        self.server.get_at(&self.table, cg, key, at)
    }

    fn delete(&self, cg: u16, key: &[u8]) -> Result<()> {
        self.server.delete(&self.table, cg, key)
    }

    fn range_scan(&self, cg: u16, range: &KeyRange, limit: usize) -> Result<Vec<ScanItem>> {
        self.server.range_scan(&self.table, cg, range, limit)
    }

    fn full_scan(&self, cg: u16) -> Result<u64> {
        self.server.full_scan(&self.table, cg)
    }

    fn sync(&self) -> Result<()> {
        self.server.checkpoint().map(|_| ())
    }

    fn engine_name(&self) -> &'static str {
        "logbase"
    }
}
