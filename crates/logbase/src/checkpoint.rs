//! Checkpoint metadata (§3.8).
//!
//! A checkpoint persists two things: (1) index files — snapshots of the
//! in-memory indexes — and (2) a metadata descriptor recording the log
//! position (segment, offset) and LSN whose effects the index files
//! cover, plus the schema/tablet assignment and the sorted-segment
//! directory. Checkpoints live under `<server>/ckpt/<seq>/`; `meta.json`
//! is written *last*, so its presence implies a complete checkpoint.

use logbase_common::schema::{KeyRange, TableSchema, TabletDesc, TabletId};
use logbase_common::{Error, Result, RowKey};
use logbase_dfs::Dfs;
use serde::{Deserialize, Serialize};

/// Hex-encode arbitrary key bytes for JSON metadata.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decode [`hex`].
pub fn unhex(s: &str) -> Result<Vec<u8>> {
    if s.len() % 2 != 0 {
        return Err(Error::Corruption(format!("odd-length hex string: {s}")));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| Error::Corruption(format!("bad hex byte in {s}")))
        })
        .collect()
}

/// One tablet's persisted description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct TabletMeta {
    /// Range index within the table.
    pub range_index: u32,
    /// Hex-encoded inclusive start key.
    pub start: String,
    /// Hex-encoded exclusive end key (`None` = unbounded).
    pub end: Option<String>,
    /// Index file per column group (cg order), relative DFS names.
    pub index_files: Vec<String>,
}

impl TabletMeta {
    /// Reconstruct the tablet descriptor.
    pub fn to_desc(&self, table: &str) -> Result<TabletDesc> {
        Ok(TabletDesc {
            id: TabletId {
                table: table.to_string(),
                range_index: self.range_index,
            },
            range: KeyRange {
                start: RowKey::from(unhex(&self.start)?),
                end: match &self.end {
                    Some(e) => Some(RowKey::from(unhex(e)?)),
                    None => None,
                },
            },
        })
    }
}

/// One table's persisted description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct TableMeta {
    /// Full schema.
    pub schema: TableSchema,
    /// Tablets served at checkpoint time.
    pub tablets: Vec<TabletMeta>,
}

/// The checkpoint descriptor.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// First LSN *not* covered by the index files (redo starts here).
    pub next_lsn: u64,
    /// Log segment of the redo start position.
    pub log_segment: u32,
    /// Offset within that segment.
    pub log_offset: u64,
    /// Highest commit timestamp issued before the checkpoint.
    pub max_timestamp: u64,
    /// Hosted tables.
    pub tables: Vec<TableMeta>,
    /// Sorted-segment directory (`id → file name`).
    pub sorted_segments: Vec<(u32, String)>,
    /// Next sorted-segment id to allocate. `None` for descriptors
    /// written before this field existed; recovery then falls back to
    /// the floor inferred from `sorted_segments`, which stays correct
    /// as long as no allocated-but-retired id is outstanding.
    pub next_sorted: Option<u32>,
}

/// Directory of checkpoint `seq` under `server_prefix`.
pub fn checkpoint_dir(server_prefix: &str, seq: u64) -> String {
    format!("{server_prefix}/ckpt/{seq:010}")
}

/// Name of a tablet/cg index file within a checkpoint directory.
pub fn index_file_name(dir: &str, table: &str, range_index: u32, cg: u16) -> String {
    format!("{dir}/idx-{table}-{range_index}-{cg}")
}

/// Persist the descriptor (the final step of a checkpoint).
pub fn write_meta(dfs: &Dfs, server_prefix: &str, meta: &CheckpointMeta) -> Result<()> {
    let name = format!("{}/meta.json", checkpoint_dir(server_prefix, meta.seq));
    let body = serde_json::to_vec_pretty(meta)
        .map_err(|e| Error::Corruption(format!("checkpoint serialization failed: {e}")))?;
    dfs.create(&name)?;
    dfs.append(&name, &body)?;
    dfs.seal(&name)?;
    Ok(())
}

/// Find and load the most recent complete checkpoint, if any.
pub fn latest_checkpoint(dfs: &Dfs, server_prefix: &str) -> Result<Option<CheckpointMeta>> {
    let metas: Vec<String> = dfs
        .list(&format!("{server_prefix}/ckpt/"))
        .into_iter()
        .filter(|n| n.ends_with("/meta.json"))
        .collect();
    let Some(name) = metas.last() else {
        return Ok(None);
    };
    let raw = dfs.read_all(name)?;
    let meta: CheckpointMeta = serde_json::from_slice(&raw)
        .map_err(|e| Error::Corruption(format!("{name}: bad checkpoint descriptor: {e}")))?;
    Ok(Some(meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn sample(seq: u64) -> CheckpointMeta {
        CheckpointMeta {
            seq,
            next_lsn: 500,
            log_segment: 3,
            log_offset: 4096,
            max_timestamp: 777,
            tables: vec![TableMeta {
                schema: TableSchema::single_group("users", &["profile"]),
                tablets: vec![TabletMeta {
                    range_index: 0,
                    start: String::new(),
                    end: Some(hex(&42u64.to_be_bytes())),
                    index_files: vec!["srv/ckpt/0000000001/idx-users-0-0".into()],
                }],
            }],
            sorted_segments: vec![(0x8000_0000, "srv/sorted/gen1/seg-0".into())],
            next_sorted: Some(0x8000_0001),
        }
    }

    #[test]
    fn hex_round_trip() {
        for bytes in [vec![], vec![0u8], vec![0xde, 0xad, 0xbe, 0xef]] {
            assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        }
        assert!(unhex("abc").is_err());
        assert!(unhex("zz").is_err());
    }

    #[test]
    fn meta_round_trips_through_dfs() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let meta = sample(1);
        write_meta(&dfs, "srv", &meta).unwrap();
        let loaded = latest_checkpoint(&dfs, "srv").unwrap().unwrap();
        assert_eq!(loaded, meta);
    }

    #[test]
    fn latest_checkpoint_picks_highest_seq() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        write_meta(&dfs, "srv", &sample(1)).unwrap();
        write_meta(&dfs, "srv", &sample(2)).unwrap();
        write_meta(&dfs, "srv", &sample(10)).unwrap();
        assert_eq!(latest_checkpoint(&dfs, "srv").unwrap().unwrap().seq, 10);
    }

    #[test]
    fn no_checkpoint_returns_none() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        assert!(latest_checkpoint(&dfs, "srv").unwrap().is_none());
    }

    #[test]
    fn incomplete_checkpoint_is_invisible() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        // Index files written but meta.json missing (crash mid-checkpoint).
        dfs.create("srv/ckpt/0000000007/idx-users-0-0").unwrap();
        assert!(latest_checkpoint(&dfs, "srv").unwrap().is_none());
    }

    #[test]
    fn descriptor_without_next_sorted_still_parses() {
        // A descriptor written before the field existed still loads
        // (recovery then infers the allocation floor from the entries).
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let mut meta = sample(4);
        meta.next_sorted = None;
        write_meta(&dfs, "srv", &meta).unwrap();
        let loaded = latest_checkpoint(&dfs, "srv").unwrap().unwrap();
        assert_eq!(loaded.next_sorted, None);
    }

    #[test]
    fn tablet_meta_reconstructs_desc() {
        let meta = sample(1);
        let desc = meta.tables[0].tablets[0].to_desc("users").unwrap();
        assert_eq!(desc.id.range_index, 0);
        assert!(desc.range.contains(&1u64.to_be_bytes()));
        assert!(!desc.range.contains(&100u64.to_be_bytes()));
    }
}
