//! Table and tablet state held by a tablet server.

use crate::spill::{SpillConfig, SpillableIndex};
use logbase_common::schema::{TableSchema, TabletDesc};
use logbase_common::{Error, Result};
use logbase_dfs::Dfs;
use parking_lot::RwLock;
use std::sync::Arc;

/// One tablet being served: its key range plus one multiversion index
/// per column group (§3.5: "tablet servers build a multiversion index
/// ... for each column group in a tablet").
pub struct TabletState {
    /// Identity and key range.
    pub desc: TabletDesc,
    /// Index per column group, `cg` id order.
    pub indexes: Vec<Arc<SpillableIndex>>,
}

impl TabletState {
    /// Build tablet state with one index per column group of `schema`.
    pub fn new(
        desc: TabletDesc,
        schema: &TableSchema,
        spill: Option<(&Dfs, &SpillConfig, &str)>,
    ) -> Result<Self> {
        let mut indexes = Vec::with_capacity(schema.column_groups.len());
        for cg in &schema.column_groups {
            indexes.push(Arc::new(match spill {
                Some((dfs, cfg, server)) => SpillableIndex::with_spill(
                    dfs.clone(),
                    &format!(
                        "{server}/spill/{}/{}/{}",
                        desc.id.table, desc.id.range_index, cg.id
                    ),
                    cfg,
                )?,
                None => SpillableIndex::in_memory(),
            }));
        }
        Ok(TabletState { desc, indexes })
    }

    /// Index for column group `cg`.
    pub fn index(&self, cg: u16) -> Result<&Arc<SpillableIndex>> {
        self.indexes.get(cg as usize).ok_or_else(|| {
            Error::Schema(format!("tablet {} has no column group {cg}", self.desc.id))
        })
    }
}

/// One table hosted (fully or partly) on a tablet server.
pub struct TableState {
    /// Table name (shared with read-buffer keys).
    pub name: Arc<str>,
    /// Schema (column groups).
    pub schema: TableSchema,
    /// Tablets of this table served here.
    pub tablets: RwLock<Vec<Arc<TabletState>>>,
}

impl TableState {
    /// New table with no tablets assigned yet.
    pub fn new(schema: TableSchema) -> Result<Self> {
        schema.validate()?;
        Ok(TableState {
            name: Arc::from(schema.name.as_str()),
            schema,
            tablets: RwLock::new(Vec::new()),
        })
    }

    /// The tablet whose range contains `key`.
    pub fn route(&self, key: &[u8]) -> Result<Arc<TabletState>> {
        self.tablets
            .read()
            .iter()
            .find(|t| t.desc.range.contains(key))
            .cloned()
            .ok_or_else(|| {
                Error::TabletNotServed(format!(
                    "{}: no local tablet covers key {:02x?}",
                    self.name,
                    &key[..key.len().min(16)]
                ))
            })
    }

    /// Tablet by range index.
    pub fn tablet(&self, range_index: u32) -> Option<Arc<TabletState>> {
        self.tablets
            .read()
            .iter()
            .find(|t| t.desc.id.range_index == range_index)
            .cloned()
    }

    /// Add a tablet (assignment from the master).
    pub fn add_tablet(&self, tablet: Arc<TabletState>) {
        self.tablets.write().push(tablet);
    }

    /// Remove a tablet (reassignment); returns it if present.
    pub fn remove_tablet(&self, range_index: u32) -> Option<Arc<TabletState>> {
        let mut tablets = self.tablets.write();
        let pos = tablets
            .iter()
            .position(|t| t.desc.id.range_index == range_index)?;
        Some(tablets.remove(pos))
    }

    /// Narrow (or widen) a served tablet's key range in place, reusing
    /// its indexes. The caller prunes the indexes afterwards.
    pub fn replace_tablet_range(
        &self,
        range_index: u32,
        new_range: logbase_common::schema::KeyRange,
    ) -> Result<Arc<TabletState>> {
        let mut tablets = self.tablets.write();
        let pos = tablets
            .iter()
            .position(|t| t.desc.id.range_index == range_index)
            .ok_or_else(|| {
                Error::TabletNotServed(format!("{}/{range_index} not served here", self.name))
            })?;
        let old = &tablets[pos];
        let replacement = Arc::new(TabletState {
            desc: TabletDesc {
                id: old.desc.id.clone(),
                range: new_range,
            },
            indexes: old.indexes.clone(),
        });
        tablets[pos] = Arc::clone(&replacement);
        Ok(replacement)
    }

    /// Snapshot of served tablets.
    pub fn tablets_snapshot(&self) -> Vec<Arc<TabletState>> {
        self.tablets.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_common::schema::{split_uniform, KeyRange, TabletId};

    fn schema() -> TableSchema {
        TableSchema::with_groups("t", &[("a", &["x"]), ("b", &["y"])])
    }

    #[test]
    fn tablet_has_index_per_column_group() {
        let t = TabletState::new(
            TabletDesc {
                id: TabletId {
                    table: "t".into(),
                    range_index: 0,
                },
                range: KeyRange::all(),
            },
            &schema(),
            None,
        )
        .unwrap();
        assert_eq!(t.indexes.len(), 2);
        assert!(t.index(0).is_ok());
        assert!(t.index(1).is_ok());
        assert!(matches!(t.index(2), Err(Error::Schema(_))));
    }

    #[test]
    fn routing_by_key_range() {
        let table = TableState::new(schema()).unwrap();
        for desc in split_uniform("t", 4, 1 << 32) {
            table.add_tablet(Arc::new(TabletState::new(desc, &schema(), None).unwrap()));
        }
        let k_low = 1u64.to_be_bytes();
        let k_high = ((1u64 << 32) - 1).to_be_bytes();
        assert_eq!(table.route(&k_low).unwrap().desc.id.range_index, 0);
        assert_eq!(table.route(&k_high).unwrap().desc.id.range_index, 3);
    }

    #[test]
    fn routing_fails_without_covering_tablet() {
        let table = TableState::new(schema()).unwrap();
        assert!(matches!(
            table.route(b"anything"),
            Err(Error::TabletNotServed(_))
        ));
    }

    #[test]
    fn add_remove_tablets() {
        let table = TableState::new(schema()).unwrap();
        for desc in split_uniform("t", 2, 1 << 32) {
            table.add_tablet(Arc::new(TabletState::new(desc, &schema(), None).unwrap()));
        }
        assert_eq!(table.tablets_snapshot().len(), 2);
        let removed = table.remove_tablet(0).unwrap();
        assert_eq!(removed.desc.id.range_index, 0);
        assert!(table.remove_tablet(0).is_none());
        assert!(table.tablet(1).is_some());
    }

    #[test]
    fn invalid_schema_is_rejected() {
        let bad = TableSchema::with_groups("t", &[("a", &["x"]), ("b", &["x"])]);
        assert!(TableState::new(bad).is_err());
    }
}
