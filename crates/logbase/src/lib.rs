//! **LogBase** — a log-structured database system where the log is the
//! *only* data repository (reproduction of Vo et al., PVLDB 5(10), 2012).
//!
//! A [`TabletServer`] records every write of every tablet it serves into
//! a single segmented log in the DFS and keeps an in-memory multiversion
//! index per column group pointing back into that log. Nothing is ever
//! written twice: the write path is *append to log → update index →
//! (optionally) populate the read buffer* (§3.6.1, Fig. 3 left).
//!
//! Feature map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1–3.2 data model & partitioning | [`partition`], schemas from `logbase_common::schema` |
//! | §3.4 log repository | `logbase_wal` + [`server`] |
//! | §3.5 in-memory multiversion index | `logbase_index` + [`spill`] (LSM-backed overflow) |
//! | §3.6 tablet serving (write/read/delete/scan) | [`server`], [`read_buffer`] |
//! | §3.6.5 log compaction | [`compaction`] |
//! | §3.7 transactions (MVOCC, snapshot isolation) | [`txn`] |
//! | §3.8 checkpoint & recovery | [`checkpoint`], recovery in [`server`] |
//!
//! # Quick start
//!
//! ```
//! use logbase::{ServerConfig, TabletServer};
//! use logbase_common::schema::TableSchema;
//! use logbase_dfs::{Dfs, DfsConfig};
//!
//! let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
//! let server = TabletServer::create(dfs, ServerConfig::new("srv-0")).unwrap();
//! server.create_table(TableSchema::single_group("users", &["profile"])).unwrap();
//!
//! let ts = server.put("users", 0, "alice".into(), "hello".into()).unwrap();
//! assert_eq!(server.get("users", 0, b"alice").unwrap().unwrap(), "hello");
//! assert!(server.get_at("users", 0, b"alice", ts.prev()).unwrap().is_none());
//! ```

pub mod checkpoint;
pub mod compaction;
pub mod endpoint;
pub mod failover;
pub mod gc;
pub mod history;
pub mod manifest;
pub mod partition;
pub mod read_buffer;
pub mod scheduler;
pub mod secondary;
pub mod server;
pub mod spill;
pub mod txn;

mod segdir;
pub mod tablet;

pub use compaction::{
    CompactionConfig, CompactionInputs, CompactionReport, LogGcConfig, LogGcReport,
};
pub use endpoint::{ServerEndpoint, TxnEndpoint, TxnSession};
pub use failover::{rebuild_range, RebuiltRecord, RebuiltTablet};
pub use gc::{fsck, GcReport};
pub use history::{Event, EventKind, HistoryRecorder, WriteRec};
pub use logbase_wal::GroupCommitConfig;
pub use manifest::MaintenanceManifest;
pub use read_buffer::ReadBuffer;
pub use scheduler::{CompactionScheduler, CompactionSchedulerConfig, SchedulerHandle, TickOutcome};
pub use segdir::SegmentDirectory;
pub use server::{ServerConfig, ServerStats, TabletServer};
pub use spill::SpillConfig;
pub use txn::{lock_key_for_tests, Transaction, TxnManager};

/// Registered crash-point sites, grouped by the maintenance path that
/// hosts them. The torture suite iterates these lists — a site added in
/// code but missing here fails the coverage test, and vice versa.
pub mod crash_sites {
    /// Sites inside [`crate::TabletServer::compact_with`], in program
    /// order.
    pub const COMPACTION: &[&str] = &[
        "compaction.begin",
        "compaction.after_rotate",
        "compaction.kv_split",
        "compaction.after_sorted_write",
        "compaction.ptr_rewrite",
        "compaction.before_manifest",
        "compaction.after_manifest",
        "compaction.after_checkpoint",
        "compaction.mid_delete",
        "compaction.before_manifest_remove",
    ];
    /// Sites inside the checkpoint body (also traversed by the
    /// checkpoint a compaction embeds), in program order.
    pub const CHECKPOINT: &[&str] = &[
        "checkpoint.begin",
        "checkpoint.mid_index_files",
        "checkpoint.before_meta",
        "checkpoint.after_meta",
        "checkpoint.before_prune",
    ];
    /// Sites inside the index spill path (memory tier merging out to
    /// the LSM disk tier).
    pub const SPILL: &[&str] = &["spill.before_merge_out", "spill.after_merge_out"];
    /// Sites inside the log write path: fires before each chunk of a
    /// group-commit batch reaches the DFS, so tests can crash a server
    /// with a batch partially appended (including mid-rotation).
    pub const WAL: &[&str] = &["wal.append_batch.chunk"];
    /// Sites specific to the log-GC reclaim pass (fires between the
    /// commit checkpoint and the input deletions of the force-rewrite
    /// compaction that reclaims mostly-dead segments).
    pub const LOG_GC: &[&str] = &["wal.gc.reclaim"];

    /// Every maintenance site the crash-matrix torture test must cover.
    pub fn maintenance() -> Vec<&'static str> {
        COMPACTION
            .iter()
            .chain(CHECKPOINT)
            .chain(LOG_GC)
            .copied()
            .collect()
    }
}
