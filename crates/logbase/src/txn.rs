//! Transaction management: MVOCC with write-lock validation (§3.7).
//!
//! LogBase combines multiversion data with optimistic concurrency
//! control:
//!
//! - **Read-only transactions** read a recent consistent snapshot (the
//!   timestamp issued before they began) and always commit.
//! - **Update transactions** run their read phase against their
//!   snapshot, then *validate*: write locks are acquired on the write
//!   set (in global key order — deadlock-free), and the version of every
//!   written record is compared against the in-memory indexes. Any
//!   change since the transaction read it (or since its snapshot, for
//!   blind-ish writes) fails validation — the **first-committer-wins**
//!   rule, which yields snapshot isolation (Guarantee 2).
//! - On success the writes plus a commit record are persisted through
//!   group commit (one batched log write, §3.7.2), the indexes are
//!   updated, and the locks are released. A crash before the commit
//!   record leaves the writes invisible (Guarantee 3: atomicity).
//!
//! When a [`crate::history::HistoryRecorder`] is installed on the
//! server, every lifecycle step is recorded for the SI checker in
//! `crates/checker`.

use crate::history::{Event, WriteRec};
use crate::server::TabletServer;
use bytes::BufMut;
use logbase_common::{Error, LogPtr, Lsn, Record, Result, RowKey, Timestamp, Value};
use logbase_wal::LogEntryKind;
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// A cell addressed by a transaction: `(table, column group, key)`.
type CellId = (String, u16, RowKey);

/// Encode a cell id as a single lock key (table and cg length-prefixed so
/// distinct cells can never collide).
pub(crate) fn lock_key(cell: &CellId) -> RowKey {
    let mut b = bytes::BytesMut::with_capacity(cell.0.len() + cell.2.len() + 8);
    b.put_u32_le(cell.0.len() as u32);
    b.put_slice(cell.0.as_bytes());
    b.put_u16_le(cell.1);
    b.put_slice(&cell.2);
    b.freeze()
}

/// Test-only access to the lock-key encoding (property tests assert
/// injectivity and total order over arbitrary cells).
#[doc(hidden)]
pub fn lock_key_for_tests(table: &str, cg: u16, key: &[u8]) -> RowKey {
    lock_key(&(table.to_string(), cg, RowKey::copy_from_slice(key)))
}

/// An in-flight transaction. Created by [`TxnManager::begin`]; read and
/// write operations buffer locally until [`TxnManager::commit`].
pub struct Transaction {
    id: u64,
    snapshot: Timestamp,
    /// Version observed for each cell read (`None` = read as absent).
    reads: HashMap<CellId, Option<Timestamp>>,
    /// Buffered writes (`None` = delete).
    writes: BTreeMap<CellId, Option<Value>>,
}

impl Transaction {
    /// The transaction id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshot timestamp the read phase runs at.
    pub fn snapshot(&self) -> Timestamp {
        self.snapshot
    }

    /// True when the transaction has buffered no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// The intended write set as history records.
    fn write_recs(&self) -> Vec<WriteRec> {
        self.writes
            .iter()
            .map(|(cell, v)| WriteRec::new(&cell.0, cell.1, &cell.2, v.as_deref()))
            .collect()
    }
}

/// Transaction API of a tablet server.
///
/// Implemented as an extension surface over [`TabletServer`] so the data
/// path (§3.6) and the transaction path (§3.7) stay separable, mirroring
/// the paper's layering (Fig. 1: Transaction Manager over Data Access
/// Manager).
pub struct TxnManager;

impl TxnManager {
    /// Default bound on lock acquisition during validation.
    pub const LOCK_TIMEOUT: Duration = Duration::from_secs(5);

    /// Begin a transaction at the current consistent snapshot.
    ///
    /// The snapshot comes from the oracle's in-flight watermark
    /// ([`logbase_coordination::TimestampOracle::snapshot`]), never the
    /// raw counter: a commit whose index updates are still being applied
    /// is excluded, so the snapshot is always fully consistent. The
    /// transaction id comes from the cluster-shared lock service —
    /// lock ownership is keyed by it, so per-server counters would
    /// alias owners across servers.
    pub fn begin(server: &TabletServer) -> Transaction {
        let txn = Transaction {
            id: server.locks.next_txn_id(),
            snapshot: server.oracle().snapshot(),
            reads: HashMap::new(),
            writes: BTreeMap::new(),
        };
        if let Some(rec) = server.history_recorder() {
            rec.record(Event::begin(txn.id, txn.snapshot));
        }
        txn
    }

    /// Transactional read: own writes first, then the snapshot.
    ///
    /// Fenced servers refuse transactional reads: after failover moved a
    /// tablet away, a lease-expired zombie still holds stale in-memory
    /// index state, and serving reads from it would let a read-only
    /// transaction commit against a snapshot missing the new server's
    /// writes.
    pub fn read(
        server: &TabletServer,
        txn: &mut Transaction,
        table: &str,
        cg: u16,
        key: &[u8],
    ) -> Result<Option<Value>> {
        server.check_fenced()?;
        let cell: CellId = (table.to_string(), cg, RowKey::copy_from_slice(key));
        if let Some(buffered) = txn.writes.get(&cell) {
            return Ok(buffered.clone());
        }
        let version = server.visible_version(table, cg, key, txn.snapshot)?;
        txn.reads.insert(cell, version);
        let value = server.get_at(table, cg, key, txn.snapshot)?;
        if let Some(rec) = server.history_recorder() {
            rec.record(Event::read(
                txn.id,
                txn.snapshot,
                table,
                cg,
                key,
                version,
                value.as_deref(),
            ));
        }
        Ok(value)
    }

    /// Buffer a transactional write.
    pub fn write(
        txn: &mut Transaction,
        table: &str,
        cg: u16,
        key: impl Into<RowKey>,
        value: impl Into<Value>,
    ) {
        txn.writes
            .insert((table.to_string(), cg, key.into()), Some(value.into()));
    }

    /// Buffer a transactional delete.
    pub fn delete(txn: &mut Transaction, table: &str, cg: u16, key: impl Into<RowKey>) {
        txn.writes.insert((table.to_string(), cg, key.into()), None);
    }

    /// Validate and commit. Returns the commit timestamp.
    ///
    /// Read-only transactions commit immediately (§3.7.1: they "always
    /// commit successfully"). Update transactions that lose validation
    /// return [`Error::TxnConflict`]; the caller restarts them.
    pub fn commit(server: &TabletServer, txn: Transaction) -> Result<Timestamp> {
        Self::commit_with_timeout(server, txn, Self::LOCK_TIMEOUT)
    }

    /// [`TxnManager::commit`] with an explicit lock-acquisition bound.
    /// Exposed so tests can exercise the lock-timeout abort path without
    /// waiting out the production timeout.
    #[doc(hidden)]
    pub fn commit_with_timeout(
        server: &TabletServer,
        txn: Transaction,
        lock_timeout: Duration,
    ) -> Result<Timestamp> {
        if txn.is_read_only() {
            logbase_common::metrics::Metrics::incr(&server.metrics().txn_commits);
            if let Some(rec) = server.history_recorder() {
                rec.record(Event::commit(
                    txn.id,
                    txn.snapshot,
                    txn.snapshot,
                    Vec::new(),
                ));
            }
            return Ok(txn.snapshot);
        }
        // Validation phase: write locks in global key order. `lock_all`
        // is all-or-nothing — on timeout every lock acquired so far is
        // rolled back inside the service, and on success the guard
        // releases all of them when dropped (including on the validation
        // -failure and log-append-error returns below).
        let lock_keys: Vec<RowKey> = txn.writes.keys().map(lock_key).collect();
        let Some(_locks) = server.locks.lock_all(&lock_keys, txn.id, lock_timeout) else {
            logbase_common::metrics::Metrics::incr(&server.metrics().txn_aborts);
            Self::record_abort(server, &txn, true, None);
            return Err(Error::TxnConflict {
                detail: "write-lock acquisition timed out".to_string(),
            });
        };
        if server.validation_enabled() {
            for cell in txn.writes.keys() {
                let current = server.latest_version(&cell.0, cell.1, &cell.2)?;
                let conflict = match txn.reads.get(cell) {
                    // Read before writing: the version must be unchanged.
                    Some(read_version) => current != *read_version,
                    // No prior read: first-committer-wins against the
                    // snapshot.
                    None => current.is_some_and(|ts| ts > txn.snapshot),
                };
                if conflict {
                    logbase_common::metrics::Metrics::incr(&server.metrics().txn_aborts);
                    Self::record_abort(server, &txn, true, None);
                    return Err(Error::TxnConflict {
                        detail: format!(
                            "cell {}/{}/{:02x?} changed since snapshot {}",
                            cell.0,
                            cell.1,
                            &cell.2[..cell.2.len().min(8)],
                            txn.snapshot
                        ),
                    });
                }
            }
        }

        // Write phase: persist writes + commit record in one batch. The
        // commit timestamp is a *reservation*: new snapshots stay below
        // it until the index updates finish applying, so no reader can
        // observe a half-applied commit.
        let reservation = server.oracle().reserve();
        let commit_ts = reservation.timestamp();
        let (entries, applied) = match Self::build_entries(server, &txn, commit_ts) {
            Ok(built) => built,
            Err(e) => {
                // Nothing was appended: a determinate abort (routing or
                // schema error — e.g. a write to a tablet this server
                // does not serve).
                logbase_common::metrics::Metrics::incr(&server.metrics().txn_aborts);
                Self::record_abort(server, &txn, true, None);
                return Err(e);
            }
        };
        let barrier = server.write_barrier.read();
        let positions = match server.log.append_all(entries) {
            Ok(p) => p,
            Err(e) => {
                // The batch may be partially durable (torn group write):
                // after a crash, replay decides. Record as indeterminate,
                // with the reserved timestamp so the checker can match a
                // post-recovery resurrection of these writes.
                drop(barrier);
                logbase_common::metrics::Metrics::incr(&server.metrics().txn_aborts);
                Self::record_abort(server, &txn, false, Some(commit_ts));
                return Err(e);
            }
        };

        // Reflect the committed writes in the indexes and read buffer.
        // The commit record is durable at this point, so any failure
        // below still leaves the transaction committed for recovery —
        // record it as indeterminate.
        if let Err(e) = Self::apply_index_updates(server, &applied, &positions, commit_ts) {
            drop(barrier);
            logbase_common::metrics::Metrics::incr(&server.metrics().txn_aborts);
            Self::record_abort(server, &txn, false, Some(commit_ts));
            return Err(e);
        }
        drop(barrier);
        // Index updates are applied: release the snapshot watermark, then
        // record the commit so any later-recorded read at snapshot ≥
        // commit_ts is guaranteed to find the Commit event present.
        drop(reservation);
        if let Some(rec) = server.history_recorder() {
            rec.record(Event::commit(
                txn.id,
                txn.snapshot,
                commit_ts,
                txn.write_recs(),
            ));
        }
        logbase_common::metrics::Metrics::incr(&server.metrics().txn_commits);
        Ok(commit_ts)
    }

    /// Abort a transaction (buffered writes are simply dropped — they
    /// were never persisted or indexed, and no locks are held outside
    /// [`TxnManager::commit`]).
    pub fn abort(server: &TabletServer, txn: Transaction) {
        Self::record_abort(server, &txn, true, None);
        drop(txn);
        logbase_common::metrics::Metrics::incr(&server.metrics().txn_aborts);
    }

    /// Resolve every buffered write to a log entry (plus the trailing
    /// commit record). Pure routing/schema resolution — nothing durable
    /// happens here, so an error is a determinate abort.
    #[allow(clippy::type_complexity)]
    fn build_entries(
        server: &TabletServer,
        txn: &Transaction,
        commit_ts: Timestamp,
    ) -> Result<(
        Vec<(String, LogEntryKind)>,
        Vec<(CellId, Option<Value>, u32)>,
    )> {
        let mut entries: Vec<(String, LogEntryKind)> = Vec::with_capacity(txn.writes.len() + 1);
        let mut applied: Vec<(CellId, Option<Value>, u32)> = Vec::with_capacity(txn.writes.len());
        for (cell, value) in &txn.writes {
            let table_state = server.table(&cell.0)?;
            let tablet = table_state.route(&cell.2)?;
            let record = match value {
                Some(v) => Record::put(cell.2.clone(), cell.1, commit_ts, v.clone()),
                None => Record::tombstone(cell.2.clone(), cell.1, commit_ts),
            };
            entries.push((
                cell.0.clone(),
                LogEntryKind::Write {
                    txn_id: txn.id,
                    tablet: tablet.desc.id.range_index,
                    record,
                },
            ));
            applied.push((cell.clone(), value.clone(), tablet.desc.id.range_index));
        }
        let first_table = entries[0].0.clone();
        entries.push((
            first_table,
            LogEntryKind::Commit {
                txn_id: txn.id,
                commit_ts,
            },
        ));
        Ok((entries, applied))
    }

    /// Reflect durably-committed writes in the in-memory indexes and
    /// read buffer.
    fn apply_index_updates(
        server: &TabletServer,
        applied: &[(CellId, Option<Value>, u32)],
        positions: &[(Lsn, LogPtr)],
        commit_ts: Timestamp,
    ) -> Result<()> {
        for ((cell, value, _tablet), (_, ptr)) in applied.iter().zip(positions.iter()) {
            let table_state = server.table(&cell.0)?;
            let tablet = table_state.route(&cell.2)?;
            let index = tablet.index(cell.1)?;
            match value {
                Some(v) => {
                    index.insert(cell.2.clone(), commit_ts, *ptr)?;
                    if let Some(rb) = &server.read_buffer {
                        rb.put(
                            &table_state.name,
                            cell.1,
                            &cell.2,
                            commit_ts,
                            Some(v.clone()),
                        );
                    }
                }
                None => {
                    index.remove_key(&cell.2)?;
                    if let Some(rb) = &server.read_buffer {
                        rb.invalidate(&table_state.name, cell.1, &cell.2);
                    }
                }
            }
        }
        Ok(())
    }

    fn record_abort(
        server: &TabletServer,
        txn: &Transaction,
        determinate: bool,
        reserved_ts: Option<Timestamp>,
    ) {
        if let Some(rec) = server.history_recorder() {
            let mut ev = Event::abort(txn.id, txn.snapshot, txn.write_recs(), determinate);
            if let Some(ts) = reserved_ts {
                ev.commit_ts = ts.0;
            }
            rec.record(ev);
        }
    }

    /// Run `body` as a transaction, retrying on conflict up to
    /// `max_retries` times (the paper restarts failed validators).
    pub fn run<T>(
        server: &TabletServer,
        max_retries: usize,
        mut body: impl FnMut(&mut Transaction) -> Result<T>,
    ) -> Result<(T, Timestamp)> {
        let mut attempts = 0;
        loop {
            let mut txn = Self::begin(server);
            match body(&mut txn) {
                Ok(out) => match Self::commit(server, txn) {
                    Ok(ts) => return Ok((out, ts)),
                    Err(Error::TxnConflict { .. }) if attempts < max_retries => {
                        attempts += 1;
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => {
                    // The body failed mid-flight: terminate the recorded
                    // history cleanly before surfacing the error.
                    Self::abort(server, txn);
                    return Err(e);
                }
            }
        }
    }
}

impl TabletServer {
    /// The version of `key` visible at `at` (`None` = absent). Used by
    /// the transaction read phase to record read versions.
    pub fn visible_version(
        &self,
        table: &str,
        cg: u16,
        key: &[u8],
        at: Timestamp,
    ) -> Result<Option<Timestamp>> {
        let table_state = self.table(table)?;
        let tablet = table_state.route(key)?;
        Ok(tablet.index(cg)?.latest_at(key, at)?.map(|vp| vp.ts))
    }
}
