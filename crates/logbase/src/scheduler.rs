//! Cost-aware background compaction scheduling.
//!
//! The scheduler turns compaction from an operator-invoked batch job
//! into a continuously running background service. Each tick it builds
//! a *run stack* for the policy layer ([`logbase_lsm::CompactionPolicy`]):
//! one [`RunStat`] per sorted generation (oldest first, bytes from DFS
//! file sizes, read heat from the segment directory's counters) plus
//! one arrival entry bundling the sealed log segments. The policy
//! returns a suffix to merge — newest generations plus the arrival —
//! which maps directly onto a [`CompactionInputs::Selected`] round.
//!
//! Two mechanisms keep the service polite to foreground load:
//!
//! - **Heat trimming.** Generations whose read count grew past
//!   [`CompactionSchedulerConfig::hot_reads_threshold`] since the last
//!   tick are excluded by shrinking the merge suffix, so read-hot data
//!   is not churned (and its read-buffer entries not invalidated)
//!   while it is being hammered.
//! - **Rate limiting.** When
//!   [`CompactionSchedulerConfig::rate_limit_bytes_per_sec`] is set,
//!   every bulk DFS read/write the compaction makes drains a shared
//!   token bucket ([`logbase_common::RateLimiter`]), so compaction
//!   yields bandwidth to foreground traffic instead of competing
//!   head-on.
//!
//! Every [`CompactionSchedulerConfig::gc_every`]-th tick additionally
//! runs a value-log GC pass ([`TabletServer::log_gc_with`]) to reclaim
//! blob segments left behind by key/value separation.
//!
//! [`start`] spawns the background thread (it holds only a `Weak`
//! server handle and exits when the server is dropped);
//! [`CompactionScheduler::tick`] is public so tests and benchmarks can
//! drive the exact same decision logic deterministically.

use crate::compaction::{CompactionConfig, CompactionInputs, CompactionReport, LogGcConfig};
use crate::server::TabletServer;
use logbase_common::metrics::Metrics;
use logbase_common::Result;
use logbase_lsm::{PolicyKind, RunKind, RunStat};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Background-compaction knobs ([`crate::ServerConfig`] carries an
/// optional copy; `Some` auto-starts the service).
#[derive(Debug, Clone)]
pub struct CompactionSchedulerConfig {
    /// Merge policy deciding when and how much to compact.
    pub policy: PolicyKind,
    /// Wall-clock pause between ticks of the background thread.
    pub interval: Duration,
    /// Token-bucket budget for compaction's bulk DFS traffic; `None`
    /// runs unthrottled.
    pub rate_limit_bytes_per_sec: Option<u64>,
    /// Key/value separation threshold passed to every scheduled round
    /// (see [`CompactionConfig::value_threshold`]).
    pub value_threshold: Option<usize>,
    /// Version retention passed to every scheduled round.
    pub max_versions: Option<usize>,
    /// Don't schedule anything until this many sealed log segments are
    /// waiting (avoids churning on a trickle).
    pub min_log_segments: usize,
    /// Live-byte fraction under which log GC reclaims a segment.
    pub gc_live_fraction: f64,
    /// Run a log-GC pass every this many ticks; 0 disables GC.
    pub gc_every: u64,
    /// A sorted generation whose reads since the last tick exceed this
    /// is considered hot and kept out of the merge.
    pub hot_reads_threshold: u64,
}

impl Default for CompactionSchedulerConfig {
    fn default() -> Self {
        CompactionSchedulerConfig {
            policy: PolicyKind::default(),
            interval: Duration::from_millis(250),
            rate_limit_bytes_per_sec: None,
            value_threshold: None,
            max_versions: None,
            min_log_segments: 1,
            gc_live_fraction: 0.25,
            gc_every: 0,
            hot_reads_threshold: u64::MAX,
        }
    }
}

/// One scheduling decision (returned by [`CompactionScheduler::tick`]
/// so tests can assert on what ran).
#[derive(Debug, Default)]
pub struct TickOutcome {
    /// The compaction that ran, if the policy asked for one.
    pub compaction: Option<CompactionReport>,
    /// Segments reclaimed by the log-GC pass, if one ran this tick.
    pub gc_reclaimed: u64,
    /// Sorted generations excluded from the merge for being read-hot.
    pub hot_generations_skipped: u64,
}

/// The decision engine. Owns no thread — [`start`] wraps it in one, and
/// tests call [`CompactionScheduler::tick`] directly.
pub struct CompactionScheduler {
    config: CompactionSchedulerConfig,
    policy: Box<dyn logbase_lsm::CompactionPolicy>,
    ticks: AtomicU64,
    /// Heat reading per sorted-segment id at the previous tick, for
    /// computing per-tick deltas.
    last_heat: Mutex<HashMap<u32, u64>>,
}

/// A sorted generation as the scheduler sees it.
struct GenStat {
    ids: Vec<u32>,
    bytes: u64,
    heat_delta: u64,
}

impl CompactionScheduler {
    /// Build a scheduler from its config.
    pub fn new(config: CompactionSchedulerConfig) -> Self {
        let policy = config.policy.build();
        CompactionScheduler {
            config,
            policy,
            ticks: AtomicU64::new(0),
            last_heat: Mutex::new(HashMap::new()),
        }
    }

    /// The config this scheduler runs with.
    pub fn config(&self) -> &CompactionSchedulerConfig {
        &self.config
    }

    /// One scheduling round: consult the policy over the current run
    /// stack and execute whatever it asks for, then (periodically) a
    /// log-GC pass. Synchronous, so benchmarks and tests get
    /// deterministic behavior by calling it directly.
    pub fn tick(&self, server: &TabletServer) -> Result<TickOutcome> {
        let mut outcome = TickOutcome::default();
        let tick_no = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        Metrics::incr(&server.metrics().compaction_sched_runs);

        let log_prefix = format!("{}/log", server.name());
        let open = server.open_log_segment();
        let sealed: Vec<(u32, u64)> = logbase_wal::list_segments(server.dfs(), &log_prefix)
            .into_iter()
            .filter(|(seq, _, _)| *seq < open)
            .map(|(seq, _, bytes)| (seq, bytes))
            .collect();

        // Group sorted segments into generations by directory prefix;
        // generation numbers come from the checkpoint sequence, so
        // ascending id order is age order (oldest first).
        let mut gens: Vec<(String, GenStat)> = Vec::new();
        let mut heat_now: HashMap<u32, u64> = HashMap::new();
        {
            let last = self.last_heat.lock();
            for (id, name) in server.sorted_snapshot() {
                let bytes = server.dfs().len(&name).unwrap_or(0);
                let heat = server.segment_heat(id);
                heat_now.insert(id, heat);
                let delta = heat.saturating_sub(last.get(&id).copied().unwrap_or(0));
                let gen_dir = name
                    .rsplit_once('/')
                    .map(|(d, _)| d.to_string())
                    .unwrap_or(name);
                match gens.last_mut() {
                    Some((dir, stat)) if *dir == gen_dir => {
                        stat.ids.push(id);
                        stat.bytes += bytes;
                        stat.heat_delta += delta;
                    }
                    _ => gens.push((
                        gen_dir,
                        GenStat {
                            ids: vec![id],
                            bytes,
                            heat_delta: delta,
                        },
                    )),
                }
            }
        }
        *self.last_heat.lock() = heat_now;

        if sealed.len() >= self.config.min_log_segments || gens.len() >= 2 {
            // Run stack for the policy: generations oldest→newest, then
            // the sealed-log bundle as the newest arrival.
            let mut stack: Vec<RunStat> = gens
                .iter()
                .enumerate()
                .map(|(i, (_, g))| RunStat {
                    id: i as u64,
                    bytes: g.bytes.max(1),
                    age: (gens.len() - i) as u64,
                    reads: g.heat_delta,
                    kind: RunKind::Sorted,
                })
                .collect();
            stack.push(RunStat {
                id: gens.len() as u64,
                bytes: sealed.iter().map(|(_, b)| *b).sum::<u64>().max(1),
                age: 0,
                reads: 0,
                kind: RunKind::Log,
            });
            if let Some(plan) = self.policy.plan(&stack) {
                // The suffix covers the arrival plus the newest
                // `suffix - 1` generations; shrink it until every
                // included generation is cold.
                let mut merge_gens = plan.suffix.saturating_sub(1).min(gens.len());
                while merge_gens > 0 {
                    let oldest_included = &gens[gens.len() - merge_gens].1;
                    if oldest_included.heat_delta <= self.config.hot_reads_threshold {
                        break;
                    }
                    merge_gens -= 1;
                    outcome.hot_generations_skipped += 1;
                }
                let sorted_ids: Vec<u32> = gens[gens.len() - merge_gens..]
                    .iter()
                    .flat_map(|(_, g)| g.ids.iter().copied())
                    .collect();
                let log_segments: Vec<u32> = sealed.iter().map(|(seq, _)| *seq).collect();
                if !log_segments.is_empty() || !sorted_ids.is_empty() {
                    let report = server.compact_with(&CompactionConfig {
                        max_versions: self.config.max_versions,
                        value_threshold: self.config.value_threshold,
                        inputs: CompactionInputs::Selected {
                            log_segments,
                            sorted: sorted_ids,
                        },
                        force_rewrite: false,
                    })?;
                    outcome.compaction = Some(report);
                }
            }
        }

        if self.config.gc_every > 0 && tick_no % self.config.gc_every == 0 {
            let gc = server.log_gc_with(&LogGcConfig {
                live_fraction: self.config.gc_live_fraction,
                ..LogGcConfig::default()
            })?;
            outcome.gc_reclaimed = gc.segments_reclaimed;
        }
        Ok(outcome)
    }
}

/// Handle to a running background scheduler. Dropping it (or the
/// server) stops the thread; [`SchedulerHandle::stop`] does so
/// synchronously.
pub struct SchedulerHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.signal();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }

    fn signal(&self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock() = true;
        cvar.notify_all();
    }
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        self.signal();
        if let Some(h) = self.thread.take() {
            // The handle can be dropped *on* the scheduler thread (the
            // thread's upgraded Arc may be the last one, so the server —
            // which owns this handle — drops there); joining yourself
            // deadlocks, so detach in that case.
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

/// Spawn the background scheduling thread for `server`. The thread
/// keeps only a `Weak` reference: once every strong handle is gone it
/// exits on its next tick, so the service never keeps a server alive.
pub fn start(server: &Arc<TabletServer>, config: CompactionSchedulerConfig) -> SchedulerHandle {
    let interval = config.interval;
    let scheduler = CompactionScheduler::new(config);
    let weak: Weak<TabletServer> = Arc::downgrade(server);
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("compaction-sched".into())
        .spawn(move || loop {
            {
                let (lock, cvar) = &*stop2;
                let mut stopped = lock.lock();
                if !*stopped {
                    cvar.wait_for(&mut stopped, interval);
                }
                if *stopped {
                    return;
                }
            }
            let Some(server) = weak.upgrade() else {
                return;
            };
            // Maintenance errors (e.g. fencing) are not fatal to the
            // service; the next tick retries.
            let _ = scheduler.tick(&server);
        })
        .expect("spawn compaction scheduler thread");
    SchedulerHandle {
        stop,
        thread: Some(thread),
    }
}
