//! Workload-driven vertical partitioning (§3.2).
//!
//! "Given a table schema with a set of columns, multiple ways of
//! grouping these columns into different partitions are enumerated. The
//! I/O cost of each assignment is computed based on the query workload
//! trace and the best assignment is selected as the vertical partitions
//! of the table schema."
//!
//! Cost model: a query touching any column of a group reads the whole
//! group (per accessed row) plus a fixed per-group access overhead (the
//! seek/lookup each extra physical partition costs), so
//! `cost(P) = Σ_q freq(q) · Σ_{g ∈ P, g ∩ cols(q) ≠ ∅} (bytes(g) + C)`.
//! Small schemas are solved exactly by enumerating set partitions; wider
//! schemas fall back to greedy agglomerative merging.

use logbase_common::schema::TableSchema;
use logbase_common::{Error, Result};
use std::collections::HashMap;

/// Per-column statistics from the schema/trace.
#[derive(Debug, Clone)]
pub struct ColumnStat {
    /// Column name.
    pub name: String,
    /// Average value width in bytes.
    pub avg_bytes: u64,
}

/// One query shape in the workload trace.
#[derive(Debug, Clone)]
pub struct QueryPattern {
    /// Columns the query accesses.
    pub columns: Vec<String>,
    /// How often it occurs in the trace.
    pub frequency: u64,
}

/// A candidate partitioning: groups of column indices.
type Grouping = Vec<Vec<usize>>;

/// Fixed per-group access overhead (bytes-equivalent of the extra seek
/// a query pays for every additional physical partition it touches).
pub const GROUP_ACCESS_OVERHEAD: u64 = 64;

/// I/O cost of `grouping` under the trace (lower is better).
pub fn partition_cost(grouping: &Grouping, stats: &[ColumnStat], workload: &[QueryPattern]) -> u64 {
    let name_to_idx: HashMap<&str, usize> = stats
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i))
        .collect();
    let group_bytes: Vec<u64> = grouping
        .iter()
        .map(|g| g.iter().map(|&i| stats[i].avg_bytes).sum())
        .collect();
    let mut col_group = vec![usize::MAX; stats.len()];
    for (gi, g) in grouping.iter().enumerate() {
        for &c in g {
            col_group[c] = gi;
        }
    }
    let mut cost = 0u64;
    for q in workload {
        let mut touched = vec![false; grouping.len()];
        for col in &q.columns {
            if let Some(&i) = name_to_idx.get(col.as_str()) {
                touched[col_group[i]] = true;
            }
        }
        let read: u64 = touched
            .iter()
            .zip(&group_bytes)
            .filter(|(t, _)| **t)
            .map(|(_, b)| *b + GROUP_ACCESS_OVERHEAD)
            .sum();
        cost += q.frequency * read;
    }
    cost
}

fn enumerate_partitions(n: usize) -> Vec<Grouping> {
    // Standard recursive set-partition enumeration (Bell(n) results).
    let mut out = Vec::new();
    let mut current: Grouping = Vec::new();
    fn recurse(i: usize, n: usize, current: &mut Grouping, out: &mut Vec<Grouping>) {
        if i == n {
            out.push(current.clone());
            return;
        }
        for g in 0..current.len() {
            current[g].push(i);
            recurse(i + 1, n, current, out);
            current[g].pop();
        }
        current.push(vec![i]);
        recurse(i + 1, n, current, out);
        current.pop();
    }
    recurse(0, n, &mut current, &mut out);
    out
}

fn greedy_partitioning(stats: &[ColumnStat], workload: &[QueryPattern]) -> Grouping {
    let mut grouping: Grouping = (0..stats.len()).map(|i| vec![i]).collect();
    let mut cost = partition_cost(&grouping, stats, workload);
    loop {
        let mut best: Option<(usize, usize, u64)> = None;
        for a in 0..grouping.len() {
            for b in a + 1..grouping.len() {
                let mut candidate = grouping.clone();
                let merged: Vec<usize> = candidate[a]
                    .iter()
                    .chain(candidate[b].iter())
                    .copied()
                    .collect();
                candidate[a] = merged;
                candidate.remove(b);
                let c = partition_cost(&candidate, stats, workload);
                if c < cost && best.is_none_or(|(_, _, bc)| c < bc) {
                    best = Some((a, b, c));
                }
            }
        }
        match best {
            Some((a, b, c)) => {
                let merged: Vec<usize> = grouping[a]
                    .iter()
                    .chain(grouping[b].iter())
                    .copied()
                    .collect();
                grouping[a] = merged;
                grouping.remove(b);
                cost = c;
            }
            None => return grouping,
        }
    }
}

/// Pick the best partitioning of `stats` under `workload`. Schemas with
/// at most `max_exhaustive` columns are solved exactly; wider ones use
/// greedy agglomerative merging.
pub fn optimal_partitioning(
    stats: &[ColumnStat],
    workload: &[QueryPattern],
    max_exhaustive: usize,
) -> Vec<Vec<String>> {
    let grouping = if stats.is_empty() {
        Vec::new()
    } else if stats.len() <= max_exhaustive {
        enumerate_partitions(stats.len())
            .into_iter()
            .min_by_key(|g| (partition_cost(g, stats, workload), g.len()))
            .expect("at least one partition exists")
    } else {
        greedy_partitioning(stats, workload)
    };
    let mut named: Vec<Vec<String>> = grouping
        .into_iter()
        .map(|g| {
            let mut cols: Vec<String> = g.into_iter().map(|i| stats[i].name.clone()).collect();
            cols.sort();
            cols
        })
        .collect();
    named.sort();
    named
}

/// Records a live query workload into the trace the partitioner
/// consumes (§3.2: "we have designed the vertical partitioning scheme
/// based on the trace of query workload").
///
/// Applications call [`TraceRecorder::record`] with the column set each
/// query touches; width statistics accumulate via
/// [`TraceRecorder::observe_width`]. [`TraceRecorder::recommend`] then
/// yields the cost-optimal column grouping for the observed trace.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    patterns: parking_lot::Mutex<HashMap<Vec<String>, u64>>,
    widths: parking_lot::Mutex<HashMap<String, (u64, u64)>>, // (total, count)
}

impl TraceRecorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one query touching `columns`.
    pub fn record(&self, columns: &[&str]) {
        let mut key: Vec<String> = columns.iter().map(|c| (*c).to_string()).collect();
        key.sort();
        key.dedup();
        *self.patterns.lock().entry(key).or_insert(0) += 1;
    }

    /// Record an observed value width for `column`.
    pub fn observe_width(&self, column: &str, bytes: u64) {
        let mut widths = self.widths.lock();
        let e = widths.entry(column.to_string()).or_insert((0, 0));
        e.0 += bytes;
        e.1 += 1;
    }

    /// The trace as [`QueryPattern`]s (sorted by descending frequency).
    pub fn patterns(&self) -> Vec<QueryPattern> {
        let mut out: Vec<QueryPattern> = self
            .patterns
            .lock()
            .iter()
            .map(|(cols, freq)| QueryPattern {
                columns: cols.clone(),
                frequency: *freq,
            })
            .collect();
        out.sort_by(|a, b| {
            b.frequency
                .cmp(&a.frequency)
                .then(a.columns.cmp(&b.columns))
        });
        out
    }

    /// Column statistics from observed widths; columns never observed
    /// get `default_bytes`.
    pub fn column_stats(&self, columns: &[&str], default_bytes: u64) -> Vec<ColumnStat> {
        let widths = self.widths.lock();
        columns
            .iter()
            .map(|c| {
                let avg = widths
                    .get(*c)
                    .filter(|(_, n)| *n > 0)
                    .map_or(default_bytes, |(total, n)| total / n);
                ColumnStat {
                    name: (*c).to_string(),
                    avg_bytes: avg,
                }
            })
            .collect()
    }

    /// Recommend a vertical partitioning for `columns` from the
    /// recorded trace.
    pub fn recommend(&self, columns: &[&str], default_bytes: u64) -> Vec<Vec<String>> {
        optimal_partitioning(
            &self.column_stats(columns, default_bytes),
            &self.patterns(),
            8,
        )
    }

    /// Total queries recorded.
    pub fn query_count(&self) -> u64 {
        self.patterns.lock().values().sum()
    }
}

/// Materialize a [`TableSchema`] from named column groups.
pub fn schema_from_groups(table: &str, groups: &[Vec<String>]) -> Result<TableSchema> {
    if groups.is_empty() {
        return Err(Error::Schema(format!(
            "table {table}: cannot build a schema from zero column groups"
        )));
    }
    let group_refs: Vec<(String, Vec<&str>)> = groups
        .iter()
        .enumerate()
        .map(|(i, cols)| (format!("cg{i}"), cols.iter().map(String::as_str).collect()))
        .collect();
    let borrowed: Vec<(&str, &[&str])> = group_refs
        .iter()
        .map(|(n, c)| (n.as_str(), c.as_slice()))
        .collect();
    let schema = TableSchema::with_groups(table, &borrowed);
    schema.validate()?;
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cols: &[(&str, u64)]) -> Vec<ColumnStat> {
        cols.iter()
            .map(|(n, b)| ColumnStat {
                name: (*n).to_string(),
                avg_bytes: *b,
            })
            .collect()
    }

    fn q(cols: &[&str], f: u64) -> QueryPattern {
        QueryPattern {
            columns: cols.iter().map(|c| (*c).to_string()).collect(),
            frequency: f,
        }
    }

    #[test]
    fn enumerate_counts_are_bell_numbers() {
        assert_eq!(enumerate_partitions(1).len(), 1);
        assert_eq!(enumerate_partitions(2).len(), 2);
        assert_eq!(enumerate_partitions(3).len(), 5);
        assert_eq!(enumerate_partitions(4).len(), 15);
        assert_eq!(enumerate_partitions(5).len(), 52);
    }

    #[test]
    fn disjoint_access_separates_groups() {
        // Queries never touch (a,b) and (c,d) together → two groups.
        let s = stats(&[("a", 100), ("b", 100), ("c", 100), ("d", 100)]);
        let w = vec![q(&["a", "b"], 10), q(&["c", "d"], 10)];
        let p = optimal_partitioning(&s, &w, 8);
        assert_eq!(
            p,
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string(), "d".to_string()]
            ]
        );
    }

    #[test]
    fn co_accessed_columns_merge() {
        // Every query touches all columns → one group is no worse and
        // fewer groups win the tie-break.
        let s = stats(&[("a", 10), ("b", 10), ("c", 10)]);
        let w = vec![q(&["a", "b", "c"], 5)];
        let p = optimal_partitioning(&s, &w, 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 3);
    }

    #[test]
    fn hot_narrow_query_gets_a_narrow_group() {
        // `views` is read constantly alone; `blob` is huge and rare.
        let s = stats(&[("views", 8), ("blob", 10_000)]);
        let w = vec![q(&["views"], 1000), q(&["views", "blob"], 1)];
        let p = optimal_partitioning(&s, &w, 8);
        assert_eq!(p.len(), 2, "blob must not ride along with views: {p:?}");
    }

    #[test]
    fn cost_is_monotone_in_frequency() {
        let s = stats(&[("a", 100), ("b", 100)]);
        let together: Grouping = vec![vec![0, 1]];
        let apart: Grouping = vec![vec![0], vec![1]];
        let narrow = vec![q(&["a"], 10)];
        assert!(partition_cost(&apart, &s, &narrow) < partition_cost(&together, &s, &narrow));
        // A wide query pays the per-group overhead once when the
        // columns share a group, twice when split.
        let wide = vec![q(&["a", "b"], 10)];
        assert_eq!(
            partition_cost(&apart, &s, &wide),
            partition_cost(&together, &s, &wide) + 10 * GROUP_ACCESS_OVERHEAD
        );
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_cases() {
        let s = stats(&[("a", 50), ("b", 50), ("c", 200), ("d", 10)]);
        let w = vec![q(&["a", "b"], 20), q(&["c"], 5), q(&["d"], 100)];
        let exact = optimal_partitioning(&s, &w, 8);
        let greedy_groups = greedy_partitioning(&s, &w);
        let exact_grouping_cost = {
            // Recompute cost of the exact answer through names.
            let name_idx: HashMap<&str, usize> = s
                .iter()
                .enumerate()
                .map(|(i, c)| (c.name.as_str(), i))
                .collect();
            let g: Grouping = exact
                .iter()
                .map(|cols| cols.iter().map(|c| name_idx[c.as_str()]).collect())
                .collect();
            partition_cost(&g, &s, &w)
        };
        assert_eq!(partition_cost(&greedy_groups, &s, &w), exact_grouping_cost);
    }

    #[test]
    fn wide_schema_uses_greedy_and_terminates() {
        let cols: Vec<(String, u64)> = (0..16).map(|i| (format!("c{i}"), 10)).collect();
        let s: Vec<ColumnStat> = cols
            .iter()
            .map(|(n, b)| ColumnStat {
                name: n.clone(),
                avg_bytes: *b,
            })
            .collect();
        let w: Vec<QueryPattern> = (0..8)
            .map(|i| q(&[&format!("c{}", 2 * i), &format!("c{}", 2 * i + 1)], 10))
            .collect();
        let p = optimal_partitioning(&s, &w, 8);
        // Pairs accessed together end up together.
        assert_eq!(p.len(), 8);
        assert!(p.iter().all(|g| g.len() == 2));
    }

    #[test]
    fn trace_recorder_counts_and_normalizes_patterns() {
        let rec = TraceRecorder::new();
        rec.record(&["b", "a"]);
        rec.record(&["a", "b", "b"]); // dedup + sort → same pattern
        rec.record(&["c"]);
        assert_eq!(rec.query_count(), 3);
        let pats = rec.patterns();
        assert_eq!(pats[0].columns, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(pats[0].frequency, 2);
        assert_eq!(pats[1].frequency, 1);
    }

    #[test]
    fn trace_recorder_width_statistics() {
        let rec = TraceRecorder::new();
        rec.observe_width("big", 1000);
        rec.observe_width("big", 3000);
        let stats = rec.column_stats(&["big", "unseen"], 64);
        assert_eq!(stats[0].avg_bytes, 2000);
        assert_eq!(stats[1].avg_bytes, 64);
    }

    #[test]
    fn trace_recorder_recommendation_matches_offline_optimum() {
        let rec = TraceRecorder::new();
        for _ in 0..10 {
            rec.record(&["a", "b"]);
            rec.record(&["c", "d"]);
        }
        for c in ["a", "b", "c", "d"] {
            rec.observe_width(c, 100);
        }
        let groups = rec.recommend(&["a", "b", "c", "d"], 64);
        assert_eq!(
            groups,
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string(), "d".to_string()]
            ]
        );
        // And the recommendation materializes into a valid schema.
        let schema = schema_from_groups("t", &groups).unwrap();
        assert_eq!(schema.column_groups.len(), 2);
    }

    #[test]
    fn schema_from_groups_builds_valid_schema() {
        let schema = schema_from_groups(
            "item",
            &[
                vec!["title".to_string()],
                vec!["price".to_string(), "stock".to_string()],
            ],
        )
        .unwrap();
        assert_eq!(schema.column_groups.len(), 2);
        assert_eq!(schema.group_of_column("stock").unwrap().id, 1);
        assert!(schema_from_groups("t", &[]).is_err());
    }
}
