//! A B-link tree (Lehman & Yao [17] in the paper's references): the
//! concurrent ordered index structure the paper says its multiversion
//! indexes resemble ("The indexes resemble Blink-trees to provide
//! efficient key range search and concurrency support", §3.5).
//!
//! Design (classic Lehman–Yao adapted to `RwLock` nodes):
//!
//! - Every node carries a **high key** and a **right-sibling link**.
//!   A traversal that lands on a node whose high key is below its search
//!   key simply *moves right* — no lock coupling on the way down, so
//!   readers never block behind a splitting writer.
//! - Writers hold **at most one node lock at a time**: a leaf split
//!   creates the right sibling, links it, and *releases the leaf before
//!   touching the parent*. Concurrent operations reach the new node
//!   through the right link until the separator is posted.
//! - Deletes are **lazy** (no merging): keys are removed in place and
//!   underfull nodes persist until the index is rebuilt — the same
//!   trade LogBase's own log makes (space reclaimed by compaction).
//!
//! The tree stores the same composite `(key, timestamp) → LogPtr`
//! entries as [`crate::MultiVersionIndex`]; `tests/` validates the two
//! against each other property-wise, and the `blink` bench compares
//! their throughput.

use logbase_common::{LogPtr, RowKey, Timestamp};
use parking_lot::RwLock;
use std::sync::Arc;

/// Composite index key.
pub type CompositeKey = (RowKey, Timestamp);

/// Maximum entries per node before it splits.
const ORDER: usize = 32;

type NodeRef = Arc<RwLock<Node>>;

struct Node {
    /// Sorted keys. For internal nodes, `keys[i]` is the smallest key
    /// reachable through `children[i + 1]` (children.len() == keys.len() + 1).
    keys: Vec<CompositeKey>,
    /// Leaf payloads (empty for internal nodes).
    vals: Vec<LogPtr>,
    /// Child links (empty for leaves).
    children: Vec<NodeRef>,
    /// Upper bound (exclusive) of this node's key space; `None` = +∞.
    high: Option<CompositeKey>,
    /// Right sibling at the same level.
    right: Option<NodeRef>,
    leaf: bool,
}

impl Node {
    fn new_leaf() -> Node {
        Node {
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
            high: None,
            right: None,
            leaf: true,
        }
    }

    /// True when `key` belongs to a node further right.
    fn past_high(&self, key: &CompositeKey) -> bool {
        match &self.high {
            Some(h) => key >= h,
            None => false,
        }
    }

    /// Child to follow for `key`.
    fn child_for(&self, key: &CompositeKey) -> NodeRef {
        let idx = self.keys.partition_point(|k| k <= key);
        Arc::clone(&self.children[idx])
    }

    /// The right sibling to hop to when `key` is past this node's high
    /// key, `None` when the key belongs here.
    fn past_high_right(&self, key: &CompositeKey) -> Option<NodeRef> {
        if self.past_high(key) {
            Some(Arc::clone(
                self.right
                    .as_ref()
                    .expect("past_high implies a right sibling"),
            ))
        } else {
            None
        }
    }
}

/// A concurrent B-link tree mapping `(key, ts)` to log pointers.
pub struct BlinkTree {
    root: RwLock<NodeRef>,
}

impl Default for BlinkTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BlinkTree {
    /// New empty tree.
    pub fn new() -> Self {
        BlinkTree {
            root: RwLock::new(Arc::new(RwLock::new(Node::new_leaf()))),
        }
    }

    /// Descend (lock-free except per-node read locks) to the leaf that
    /// may contain `key`, collecting the rightmost visited node per
    /// level as the ancestor stack for split propagation.
    fn descend(&self, key: &CompositeKey) -> (NodeRef, Vec<NodeRef>) {
        let mut stack = Vec::new();
        let mut current = Arc::clone(&self.root.read());
        loop {
            let next = {
                let guard = current.read();
                if guard.past_high(key) {
                    let right = guard
                        .right
                        .as_ref()
                        .map(Arc::clone)
                        .expect("past_high implies a right sibling");
                    drop(guard);
                    current = right;
                    continue;
                }
                if guard.leaf {
                    break;
                }
                stack.push(Arc::clone(&current));
                guard.child_for(key)
            };
            current = next;
        }
        (current, stack)
    }

    /// Insert or overwrite `(key, ts) → ptr`.
    pub fn insert(&self, key: RowKey, ts: Timestamp, ptr: LogPtr) {
        let composite = (key, ts);
        let (leaf, mut stack) = self.descend(&composite);
        let mut split = self.insert_into_leaf(leaf, &composite, ptr);
        // Propagate splits upward, one level at a time, holding one
        // lock at a time.
        while let Some((sep, right_ref)) = split {
            match stack.pop() {
                Some(parent) => {
                    split = self.insert_into_internal(parent, sep, right_ref);
                }
                None => {
                    self.grow_root(sep, right_ref);
                    split = None;
                }
            }
        }
    }

    fn insert_into_leaf(
        &self,
        mut leaf: NodeRef,
        composite: &CompositeKey,
        ptr: LogPtr,
    ) -> Option<(CompositeKey, NodeRef)> {
        // Move right *under the write lock* (one lock at a time): a
        // racing split between a lock-free check and the lock would
        // otherwise let the insert land left of its node's high key,
        // where no descent ever looks.
        loop {
            let right = {
                let mut guard = leaf.write();
                if let Some(r) = guard.past_high_right(composite) {
                    r
                } else {
                    debug_assert!(guard.leaf);
                    return match guard.keys.binary_search(composite) {
                        Ok(i) => {
                            guard.vals[i] = ptr;
                            None
                        }
                        Err(i) => {
                            guard.keys.insert(i, composite.clone());
                            guard.vals.insert(i, ptr);
                            if guard.keys.len() > ORDER {
                                Some(Self::split(&mut guard))
                            } else {
                                None
                            }
                        }
                    };
                }
            };
            leaf = right;
        }
    }

    fn insert_into_internal(
        &self,
        mut node: NodeRef,
        sep: CompositeKey,
        right_ref: NodeRef,
    ) -> Option<(CompositeKey, NodeRef)> {
        // Same write-locked move-right as the leaf case.
        loop {
            let right = {
                let mut guard = node.write();
                if let Some(r) = guard.past_high_right(&sep) {
                    r
                } else {
                    debug_assert!(!guard.leaf);
                    return match guard.keys.binary_search(&sep) {
                        Ok(_) => None, // separator already posted by a racing writer
                        Err(i) => {
                            guard.keys.insert(i, sep);
                            guard.children.insert(i + 1, right_ref);
                            if guard.keys.len() > ORDER {
                                Some(Self::split(&mut guard))
                            } else {
                                None
                            }
                        }
                    };
                }
            };
            node = right;
        }
    }

    /// Split a full node in place; returns `(separator, right sibling)`.
    fn split(guard: &mut Node) -> (CompositeKey, NodeRef) {
        let mid = guard.keys.len() / 2;
        let (sep, right) = if guard.leaf {
            let right_keys = guard.keys.split_off(mid);
            let right_vals = guard.vals.split_off(mid);
            let sep = right_keys[0].clone();
            (
                sep,
                Node {
                    keys: right_keys,
                    vals: right_vals,
                    children: Vec::new(),
                    high: guard.high.take(),
                    right: guard.right.take(),
                    leaf: true,
                },
            )
        } else {
            // The middle key moves up; right node gets keys after it.
            let mut right_keys = guard.keys.split_off(mid);
            let sep = right_keys.remove(0);
            let right_children = guard.children.split_off(mid + 1);
            (
                sep,
                Node {
                    keys: right_keys,
                    vals: Vec::new(),
                    children: right_children,
                    high: guard.high.take(),
                    right: guard.right.take(),
                    leaf: false,
                },
            )
        };
        let right_ref = Arc::new(RwLock::new(right));
        guard.high = Some(sep.clone());
        guard.right = Some(Arc::clone(&right_ref));
        (sep, right_ref)
    }

    /// Install a new root above a split old root.
    fn grow_root(&self, sep: CompositeKey, right_ref: NodeRef) {
        let mut root_slot = self.root.write();
        // The node we split is the subtree missing its parent; the
        // current root may already be higher (a racing grow). Walk down
        // never happens here: simply stack a new root over the current
        // one — correctness holds because the separator partitions the
        // old root's key space and the old root still links rightward.
        let old_root = Arc::clone(&root_slot);
        let reachable = {
            // If the separator's right sibling is already reachable from
            // the current root (a racing writer posted it), do nothing.
            let guard = old_root.read();
            !guard.leaf && guard.keys.binary_search(&sep).is_ok()
        };
        if reachable {
            return;
        }
        let new_root = Node {
            keys: vec![sep],
            vals: Vec::new(),
            children: vec![old_root, right_ref],
            high: None,
            right: None,
            leaf: false,
        };
        *root_slot = Arc::new(RwLock::new(new_root));
    }

    /// Exact lookup of one version.
    pub fn get(&self, key: &RowKey, ts: Timestamp) -> Option<LogPtr> {
        let composite = (key.clone(), ts);
        let (leaf, _) = self.descend(&composite);
        // The leaf may have split between descend and read: move right.
        let mut node = leaf;
        loop {
            let guard = node.read();
            if guard.past_high(&composite) {
                let right = Arc::clone(guard.right.as_ref().expect("sibling"));
                drop(guard);
                node = right;
                continue;
            }
            return match guard.keys.binary_search(&composite) {
                Ok(i) => Some(guard.vals[i]),
                Err(_) => None,
            };
        }
    }

    /// Latest version of `key` with `ts <= at`.
    pub fn latest_at(&self, key: &RowKey, at: Timestamp) -> Option<(Timestamp, LogPtr)> {
        // Collect the key's versions up to `at` and take the last.
        let mut best = None;
        self.scan_range(
            &(key.clone(), Timestamp::ZERO),
            Some(&(key.clone(), at.next())),
            |k, ptr| {
                if k.0 == key && k.1 <= at {
                    best = Some((k.1, *ptr));
                }
                true
            },
        );
        best
    }

    /// Remove one exact version. Returns whether it was present.
    pub fn remove(&self, key: &RowKey, ts: Timestamp) -> bool {
        let composite = (key.clone(), ts);
        let (mut leaf, _) = self.descend(&composite);
        loop {
            let right = {
                let mut guard = leaf.write();
                if let Some(r) = guard.past_high_right(&composite) {
                    r
                } else {
                    return match guard.keys.binary_search(&composite) {
                        Ok(i) => {
                            guard.keys.remove(i);
                            guard.vals.remove(i);
                            true
                        }
                        Err(_) => false,
                    };
                }
            };
            leaf = right;
        }
    }

    /// Visit entries in `[start, end)` in order; `f` returns `false` to
    /// stop. `end = None` scans to the tree's end.
    pub fn scan_range<F>(&self, start: &CompositeKey, end: Option<&CompositeKey>, mut f: F)
    where
        F: FnMut(&CompositeKey, &LogPtr) -> bool,
    {
        let (leaf, _) = self.descend(start);
        let mut node = leaf;
        loop {
            let next = {
                let guard = node.read();
                if guard.past_high(start) && guard.keys.is_empty() {
                    // Empty node past our key: just move right.
                    guard.right.as_ref().map(Arc::clone)
                } else {
                    let from = guard.keys.partition_point(|k| k < start);
                    for i in from..guard.keys.len() {
                        if let Some(e) = end {
                            if &guard.keys[i] >= e {
                                return;
                            }
                        }
                        if !f(&guard.keys[i], &guard.vals[i]) {
                            return;
                        }
                    }
                    guard.right.as_ref().map(Arc::clone)
                }
            };
            match next {
                Some(r) => node = r,
                None => return,
            }
        }
    }

    /// Total entries (O(n): walks the leaf chain).
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.scan_range(&(RowKey::new(), Timestamp::ZERO), None, |_, _| {
            n += 1;
            true
        });
        n
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = Arc::clone(&self.root.read());
        loop {
            let next = {
                let guard = node.read();
                if guard.leaf {
                    return d;
                }
                Arc::clone(&guard.children[0])
            };
            d += 1;
            node = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    fn ptr(n: u64) -> LogPtr {
        LogPtr::new(0, n, 8)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let t = BlinkTree::new();
        t.insert(key("a"), Timestamp(1), ptr(1));
        t.insert(key("a"), Timestamp(5), ptr(2));
        t.insert(key("b"), Timestamp(2), ptr(3));
        assert_eq!(t.get(&key("a"), Timestamp(1)), Some(ptr(1)));
        assert_eq!(t.get(&key("a"), Timestamp(5)), Some(ptr(2)));
        assert_eq!(t.get(&key("a"), Timestamp(9)), None);
        assert!(t.remove(&key("a"), Timestamp(1)));
        assert!(!t.remove(&key("a"), Timestamp(1)));
        assert_eq!(t.get(&key("a"), Timestamp(1)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_updates_pointer() {
        let t = BlinkTree::new();
        t.insert(key("k"), Timestamp(1), ptr(1));
        t.insert(key("k"), Timestamp(1), ptr(99));
        assert_eq!(t.get(&key("k"), Timestamp(1)), Some(ptr(99)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_keep_everything_reachable() {
        let t = BlinkTree::new();
        let n = 5_000u64;
        for i in 0..n {
            t.insert(key(&format!("k{:06}", (i * 37) % n)), Timestamp(i), ptr(i));
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.depth() > 1, "tree should have split");
        for i in (0..n).step_by(97) {
            assert_eq!(
                t.get(&key(&format!("k{:06}", (i * 37) % n)), Timestamp(i)),
                Some(ptr(i)),
                "entry {i} lost"
            );
        }
    }

    #[test]
    fn latest_at_picks_visible_version() {
        let t = BlinkTree::new();
        for ts in [2u64, 8, 5] {
            t.insert(key("k"), Timestamp(ts), ptr(ts));
        }
        assert_eq!(
            t.latest_at(&key("k"), Timestamp(8)),
            Some((Timestamp(8), ptr(8)))
        );
        assert_eq!(
            t.latest_at(&key("k"), Timestamp(7)),
            Some((Timestamp(5), ptr(5)))
        );
        assert_eq!(t.latest_at(&key("k"), Timestamp(1)), None);
        assert_eq!(t.latest_at(&key("zz"), Timestamp::MAX), None);
    }

    #[test]
    fn ordered_scan_with_bounds() {
        let t = BlinkTree::new();
        for i in 0..200u64 {
            t.insert(key(&format!("k{i:03}")), Timestamp(1), ptr(i));
        }
        let mut seen = Vec::new();
        t.scan_range(
            &(key("k050"), Timestamp::ZERO),
            Some(&(key("k060"), Timestamp::ZERO)),
            |k, _| {
                seen.push(String::from_utf8(k.0.to_vec()).unwrap());
                true
            },
        );
        assert_eq!(seen.len(), 10);
        assert_eq!(seen.first().map(String::as_str), Some("k050"));
        assert_eq!(seen.last().map(String::as_str), Some("k059"));
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_inserts_lose_nothing() {
        let t = Arc::new(BlinkTree::new());
        let threads: u64 = 8;
        let per_thread = 2_000u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per_thread {
                        t.insert(
                            key(&format!("{tid:02}-{i:06}")),
                            Timestamp(i),
                            ptr(tid << 32 | i),
                        );
                    }
                });
            }
        });
        assert_eq!(t.len(), (threads * per_thread) as usize);
        for tid in 0..threads {
            for i in (0..per_thread).step_by(211) {
                assert_eq!(
                    t.get(&key(&format!("{tid:02}-{i:06}")), Timestamp(i)),
                    Some(ptr(tid << 32 | i))
                );
            }
        }
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let t = Arc::new(BlinkTree::new());
        for i in 0..1_000u64 {
            t.insert(key(&format!("base-{i:05}")), Timestamp(1), ptr(i));
        }
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        t.insert(key(&format!("new-{tid}-{i:05}")), Timestamp(1), ptr(i));
                    }
                });
            }
            for _ in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in (0..1_000u64).step_by(7) {
                        // Pre-existing keys stay visible throughout.
                        assert_eq!(
                            t.get(&key(&format!("base-{i:05}")), Timestamp(1)),
                            Some(ptr(i))
                        );
                    }
                    let mut n = 0;
                    t.scan_range(&(key("base-"), Timestamp::ZERO), None, |_, _| {
                        n += 1;
                        true
                    });
                    assert!(n >= 1_000);
                });
            }
        });
        assert_eq!(t.len(), 5_000);
    }
}
