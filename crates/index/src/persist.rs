//! Index persistence: checkpoint index files in the DFS (§3.8).
//!
//! A persisted index file is a CRC-framed header (entry count) followed
//! by CRC-framed runs of serialized entries, sorted by `(key, ts)` —
//! which is the in-memory iteration order, so writing is a single pass.

use crate::mvindex::{IndexEntry, MultiVersionIndex};
use bytes::{BufMut, Bytes, BytesMut};
use logbase_common::codec;
use logbase_common::{Error, LogPtr, Result, RowKey, Timestamp};
use logbase_dfs::Dfs;

/// Entries per framed run. Runs bound the memory needed to decode and let
/// a torn final run be detected by its CRC.
const RUN_SIZE: usize = 4096;

fn encode_entry(buf: &mut BytesMut, e: &IndexEntry) {
    codec::put_bytes(buf, &e.key);
    buf.put_u64_le(e.ts.0);
    buf.put_u32_le(e.ptr.segment);
    buf.put_u64_le(e.ptr.offset);
    buf.put_u32_le(e.ptr.len);
}

fn decode_entry(src: &mut Bytes, ctx: &str) -> Result<IndexEntry> {
    let key = codec::get_bytes(src, ctx)?;
    let ts = Timestamp(codec::get_u64(src, ctx)?);
    let segment = codec::get_u32(src, ctx)?;
    let offset = codec::get_u64(src, ctx)?;
    let len = codec::get_u32(src, ctx)?;
    Ok(IndexEntry {
        key: RowKey::from(key),
        ts,
        ptr: LogPtr::new(segment, offset, len),
    })
}

/// Write a snapshot of `index` to the DFS file `name` (created fresh;
/// fails if it exists). Returns the number of entries written.
pub fn save_index(dfs: &Dfs, name: &str, index: &MultiVersionIndex) -> Result<u64> {
    let entries = index.scan_all();
    dfs.create(name)?;
    let mut out = BytesMut::new();
    let mut header = BytesMut::new();
    header.put_u64_le(entries.len() as u64);
    codec::encode_frame(&mut out, &header);

    let mut run = BytesMut::new();
    let mut in_run = 0usize;
    for e in &entries {
        encode_entry(&mut run, e);
        in_run += 1;
        if in_run == RUN_SIZE {
            codec::encode_frame(&mut out, &run);
            run.clear();
            in_run = 0;
        }
    }
    if in_run > 0 {
        codec::encode_frame(&mut out, &run);
    }
    dfs.append(name, &out)?;
    dfs.seal(name)?;
    Ok(entries.len() as u64)
}

/// Load a snapshot written by [`save_index`] into a fresh index.
pub fn load_index(dfs: &Dfs, name: &str) -> Result<MultiVersionIndex> {
    let raw = dfs.read_all(name)?;
    let (header, mut pos) = codec::decode_frame(&raw, name)?;
    let mut hdr = header;
    let expected = codec::get_u64(&mut hdr, name)?;
    let index = MultiVersionIndex::new();
    let mut entries: Vec<IndexEntry> = Vec::with_capacity(expected.min(1 << 20) as usize);
    while (pos as u64) < raw.len() as u64 {
        let (run, consumed) = codec::decode_frame(&raw[pos..], name)?;
        pos += consumed;
        let mut src = run;
        while !src.is_empty() {
            entries.push(decode_entry(&mut src, name)?);
        }
    }
    if entries.len() as u64 != expected {
        return Err(Error::Corruption(format!(
            "{name}: index file promises {expected} entries but holds {}",
            entries.len()
        )));
    }
    index.replace_all(entries);
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn filled_index(n: u64) -> MultiVersionIndex {
        let idx = MultiVersionIndex::new();
        for i in 0..n {
            idx.insert(
                RowKey::from(format!("key-{:06}", i % (n / 2).max(1)).into_bytes()),
                Timestamp(i),
                LogPtr::new((i / 100) as u32, i * 64, 64),
            );
        }
        idx
    }

    #[test]
    fn save_load_round_trip() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let idx = filled_index(500);
        let n = save_index(&dfs, "srv/ckpt/idx-0", &idx).unwrap();
        assert_eq!(n, 500);
        let loaded = load_index(&dfs, "srv/ckpt/idx-0").unwrap();
        assert_eq!(loaded.scan_all(), idx.scan_all());
    }

    #[test]
    fn empty_index_round_trips() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let idx = MultiVersionIndex::new();
        save_index(&dfs, "srv/ckpt/empty", &idx).unwrap();
        let loaded = load_index(&dfs, "srv/ckpt/empty").unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn multi_run_files_round_trip() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let idx = filled_index(RUN_SIZE as u64 * 2 + 37);
        save_index(&dfs, "srv/ckpt/big", &idx).unwrap();
        let loaded = load_index(&dfs, "srv/ckpt/big").unwrap();
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.stats().keys, idx.stats().keys);
    }

    #[test]
    fn save_refuses_to_overwrite() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let idx = filled_index(10);
        save_index(&dfs, "srv/ckpt/once", &idx).unwrap();
        assert!(save_index(&dfs, "srv/ckpt/once", &idx).is_err());
    }

    #[test]
    fn load_detects_truncated_count() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        // Header promises 5 entries, body holds none.
        dfs.create("bad").unwrap();
        let mut out = BytesMut::new();
        let mut header = BytesMut::new();
        header.put_u64_le(5);
        codec::encode_frame(&mut out, &header);
        dfs.append("bad", &out).unwrap();
        assert!(matches!(load_index(&dfs, "bad"), Err(Error::Corruption(_))));
    }

    #[test]
    fn load_missing_file_errors() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        assert!(matches!(
            load_index(&dfs, "absent"),
            Err(Error::FileNotFound(_))
        ));
    }
}
