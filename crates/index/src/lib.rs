//! In-memory multiversion indexes over the log (paper §3.5).
//!
//! Tablet servers build one index per column group of each tablet. An
//! index entry is `<IdxKey, Ptr>`:
//!
//! - `IdxKey` — the record's primary key (prefix) concatenated with the
//!   write timestamp (suffix), so all versions of a key cluster together
//!   and "latest" / "latest before t" queries are range probes;
//! - `Ptr` — `(file number, offset, record size)` into the log.
//!
//! The paper implements the index as a B-link tree; the operational
//! properties the rest of the system needs are *ordered iteration*,
//! *prefix probes* and *concurrent readers*. [`MultiVersionIndex`] here is
//! a reader-writer-locked B-tree with the same interface semantics (range
//! search + concurrency), trading the paper's latch-free splits for
//! simplicity: at tablet scale the lock is uncontended off the write path
//! because writes already serialize on the log append.
//!
//! Index persistence (checkpoint files, §3.8) lives in [`persist`]:
//! a snapshot is written to a DFS index file and reloaded at restart.

pub mod blink;
mod mvindex;
pub mod persist;

pub use blink::BlinkTree;
pub use mvindex::{IndexEntry, IndexStats, MultiVersionIndex, VersionedPtr};
