//! The multiversion index structure.

use logbase_common::config::INDEX_ENTRY_BYTES;
use logbase_common::schema::KeyRange;
use logbase_common::{LogPtr, RowKey, Timestamp};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// One version of one key: `(timestamp, pointer)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedPtr {
    /// Commit timestamp of the write.
    pub ts: Timestamp,
    /// Location of the record in the log.
    pub ptr: LogPtr,
}

/// A materialized index entry (used by scans and persistence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Record primary key.
    pub key: RowKey,
    /// Version.
    pub ts: Timestamp,
    /// Log location.
    pub ptr: LogPtr,
}

/// Size statistics of one index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Total `(key, ts)` entries.
    pub entries: u64,
    /// Distinct keys.
    pub keys: u64,
    /// Approximate resident bytes (paper model: 24 B/entry + key bytes).
    pub approx_bytes: u64,
    /// Updates applied since the last counter reset (checkpoint trigger,
    /// §3.6.1).
    pub updates_since_checkpoint: u64,
}

/// A range bound over composite `(key, timestamp)` index keys.
type KeyBound = Bound<(RowKey, Timestamp)>;

/// The in-memory multiversion index: ordered map from
/// `(key, timestamp)` to [`LogPtr`].
///
/// Concurrent readers proceed in parallel; writers serialize. All probe
/// methods are `O(log n + answer)`.
pub struct MultiVersionIndex {
    map: RwLock<BTreeMap<(RowKey, Timestamp), LogPtr>>,
    key_bytes: AtomicU64,
    updates: AtomicU64,
}

impl Default for MultiVersionIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiVersionIndex {
    /// New empty index.
    pub fn new() -> Self {
        MultiVersionIndex {
            map: RwLock::new(BTreeMap::new()),
            key_bytes: AtomicU64::new(0),
            updates: AtomicU64::new(0),
        }
    }

    /// Insert (or overwrite) the entry for `(key, ts)`.
    pub fn insert(&self, key: RowKey, ts: Timestamp, ptr: LogPtr) {
        let mut map = self.map.write();
        let klen = key.len() as u64;
        if map.insert((key, ts), ptr).is_none() {
            self.key_bytes.fetch_add(klen, Ordering::Relaxed);
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert a batch of entries under one lock acquisition.
    pub fn insert_batch(&self, entries: impl IntoIterator<Item = IndexEntry>) {
        let mut map = self.map.write();
        let mut n = 0u64;
        for e in entries {
            let klen = e.key.len() as u64;
            if map.insert((e.key, e.ts), e.ptr).is_none() {
                self.key_bytes.fetch_add(klen, Ordering::Relaxed);
            }
            n += 1;
        }
        self.updates.fetch_add(n, Ordering::Relaxed);
    }

    /// Remove every version of `key` (step 1 of `Delete`, §3.6.3).
    /// Returns the number of versions removed.
    pub fn remove_key(&self, key: &[u8]) -> usize {
        let mut map = self.map.write();
        let doomed: Vec<(RowKey, Timestamp)> = map
            .range(Self::key_bounds(key))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            map.remove(k);
            self.key_bytes
                .fetch_sub(k.0.len() as u64, Ordering::Relaxed);
        }
        self.updates
            .fetch_add(doomed.len() as u64, Ordering::Relaxed);
        doomed.len()
    }

    /// Remove one specific version.
    pub fn remove_version(&self, key: &[u8], ts: Timestamp) -> bool {
        let mut map = self.map.write();
        let k = (RowKey::copy_from_slice(key), ts);
        let removed = map.remove(&k).is_some();
        if removed {
            self.key_bytes
                .fetch_sub(key.len() as u64, Ordering::Relaxed);
            self.updates.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    fn key_bounds(key: &[u8]) -> (KeyBound, KeyBound) {
        (
            Bound::Included((RowKey::copy_from_slice(key), Timestamp::ZERO)),
            Bound::Included((RowKey::copy_from_slice(key), Timestamp::MAX)),
        )
    }

    /// Pointer for the exact version `(key, ts)`, if present.
    pub fn get_version(&self, key: &[u8], ts: Timestamp) -> Option<LogPtr> {
        self.map
            .read()
            .get(&(RowKey::copy_from_slice(key), ts))
            .copied()
    }

    /// Latest version of `key`, if any.
    pub fn latest(&self, key: &[u8]) -> Option<VersionedPtr> {
        let map = self.map.read();
        map.range(Self::key_bounds(key))
            .next_back()
            .map(|((_, ts), ptr)| VersionedPtr { ts: *ts, ptr: *ptr })
    }

    /// Latest version of `key` with timestamp `<= at` (snapshot reads).
    pub fn latest_at(&self, key: &[u8], at: Timestamp) -> Option<VersionedPtr> {
        let map = self.map.read();
        map.range((
            Bound::Included((RowKey::copy_from_slice(key), Timestamp::ZERO)),
            Bound::Included((RowKey::copy_from_slice(key), at)),
        ))
        .next_back()
        .map(|((_, ts), ptr)| VersionedPtr { ts: *ts, ptr: *ptr })
    }

    /// All versions of `key`, oldest first.
    pub fn versions(&self, key: &[u8]) -> Vec<VersionedPtr> {
        let map = self.map.read();
        map.range(Self::key_bounds(key))
            .map(|((_, ts), ptr)| VersionedPtr { ts: *ts, ptr: *ptr })
            .collect()
    }

    /// For every key in `range`, the latest version with timestamp
    /// `<= at`, in key order. This is the range-scan index probe
    /// (§3.6.4); `limit` bounds the number of *keys* returned.
    pub fn range_latest_at(
        &self,
        range: &KeyRange,
        at: Timestamp,
        limit: usize,
    ) -> Vec<IndexEntry> {
        let map = self.map.read();
        let lower = Bound::Included((range.start.clone(), Timestamp::ZERO));
        let upper = match &range.end {
            Some(end) => Bound::Excluded((end.clone(), Timestamp::ZERO)),
            None => Bound::Unbounded,
        };
        let mut out: Vec<IndexEntry> = Vec::new();
        for ((key, ts), ptr) in map.range((lower, upper)) {
            if *ts > at {
                continue;
            }
            match out.last_mut() {
                Some(last) if last.key == *key => {
                    // Later version of the same key (iteration is ts-asc).
                    last.ts = *ts;
                    last.ptr = *ptr;
                }
                _ => {
                    if out.len() == limit {
                        break;
                    }
                    out.push(IndexEntry {
                        key: key.clone(),
                        ts: *ts,
                        ptr: *ptr,
                    });
                }
            }
        }
        out
    }

    /// Drop every entry whose key lies outside `range` (tablet handoff:
    /// the shrunken tablet keeps reusing its index, pruned of moved
    /// keys). Returns the number of entries removed.
    pub fn retain_range(&self, range: &KeyRange) -> usize {
        let mut map = self.map.write();
        let doomed: Vec<(RowKey, Timestamp)> = map
            .iter()
            .filter(|((k, _), _)| !range.contains(k))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            map.remove(k);
            self.key_bytes
                .fetch_sub(k.0.len() as u64, Ordering::Relaxed);
        }
        self.updates
            .fetch_add(doomed.len() as u64, Ordering::Relaxed);
        doomed.len()
    }

    /// Every entry, in `(key, ts)` order (checkpointing, compaction).
    pub fn scan_all(&self) -> Vec<IndexEntry> {
        let map = self.map.read();
        map.iter()
            .map(|((key, ts), ptr)| IndexEntry {
                key: key.clone(),
                ts: *ts,
                ptr: *ptr,
            })
            .collect()
    }

    /// Replace the whole content (checkpoint reload).
    pub fn replace_all(&self, entries: Vec<IndexEntry>) {
        let mut map = self.map.write();
        map.clear();
        self.key_bytes.store(0, Ordering::Relaxed);
        for e in entries {
            self.key_bytes
                .fetch_add(e.key.len() as u64, Ordering::Relaxed);
            map.insert((e.key, e.ts), e.ptr);
        }
    }

    /// Clear all entries.
    pub fn clear(&self) {
        self.map.write().clear();
        self.key_bytes.store(0, Ordering::Relaxed);
    }

    /// Number of `(key, ts)` entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IndexStats {
        let map = self.map.read();
        let entries = map.len() as u64;
        let mut keys = 0u64;
        let mut prev: Option<&RowKey> = None;
        for (k, _) in map.iter() {
            if prev != Some(&k.0) {
                keys += 1;
                prev = Some(&k.0);
            }
        }
        IndexStats {
            entries,
            keys,
            approx_bytes: entries * INDEX_ENTRY_BYTES as u64
                + self.key_bytes.load(Ordering::Relaxed),
            updates_since_checkpoint: self.updates.load(Ordering::Relaxed),
        }
    }

    /// Reset the per-checkpoint update counter (§3.6.1: "the counter is
    /// reset to zero" after the index is merged out to an index file).
    pub fn reset_update_counter(&self) {
        self.updates.store(0, Ordering::Relaxed);
    }

    /// Updates since the last counter reset.
    pub fn updates_since_checkpoint(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ptr(n: u64) -> LogPtr {
        LogPtr::new(0, n, 10)
    }

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn latest_picks_highest_timestamp() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("a"), Timestamp(2), ptr(1));
        idx.insert(key("a"), Timestamp(18), ptr(2));
        idx.insert(key("a"), Timestamp(5), ptr(3));
        let latest = idx.latest(b"a").unwrap();
        assert_eq!(latest.ts, Timestamp(18));
        assert_eq!(latest.ptr, ptr(2));
        assert!(idx.latest(b"b").is_none());
    }

    #[test]
    fn latest_at_respects_snapshot_bound() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("a"), Timestamp(2), ptr(1));
        idx.insert(key("a"), Timestamp(18), ptr(2));
        assert_eq!(idx.latest_at(b"a", Timestamp(17)).unwrap().ts, Timestamp(2));
        assert_eq!(
            idx.latest_at(b"a", Timestamp(18)).unwrap().ts,
            Timestamp(18)
        );
        assert!(idx.latest_at(b"a", Timestamp(1)).is_none());
    }

    #[test]
    fn versions_are_ordered_oldest_first() {
        let idx = MultiVersionIndex::new();
        for t in [9u64, 3, 7] {
            idx.insert(key("k"), Timestamp(t), ptr(t));
        }
        let v: Vec<u64> = idx.versions(b"k").iter().map(|e| e.ts.0).collect();
        assert_eq!(v, vec![3, 7, 9]);
    }

    #[test]
    fn prefix_probe_does_not_leak_into_neighbours() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("ab"), Timestamp(1), ptr(1));
        idx.insert(key("abc"), Timestamp(2), ptr(2));
        idx.insert(key("abd"), Timestamp(3), ptr(3));
        // "ab" has exactly one version even though "abc" sorts adjacent.
        assert_eq!(idx.versions(b"ab").len(), 1);
        assert_eq!(idx.latest(b"ab").unwrap().ts, Timestamp(1));
    }

    #[test]
    fn remove_key_removes_all_versions() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("a"), Timestamp(1), ptr(1));
        idx.insert(key("a"), Timestamp(2), ptr(2));
        idx.insert(key("b"), Timestamp(1), ptr(3));
        assert_eq!(idx.remove_key(b"a"), 2);
        assert!(idx.latest(b"a").is_none());
        assert!(idx.latest(b"b").is_some());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_version_is_surgical() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("a"), Timestamp(1), ptr(1));
        idx.insert(key("a"), Timestamp(2), ptr(2));
        assert!(idx.remove_version(b"a", Timestamp(2)));
        assert!(!idx.remove_version(b"a", Timestamp(9)));
        assert_eq!(idx.latest(b"a").unwrap().ts, Timestamp(1));
    }

    #[test]
    fn range_latest_at_returns_one_entry_per_key() {
        let idx = MultiVersionIndex::new();
        for (k, t) in [
            ("a", 1u64),
            ("a", 5),
            ("b", 2),
            ("c", 3),
            ("c", 9),
            ("d", 4),
        ] {
            idx.insert(key(k), Timestamp(t), ptr(t));
        }
        let r = KeyRange::new(&b"a"[..], &b"d"[..]);
        let out = idx.range_latest_at(&r, Timestamp::MAX, usize::MAX);
        let got: Vec<(&str, u64)> = out
            .iter()
            .map(|e| (std::str::from_utf8(&e.key).unwrap(), e.ts.0))
            .collect();
        assert_eq!(got, vec![("a", 5), ("b", 2), ("c", 9)]);

        // Snapshot at t=4 hides a@5 and c@9.
        let out = idx.range_latest_at(&r, Timestamp(4), usize::MAX);
        let got: Vec<(&str, u64)> = out
            .iter()
            .map(|e| (std::str::from_utf8(&e.key).unwrap(), e.ts.0))
            .collect();
        assert_eq!(got, vec![("a", 1), ("b", 2), ("c", 3)]);
    }

    #[test]
    fn range_latest_limit_counts_keys() {
        let idx = MultiVersionIndex::new();
        for (k, t) in [("a", 1u64), ("a", 2), ("b", 1), ("c", 1)] {
            idx.insert(key(k), Timestamp(t), ptr(t));
        }
        let out = idx.range_latest_at(&KeyRange::all(), Timestamp::MAX, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(&out[0].key[..], b"a");
        assert_eq!(out[0].ts, Timestamp(2));
        assert_eq!(&out[1].key[..], b"b");
    }

    #[test]
    fn unbounded_range_scans_everything() {
        let idx = MultiVersionIndex::new();
        for i in 0..10u64 {
            idx.insert(key(&format!("k{i}")), Timestamp(1), ptr(i));
        }
        assert_eq!(
            idx.range_latest_at(&KeyRange::all(), Timestamp::MAX, usize::MAX)
                .len(),
            10
        );
    }

    #[test]
    fn stats_track_entries_keys_and_bytes() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("aa"), Timestamp(1), ptr(1));
        idx.insert(key("aa"), Timestamp(2), ptr(2));
        idx.insert(key("bb"), Timestamp(1), ptr(3));
        let s = idx.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.keys, 2);
        assert_eq!(s.approx_bytes, 3 * 24 + 6);
        assert_eq!(s.updates_since_checkpoint, 3);
        idx.reset_update_counter();
        assert_eq!(idx.updates_since_checkpoint(), 0);
        idx.insert(key("cc"), Timestamp(1), ptr(4));
        assert_eq!(idx.updates_since_checkpoint(), 1);
    }

    #[test]
    fn replace_all_installs_snapshot() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("old"), Timestamp(1), ptr(1));
        idx.replace_all(vec![
            IndexEntry {
                key: key("new1"),
                ts: Timestamp(5),
                ptr: ptr(10),
            },
            IndexEntry {
                key: key("new2"),
                ts: Timestamp(6),
                ptr: ptr(11),
            },
        ]);
        assert!(idx.latest(b"old").is_none());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.latest(b"new1").unwrap().ptr, ptr(10));
    }

    #[test]
    fn overwriting_same_version_updates_pointer() {
        let idx = MultiVersionIndex::new();
        idx.insert(key("a"), Timestamp(1), ptr(1));
        idx.insert(key("a"), Timestamp(1), ptr(2));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.latest(b"a").unwrap().ptr, ptr(2));
        // Byte accounting must not double count.
        assert_eq!(idx.stats().approx_bytes, 24 + 1);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let idx = std::sync::Arc::new(MultiVersionIndex::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = std::sync::Arc::clone(&idx);
                s.spawn(move || {
                    for i in 0..500u64 {
                        idx.insert(key(&format!("{t}-{i}")), Timestamp(i), ptr(i));
                    }
                });
            }
            for _ in 0..2 {
                let idx = std::sync::Arc::clone(&idx);
                s.spawn(move || {
                    for _ in 0..200 {
                        let _ = idx.latest(b"0-100");
                        let _ = idx.range_latest_at(&KeyRange::all(), Timestamp::MAX, 50);
                    }
                });
            }
        });
        assert_eq!(idx.len(), 2000);
    }

    proptest! {
        /// The index agrees with a model: a plain map of key -> sorted
        /// version list.
        #[test]
        fn prop_matches_model(ops in proptest::collection::vec(
            (0u8..3, 0u8..8, 1u64..20), 1..200)
        ) {
            let idx = MultiVersionIndex::new();
            let mut model: std::collections::BTreeMap<Vec<u8>, std::collections::BTreeMap<u64, LogPtr>> =
                std::collections::BTreeMap::new();
            let mut counter = 0u64;
            for (op, k, t) in ops {
                let kb = vec![b'k', k];
                match op {
                    0 => {
                        counter += 1;
                        let p = ptr(counter);
                        idx.insert(RowKey::from(kb.clone()), Timestamp(t), p);
                        model.entry(kb).or_default().insert(t, p);
                    }
                    1 => {
                        idx.remove_key(&kb);
                        model.remove(&kb);
                    }
                    _ => {
                        idx.remove_version(&kb, Timestamp(t));
                        if let Some(m) = model.get_mut(&kb) {
                            m.remove(&t);
                            if m.is_empty() { model.remove(&kb); }
                        }
                    }
                }
            }
            // Compare latest() for all keys, and latest_at for a few bounds.
            for k in 0u8..8 {
                let kb = vec![b'k', k];
                let expect = model.get(&kb).and_then(|m| m.iter().next_back())
                    .map(|(t, p)| (Timestamp(*t), *p));
                let got = idx.latest(&kb).map(|v| (v.ts, v.ptr));
                prop_assert_eq!(expect, got);
                for bound in [0u64, 5, 10, 19] {
                    let expect = model.get(&kb)
                        .and_then(|m| m.range(..=bound).next_back())
                        .map(|(t, p)| (Timestamp(*t), *p));
                    let got = idx.latest_at(&kb, Timestamp(bound)).map(|v| (v.ts, v.ptr));
                    prop_assert_eq!(expect, got);
                }
            }
            // Entry count agrees.
            let model_entries: usize = model.values().map(|m| m.len()).sum();
            prop_assert_eq!(idx.len(), model_entries);
        }
    }
}
