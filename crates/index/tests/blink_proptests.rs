//! Differential property tests: the B-link tree agrees with both a
//! plain `BTreeMap` model and the production `MultiVersionIndex` on
//! arbitrary operation sequences.

use logbase_common::{LogPtr, RowKey, Timestamp};
use logbase_index::{BlinkTree, MultiVersionIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8, u64),
    Remove(u8, u8),
    Get(u8, u8),
    LatestAt(u8, u8),
    Scan(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0u8..16, any::<u64>()).prop_map(|(k, t, p)| Op::Insert(k, t, p)),
        1 => (any::<u8>(), 0u8..16).prop_map(|(k, t)| Op::Remove(k, t)),
        2 => (any::<u8>(), 0u8..16).prop_map(|(k, t)| Op::Get(k, t)),
        2 => (any::<u8>(), 0u8..16).prop_map(|(k, t)| Op::LatestAt(k, t)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
    ]
}

fn key_of(k: u8) -> RowKey {
    RowKey::from(vec![b'k', k])
}

fn ptr_of(p: u64) -> LogPtr {
    LogPtr::new((p % 7) as u32, p, 16)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64
        })]

    #[test]
    fn prop_blink_matches_model_and_mvindex(
        ops in proptest::collection::vec(op_strategy(), 1..400)
    ) {
        let blink = BlinkTree::new();
        let mv = MultiVersionIndex::new();
        let mut model: BTreeMap<(RowKey, Timestamp), LogPtr> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, t, p) => {
                    blink.insert(key_of(*k), Timestamp(u64::from(*t)), ptr_of(*p));
                    mv.insert(key_of(*k), Timestamp(u64::from(*t)), ptr_of(*p));
                    model.insert((key_of(*k), Timestamp(u64::from(*t))), ptr_of(*p));
                }
                Op::Remove(k, t) => {
                    let was = model.remove(&(key_of(*k), Timestamp(u64::from(*t)))).is_some();
                    prop_assert_eq!(blink.remove(&key_of(*k), Timestamp(u64::from(*t))), was);
                    mv.remove_version(&key_of(*k), Timestamp(u64::from(*t)));
                }
                Op::Get(k, t) => {
                    let expect = model.get(&(key_of(*k), Timestamp(u64::from(*t)))).copied();
                    prop_assert_eq!(blink.get(&key_of(*k), Timestamp(u64::from(*t))), expect);
                    prop_assert_eq!(
                        mv.get_version(&key_of(*k), Timestamp(u64::from(*t))),
                        expect
                    );
                }
                Op::LatestAt(k, t) => {
                    let at = Timestamp(u64::from(*t));
                    let expect = model
                        .range((key_of(*k), Timestamp::ZERO)..=(key_of(*k), at))
                        .next_back()
                        .map(|((_, ts), p)| (*ts, *p));
                    prop_assert_eq!(blink.latest_at(&key_of(*k), at), expect);
                    prop_assert_eq!(
                        mv.latest_at(&key_of(*k), at).map(|v| (v.ts, v.ptr)),
                        expect
                    );
                }
                Op::Scan(a, b) => {
                    let start = (key_of(*a), Timestamp::ZERO);
                    let end = (key_of(*b), Timestamp::ZERO);
                    let mut got = Vec::new();
                    blink.scan_range(&start, Some(&end), |k, p| {
                        got.push((k.clone(), *p));
                        true
                    });
                    let expect: Vec<((RowKey, Timestamp), LogPtr)> = model
                        .range(start..end)
                        .map(|(k, p)| (k.clone(), *p))
                        .collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        prop_assert_eq!(blink.len(), model.len());
        prop_assert_eq!(mv.len(), model.len());
    }
}
