//! The **WAL+Data baseline**, modeled after HBase 0.90 (paper §4, Fig. 3
//! right).
//!
//! Write path: a record is (1) appended to the write-ahead log, then
//! (2) inserted into a sorted in-memory *memtable*. When the memtable
//! reaches its flush threshold it is written — a second time — into an
//! SSTable on the DFS; the write that triggers the flush *waits* for it
//! ("if the memtable is full and a minor compaction is required, the
//! write has to wait until the memtable is persisted successfully into
//! HDFS", §4.3). That double write and stall are exactly the WAL+Data
//! costs LogBase removes.
//!
//! Read path: memtable, then SSTables newest-first through a sparse
//! block index and an LRU block cache — on a cache miss a whole ~64 KB
//! block is fetched to serve one record (the Fig. 7 long-tail penalty).
//!
//! Recovery replays the WAL from the last flush point into a fresh
//! memtable — the data files hold everything older.

mod engine;

pub use engine::{HBaseConfig, HBaseEngine, HBaseStats};
