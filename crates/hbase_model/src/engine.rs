//! The HBase-model engine.

use logbase_common::engine::{ScanItem, StorageEngine};
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::schema::KeyRange;
use logbase_common::{Lsn, Record, Result, RowKey, Timestamp, Value};
use logbase_coordination::TimestampOracle;
use logbase_dfs::Dfs;
use logbase_sstable::{
    merge_entries, BlockCache, BlockEntry, Memtable, SsTableConfig, SsTableReader, SsTableWriter,
};
use logbase_wal::{GroupCommitConfig, GroupCommitLog, LogConfig, LogEntryKind, LogWriter};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the WAL+Data engine.
#[derive(Debug, Clone)]
pub struct HBaseConfig {
    /// Name prefix for every DFS path.
    pub name: String,
    /// Memtable flush threshold (HBase default 64 MB).
    pub memtable_flush_bytes: u64,
    /// WAL segment size.
    pub segment_bytes: u64,
    /// SSTable block size (HBase default 64 KB).
    pub block_bytes: usize,
    /// Block cache budget (0 disables caching).
    pub block_cache_bytes: u64,
    /// Block cache shard count (0 = default: available parallelism).
    pub block_cache_shards: usize,
    /// SSTable count per column group that triggers a minor compaction.
    pub compaction_trigger: usize,
}

impl HBaseConfig {
    /// Paper-default configuration.
    pub fn new(name: impl Into<String>) -> Self {
        HBaseConfig {
            name: name.into(),
            memtable_flush_bytes: 64 * 1024 * 1024,
            segment_bytes: logbase_common::config::DEFAULT_SEGMENT_BYTES,
            block_bytes: 64 * 1024,
            block_cache_bytes: 16 * 1024 * 1024,
            block_cache_shards: 0,
            compaction_trigger: 6,
        }
    }

    /// Builder-style flush-threshold override.
    #[must_use]
    pub fn with_flush_bytes(mut self, bytes: u64) -> Self {
        self.memtable_flush_bytes = bytes;
        self
    }

    /// Builder-style block-size override.
    #[must_use]
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Builder-style block-cache override (0 disables).
    #[must_use]
    pub fn with_block_cache(mut self, bytes: u64) -> Self {
        self.block_cache_bytes = bytes;
        self
    }

    /// Builder-style block-cache shard-count override (0 = default).
    #[must_use]
    pub fn with_block_cache_shards(mut self, shards: usize) -> Self {
        self.block_cache_shards = shards;
        self
    }
}

/// Operational statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HBaseStats {
    /// Memtable flushes performed (each is a full data rewrite).
    pub flushes: u64,
    /// SSTables currently live.
    pub sstables: usize,
    /// Entries currently buffered in memtables.
    pub memtable_entries: usize,
}

/// Per-column-group store: memtable + SSTables (newest first).
struct CgStore {
    memtable: Memtable,
    tables: RwLock<Vec<Arc<SsTableReader>>>,
    next_table: AtomicU64,
    flush_lock: Mutex<()>,
}

impl CgStore {
    fn new() -> Self {
        CgStore {
            memtable: Memtable::new(),
            tables: RwLock::new(Vec::new()),
            next_table: AtomicU64::new(0),
            flush_lock: Mutex::new(()),
        }
    }
}

/// The WAL+Data storage engine.
pub struct HBaseEngine {
    dfs: Dfs,
    config: HBaseConfig,
    wal: GroupCommitLog,
    cgs: RwLock<HashMap<u16, Arc<CgStore>>>,
    cache: Option<BlockCache>,
    oracle: TimestampOracle,
    flushes: AtomicU64,
}

/// WAL table label (single-table engine; the cg rides in the record).
const WAL_TABLE: &str = "hbase";

impl HBaseEngine {
    /// Create a fresh engine.
    pub fn create(dfs: Dfs, config: HBaseConfig) -> Result<Arc<Self>> {
        Self::create_with(dfs, config, TimestampOracle::new())
    }

    /// Create a fresh engine sharing a cluster oracle.
    pub fn create_with(
        dfs: Dfs,
        config: HBaseConfig,
        oracle: TimestampOracle,
    ) -> Result<Arc<Self>> {
        let writer = Arc::new(LogWriter::create(
            dfs.clone(),
            LogConfig::new(format!("{}/wal", config.name)).with_segment_bytes(config.segment_bytes),
        )?);
        Ok(Arc::new(Self::assemble(dfs, config, writer, oracle)))
    }

    fn assemble(
        dfs: Dfs,
        config: HBaseConfig,
        writer: Arc<LogWriter>,
        oracle: TimestampOracle,
    ) -> Self {
        let cache = (config.block_cache_bytes > 0)
            .then(|| BlockCache::with_shards(config.block_cache_bytes, config.block_cache_shards));
        HBaseEngine {
            wal: GroupCommitLog::new(writer, GroupCommitConfig::default()),
            cgs: RwLock::new(HashMap::new()),
            cache,
            oracle,
            flushes: AtomicU64::new(0),
            dfs,
            config,
        }
    }

    /// Recover an engine from its DFS state: reopen SSTables, replay the
    /// WAL tail into fresh memtables.
    pub fn open(dfs: Dfs, config: HBaseConfig) -> Result<Arc<Self>> {
        let wal_prefix = format!("{}/wal", config.name);
        let writer = Arc::new(LogWriter::reopen(
            dfs.clone(),
            LogConfig::new(&wal_prefix).with_segment_bytes(config.segment_bytes),
            Lsn(1),
        )?);
        let engine = Self::assemble(
            dfs.clone(),
            config,
            Arc::clone(&writer),
            TimestampOracle::new(),
        );

        // Reopen SSTables: <name>/data/cg<id>/sst-<seq>.
        let data_prefix = format!("{}/data/", engine.config.name);
        for file in dfs.list(&data_prefix) {
            let rest = file.strip_prefix(&data_prefix).unwrap_or("");
            let Some((cg_part, _)) = rest.split_once('/') else {
                continue;
            };
            let Ok(cg) = cg_part.trim_start_matches("cg").parse::<u16>() else {
                continue;
            };
            let store = engine.cg(cg);
            let reader = Arc::new(SsTableReader::open(dfs.clone(), &file)?);
            store.tables.write().push(reader);
        }
        // Newest first (higher sequence = newer; names sort ascending).
        for store in engine.cgs.read().values() {
            store.tables.write().reverse();
            let n = store.tables.read().len() as u64;
            store.next_table.store(n, Ordering::Relaxed);
        }

        // WAL replay: apply writes newer than each cg's last flush.
        let mut flushed_lsn: HashMap<u16, u64> = HashMap::new();
        let mut writes: Vec<(u64, Record)> = Vec::new();
        let mut max_lsn = 0u64;
        let mut max_ts = 0u64;
        logbase_wal::scan_log_tolerant(&dfs, &wal_prefix, 0, 0, |_, entry| {
            max_lsn = max_lsn.max(entry.lsn.0);
            match entry.kind {
                LogEntryKind::Write { record, .. } => {
                    max_ts = max_ts.max(record.meta.timestamp.0);
                    writes.push((entry.lsn.0, record));
                }
                LogEntryKind::Checkpoint {
                    index_lsn,
                    index_file,
                } => {
                    if let Some(cg) = index_file
                        .strip_prefix("flush:cg")
                        .and_then(|s| s.parse::<u16>().ok())
                    {
                        flushed_lsn.insert(cg, index_lsn.0);
                    }
                }
                _ => {}
            }
            Ok(())
        })?;
        for (lsn, record) in writes {
            let cg = record.meta.column_group;
            if lsn <= flushed_lsn.get(&cg).copied().unwrap_or(0) {
                continue; // already in a data file
            }
            engine
                .cg(cg)
                .memtable
                .put(record.meta.key, record.meta.timestamp, record.value);
        }
        engine.oracle.advance_to(Timestamp(max_ts));
        writer.set_next_lsn(Lsn(max_lsn + 1));
        Ok(Arc::new(engine))
    }

    /// Metrics sink (shared with the DFS).
    pub fn metrics(&self) -> &MetricsHandle {
        self.dfs.metrics()
    }

    /// Timestamp oracle.
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    fn cg(&self, cg: u16) -> Arc<CgStore> {
        if let Some(s) = self.cgs.read().get(&cg) {
            return Arc::clone(s);
        }
        let mut cgs = self.cgs.write();
        Arc::clone(cgs.entry(cg).or_insert_with(|| Arc::new(CgStore::new())))
    }

    fn write_internal(&self, cg: u16, key: RowKey, value: Option<Value>) -> Result<Timestamp> {
        let ts = self.oracle.next();
        let record = Record {
            meta: logbase_common::RecordMeta {
                key: key.clone(),
                column_group: cg,
                timestamp: ts,
            },
            value: value.clone(),
        };
        // 1. WAL first (durability) ...
        self.wal.append(
            WAL_TABLE,
            LogEntryKind::Write {
                txn_id: 0,
                tablet: 0,
                record,
            },
        )?;
        // 2. ... then the memtable (the second copy of the data).
        let store = self.cg(cg);
        store.memtable.put(key, ts, value);
        // 3. Full memtable? The writer waits for the flush (§4.3).
        if store.memtable.approx_bytes() >= self.config.memtable_flush_bytes {
            self.flush_cg(cg, &store)?;
        }
        Metrics::incr(&self.metrics().records_written);
        Ok(ts)
    }

    fn flush_cg(&self, cg: u16, store: &CgStore) -> Result<()> {
        let _guard = store.flush_lock.lock();
        if store.memtable.is_empty() {
            return Ok(());
        }
        let entries = store.memtable.entries();
        let seq = store.next_table.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}/data/cg{cg}/sst-{seq:06}", self.config.name);
        let mut w = SsTableWriter::create(
            self.dfs.clone(),
            &name,
            SsTableConfig {
                block_bytes: self.config.block_bytes,
                bloom_bits_per_key: 10,
            },
        )?;
        for e in &entries {
            w.add(e)?;
        }
        w.finish()?;
        let reader = Arc::new(SsTableReader::open(self.dfs.clone(), &name)?);
        store.tables.write().insert(0, reader);
        store.memtable.clear();
        // Record the flush point for recovery.
        let flush_lsn = self.wal.writer().next_lsn().0.saturating_sub(1);
        self.wal.append(
            WAL_TABLE,
            LogEntryKind::Checkpoint {
                index_lsn: Lsn(flush_lsn),
                index_file: format!("flush:cg{cg}"),
            },
        )?;
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Metrics::incr(&self.metrics().flushes);
        drop(_guard);
        if store.tables.read().len() >= self.config.compaction_trigger {
            self.compact_cg(cg)?;
        }
        Ok(())
    }

    /// Merge all of a column group's SSTables into one (HBase's *minor
    /// compaction*): bounds the number of files a read must consult.
    /// Triggered automatically once a cg accumulates
    /// [`HBaseConfig::compaction_trigger`] tables.
    pub fn compact_cg(&self, cg: u16) -> Result<()> {
        let store = self.cg(cg);
        let _guard = store.flush_lock.lock();
        let tables: Vec<Arc<SsTableReader>> = store.tables.read().clone();
        if tables.len() <= 1 {
            return Ok(());
        }
        // Newest table first, so exact-duplicate (key, ts) entries
        // resolve to the newest copy in the merge.
        let mut inputs = Vec::with_capacity(tables.len());
        for t in &tables {
            let mut it = t.iter(self.cache.as_ref());
            let mut v = Vec::with_capacity(t.count() as usize);
            while let Some(e) = it.next()? {
                v.push(e);
            }
            inputs.push(v);
        }
        let merged = merge_entries(inputs);
        let seq = store.next_table.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}/data/cg{cg}/sst-{seq:06}", self.config.name);
        let mut w = SsTableWriter::create(
            self.dfs.clone(),
            &name,
            SsTableConfig {
                block_bytes: self.config.block_bytes,
                bloom_bits_per_key: 10,
            },
        )?;
        for e in &merged {
            w.add(e)?;
        }
        w.finish()?;
        let reader = Arc::new(SsTableReader::open(self.dfs.clone(), &name)?);
        // Install the merged table, then delete the inputs.
        {
            let mut list = store.tables.write();
            list.clear();
            list.push(reader);
        }
        for t in &tables {
            self.dfs.delete(t.name())?;
        }
        Metrics::incr(&self.metrics().compactions);
        Ok(())
    }

    /// Flush every column group's memtable.
    pub fn flush_all(&self) -> Result<()> {
        let stores: Vec<(u16, Arc<CgStore>)> = self
            .cgs
            .read()
            .iter()
            .map(|(cg, s)| (*cg, Arc::clone(s)))
            .collect();
        for (cg, store) in stores {
            self.flush_cg(cg, &store)?;
        }
        Ok(())
    }

    fn get_internal(
        &self,
        cg: u16,
        key: &[u8],
        at: Timestamp,
    ) -> Result<Option<(Timestamp, Option<Value>)>> {
        let store = self.cg(cg);
        let mut best: Option<(Timestamp, Option<Value>)> = None;
        if let Some((ts, v)) = store
            .memtable
            .versions(key)
            .into_iter()
            .rfind(|(ts, _)| *ts <= at)
        {
            best = Some((ts, v));
        }
        for table in store.tables.read().iter() {
            if let Some(e) = table.get_at(key, at, self.cache.as_ref())? {
                if best.as_ref().is_none_or(|(bt, _)| e.ts > *bt) {
                    best = Some((e.ts, e.value));
                }
            }
        }
        Ok(best)
    }

    /// Engine statistics.
    pub fn stats(&self) -> HBaseStats {
        let cgs = self.cgs.read();
        HBaseStats {
            flushes: self.flushes.load(Ordering::Relaxed),
            sstables: cgs.values().map(|s| s.tables.read().len()).sum(),
            memtable_entries: cgs.values().map(|s| s.memtable.len()).sum(),
        }
    }

    /// The block cache, if enabled.
    pub fn cache(&self) -> Option<&BlockCache> {
        self.cache.as_ref()
    }
}

impl StorageEngine for HBaseEngine {
    fn put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        self.write_internal(cg, key, Some(value))
    }

    fn get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.get_at(cg, key, Timestamp::MAX)
    }

    fn get_at(&self, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>> {
        Metrics::incr(&self.metrics().records_read);
        Ok(self.get_internal(cg, key, at)?.and_then(|(_, v)| v))
    }

    fn delete(&self, cg: u16, key: &[u8]) -> Result<()> {
        self.write_internal(cg, RowKey::copy_from_slice(key), None)?;
        Ok(())
    }

    fn range_scan(&self, cg: u16, range: &KeyRange, limit: usize) -> Result<Vec<ScanItem>> {
        let store = self.cg(cg);
        // Every source is already (key, ts)-sorted, so a k-way merge
        // produces globally sorted entries; the latest version per key
        // is then the last entry of each key group.
        let mut inputs: Vec<Vec<BlockEntry>> = vec![store.memtable.entries()];
        for table in store.tables.read().iter() {
            let mut it = table.range_iter(range.clone(), self.cache.as_ref());
            let mut v = Vec::new();
            while let Some(e) = it.next()? {
                v.push(e);
            }
            inputs.push(v);
        }
        let merged = merge_entries(inputs);
        let mut out: Vec<ScanItem> = Vec::new();
        let mut current: Option<BlockEntry> = None;
        for e in merged {
            if !range.contains(&e.key) {
                continue;
            }
            match &mut current {
                Some(c) if c.key == e.key => {
                    if e.ts > c.ts {
                        *c = e;
                    }
                }
                _ => {
                    if let Some(c) = current.take() {
                        if let Some(v) = c.value {
                            out.push((c.key, c.ts, v));
                            if out.len() == limit {
                                Metrics::add(&self.metrics().records_read, out.len() as u64);
                                return Ok(out);
                            }
                        }
                    }
                    current = Some(e);
                }
            }
        }
        if let Some(c) = current {
            if let Some(v) = c.value {
                if out.len() < limit {
                    out.push((c.key, c.ts, v));
                }
            }
        }
        Metrics::add(&self.metrics().records_read, out.len() as u64);
        Ok(out)
    }

    fn full_scan(&self, cg: u16) -> Result<u64> {
        Ok(self.range_scan(cg, &KeyRange::all(), usize::MAX)?.len() as u64)
    }

    fn sync(&self) -> Result<()> {
        self.flush_all()
    }

    fn engine_name(&self) -> &'static str {
        "hbase-model"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    fn engine(flush_bytes: u64) -> Arc<HBaseEngine> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        HBaseEngine::create(dfs, HBaseConfig::new("hb").with_flush_bytes(flush_bytes)).unwrap()
    }

    #[test]
    fn put_get_through_memtable() {
        let e = engine(1 << 20);
        e.put(0, key("k"), val("v1")).unwrap();
        let t2 = e.put(0, key("k"), val("v2")).unwrap();
        assert_eq!(e.get(0, b"k").unwrap(), Some(val("v2")));
        assert_eq!(e.get_at(0, b"k", t2.prev()).unwrap(), Some(val("v1")));
        assert!(e.get(0, b"absent").unwrap().is_none());
    }

    #[test]
    fn writes_hit_wal_and_memtable_then_flush_doubles_bytes() {
        let e = engine(4096);
        let payload = "x".repeat(256);
        for i in 0..64 {
            e.put(0, key(&format!("k{i:03}")), val(&payload)).unwrap();
        }
        let stats = e.stats();
        assert!(stats.flushes >= 1, "flush threshold should have tripped");
        assert!(stats.sstables >= 1);
        // Reads still correct across memtable + SSTables.
        for i in [0, 31, 63] {
            assert_eq!(
                e.get(0, format!("k{i:03}").as_bytes()).unwrap(),
                Some(val(&payload))
            );
        }
    }

    #[test]
    fn delete_hides_older_versions() {
        let e = engine(1 << 20);
        e.put(0, key("k"), val("v")).unwrap();
        e.flush_all().unwrap();
        e.delete(0, b"k").unwrap();
        assert!(e.get(0, b"k").unwrap().is_none());
        let out = e.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn range_scan_merges_memtable_and_tables() {
        let e = engine(1 << 20);
        e.put(0, key("a"), val("old")).unwrap();
        e.put(0, key("b"), val("b")).unwrap();
        e.flush_all().unwrap();
        e.put(0, key("a"), val("new")).unwrap();
        e.put(0, key("c"), val("c")).unwrap();
        let out = e.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        let got: Vec<(&str, &[u8])> = out
            .iter()
            .map(|(k, _, v)| (std::str::from_utf8(k).unwrap(), &v[..]))
            .collect();
        assert_eq!(
            got,
            vec![("a", &b"new"[..]), ("b", &b"b"[..]), ("c", &b"c"[..])]
        );
    }

    #[test]
    fn column_groups_are_isolated() {
        let e = engine(1 << 20);
        e.put(0, key("k"), val("cg0")).unwrap();
        e.put(1, key("k"), val("cg1")).unwrap();
        assert_eq!(e.get(0, b"k").unwrap(), Some(val("cg0")));
        assert_eq!(e.get(1, b"k").unwrap(), Some(val("cg1")));
        e.delete(0, b"k").unwrap();
        assert_eq!(e.get(1, b"k").unwrap(), Some(val("cg1")));
    }

    #[test]
    fn recovery_replays_wal_tail() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        {
            let e = HBaseEngine::create(dfs.clone(), HBaseConfig::new("hb").with_flush_bytes(2048))
                .unwrap();
            for i in 0..50 {
                e.put(0, key(&format!("k{i:03}")), val(&format!("v{i}")))
                    .unwrap();
            }
            // Crash without flushing the remainder.
        }
        let e = HBaseEngine::open(dfs, HBaseConfig::new("hb").with_flush_bytes(2048)).unwrap();
        for i in [0, 25, 49] {
            assert_eq!(
                e.get(0, format!("k{i:03}").as_bytes()).unwrap(),
                Some(val(&format!("v{i}"))),
                "key k{i:03} after recovery"
            );
        }
        // New writes continue.
        let ts = e.put(0, key("post"), val("crash")).unwrap();
        assert!(ts.0 > 50);
        assert_eq!(e.full_scan(0).unwrap(), 51);
    }

    #[test]
    fn recovery_does_not_duplicate_flushed_data() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        {
            let e = HBaseEngine::create(dfs.clone(), HBaseConfig::new("hb")).unwrap();
            for i in 0..20 {
                e.put(0, key(&format!("k{i:03}")), val("v")).unwrap();
            }
            e.flush_all().unwrap();
            e.put(0, key("tail"), val("t")).unwrap();
        }
        let e = HBaseEngine::open(dfs, HBaseConfig::new("hb")).unwrap();
        // Flushed records come from the SSTable, not the replayed WAL.
        assert_eq!(e.stats().memtable_entries, 1);
        assert_eq!(e.full_scan(0).unwrap(), 21);
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let e =
            HBaseEngine::create(dfs.clone(), HBaseConfig::new("hb").with_block_bytes(512)).unwrap();
        for i in 0..100 {
            e.put(0, key(&format!("k{i:03}")), val("v")).unwrap();
        }
        e.flush_all().unwrap();
        e.get(0, b"k050").unwrap();
        let reads = dfs.metrics().snapshot().dfs_reads;
        for _ in 0..10 {
            e.get(0, b"k050").unwrap();
        }
        assert_eq!(dfs.metrics().snapshot().dfs_reads, reads);
    }

    #[test]
    fn minor_compaction_merges_tables_and_preserves_reads() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let mut config = HBaseConfig::new("hb").with_flush_bytes(2048);
        config.compaction_trigger = 3;
        let e = HBaseEngine::create(dfs.clone(), config).unwrap();
        for round in 0..6u64 {
            for i in 0..20u64 {
                e.put(0, key(&format!("k{i:03}")), val(&format!("r{round}")))
                    .unwrap();
            }
            e.flush_all().unwrap();
        }
        // Auto-compaction kept the table count below the trigger.
        assert!(
            e.stats().sstables < 3,
            "expected compaction to bound tables, got {}",
            e.stats().sstables
        );
        // Latest values and history both survive the merges.
        assert_eq!(e.get(0, b"k007").unwrap(), Some(val("r5")));
        let t2 = Timestamp(2 * 20); // end of round 1
        assert_eq!(e.get_at(0, b"k007", t2).unwrap(), Some(val("r1")));
        assert_eq!(e.full_scan(0).unwrap(), 20);
    }

    #[test]
    fn explicit_compaction_reclaims_input_files() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let e = HBaseEngine::create(dfs.clone(), HBaseConfig::new("hb")).unwrap();
        for round in 0..3 {
            e.put(0, key("a"), val(&format!("v{round}"))).unwrap();
            e.flush_all().unwrap();
        }
        let files_before = dfs.list("hb/data/").len();
        e.compact_cg(0).unwrap();
        let files_after = dfs.list("hb/data/").len();
        assert!(files_after < files_before);
        assert_eq!(e.stats().sstables, 1);
        assert_eq!(e.get(0, b"a").unwrap(), Some(val("v2")));
    }
    #[test]
    fn concurrent_writers() {
        let e = engine(1 << 14);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let e = Arc::clone(&e);
                s.spawn(move || {
                    for i in 0..100u64 {
                        e.put(0, key(&format!("{t}-{i}")), val("x")).unwrap();
                    }
                });
            }
        });
        assert_eq!(e.full_scan(0).unwrap(), 400);
    }
}
