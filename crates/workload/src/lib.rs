//! Benchmark workload generators (paper §4.1, §4.3, §4.4).
//!
//! - [`zipf::Zipfian`] / [`zipf::ScrambledZipfian`] — the YCSB key
//!   distribution (θ = 1.0 by default, keys drawn from a 2·10⁹ domain).
//! - [`ycsb`] — the YCSB-style benchmark: a load phase of sequential
//!   1 KB-record inserts and an experiment phase mixing reads and
//!   updates (the paper runs 95% and 75% update mixes).
//! - [`tpcw`] — the TPC-W-style webshop model: browsing (5% update),
//!   shopping (20%) and ordering (50%) mixes over item / customer /
//!   cart / orders tables; a read-only transaction reads an item's
//!   detail, an update transaction reads a cart and writes an order.

pub mod tpcw;
pub mod ycsb;
pub mod zipf;

use logbase_common::RowKey;

/// Encode a numeric benchmark key as the 8-byte big-endian row key used
/// throughout the workloads (order-preserving, so range partitioning by
/// key value works).
pub fn encode_key(k: u64) -> RowKey {
    RowKey::copy_from_slice(&k.to_be_bytes())
}

/// Decode [`encode_key`].
pub fn decode_key(bytes: &[u8]) -> Option<u64> {
    bytes.try_into().ok().map(u64::from_be_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_codec_round_trip_preserves_order() {
        let ks = [0u64, 1, 255, 1 << 20, u64::MAX];
        for w in ks.windows(2) {
            assert!(encode_key(w[0]) < encode_key(w[1]));
        }
        for k in ks {
            assert_eq!(decode_key(&encode_key(k)), Some(k));
        }
        assert_eq!(decode_key(b"short"), None);
    }
}
