//! TPC-W-style webshop workload (paper §4.4).
//!
//! Three mixes with 5% / 20% / 50% update transactions. "A read-only
//! transaction performs one read operation to query the details of a
//! product in the item table while an update transaction executes an
//! order request which bundles one read operation to retrieve the
//! user's shopping cart and one write operation into the orders table."

use logbase_common::{RowKey, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three TPC-W mixes the paper runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 5% update transactions.
    Browsing,
    /// 20% update transactions.
    Shopping,
    /// 50% update transactions.
    Ordering,
}

impl Mix {
    /// Update-transaction fraction of the mix.
    pub fn update_fraction(self) -> f64 {
        match self {
            Mix::Browsing => 0.05,
            Mix::Shopping => 0.20,
            Mix::Ordering => 0.50,
        }
    }

    /// Human-readable mix name.
    pub fn name(self) -> &'static str {
        match self {
            Mix::Browsing => "browsing",
            Mix::Shopping => "shopping",
            Mix::Ordering => "ordering",
        }
    }

    /// All three mixes, paper order.
    pub fn all() -> [Mix; 3] {
        [Mix::Browsing, Mix::Shopping, Mix::Ordering]
    }
}

/// One TPC-W transaction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpcwTxn {
    /// Read-only: fetch an item's detail row.
    ProductDetail {
        /// Item key.
        item: RowKey,
    },
    /// Update: read the customer's cart, write an order.
    PlaceOrder {
        /// Cart key to read.
        cart: RowKey,
        /// Order key to write.
        order: RowKey,
        /// Serialized order payload.
        payload: Value,
    },
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct TpcwConfig {
    /// Products loaded per node (paper: 1 M).
    pub items: u64,
    /// Customers (each owns one cart) loaded per node.
    pub customers: u64,
    /// Order payload size.
    pub payload_bytes: usize,
    /// Mix in effect.
    pub mix: Mix,
    /// RNG seed.
    pub seed: u64,
}

impl TpcwConfig {
    /// Paper-shaped configuration scaled to `items` products.
    pub fn new(items: u64, mix: Mix) -> Self {
        TpcwConfig {
            items,
            customers: items / 10 + 1,
            payload_bytes: 256,
            mix,
            seed: 0x7bc_57bc,
        }
    }
}

/// Table names used by the TPC-W schema.
pub mod tables {
    /// Product catalogue.
    pub const ITEM: &str = "item";
    /// Customer profiles.
    pub const CUSTOMER: &str = "customer";
    /// Shopping carts (one per customer).
    pub const CART: &str = "cart";
    /// Completed orders.
    pub const ORDERS: &str = "orders";
}

/// Deterministic TPC-W-style generator.
pub struct TpcwWorkload {
    config: TpcwConfig,
    rng: StdRng,
    next_order: u64,
}

impl TpcwWorkload {
    /// Build a generator.
    pub fn new(config: TpcwConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        TpcwWorkload {
            config,
            rng,
            next_order: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TpcwConfig {
        &self.config
    }

    /// Item keys loaded before the run.
    pub fn item_keys(&self) -> impl Iterator<Item = RowKey> + '_ {
        (0..self.config.items).map(crate::encode_key)
    }

    /// Customer keys (cart keys are identical: one cart per customer,
    /// sharing the customer's key prefix per the paper's entity-group
    /// partitioning, §3.2).
    pub fn customer_keys(&self) -> impl Iterator<Item = RowKey> + '_ {
        (0..self.config.customers).map(crate::encode_key)
    }

    /// Synthetic item detail payload.
    pub fn item_payload(&mut self) -> Value {
        let mut v = vec![0u8; self.config.payload_bytes];
        self.rng.fill(&mut v[..]);
        Value::from(v)
    }

    /// Draw the next transaction request.
    pub fn next_txn(&mut self, node_id: u64) -> TpcwTxn {
        if self.rng.gen::<f64>() < self.config.mix.update_fraction() {
            let customer = self.rng.gen_range(0..self.config.customers);
            let order_id = self.next_order;
            self.next_order += 1;
            let mut payload = vec![0u8; self.config.payload_bytes];
            self.rng.fill(&mut payload[..]);
            TpcwTxn::PlaceOrder {
                cart: crate::encode_key(customer),
                // Order keys embed the node id so concurrent clients on
                // different nodes never collide.
                order: crate::encode_key(node_id << 40 | order_id),
                payload: Value::from(payload),
            }
        } else {
            TpcwTxn::ProductDetail {
                item: crate::encode_key(self.rng.gen_range(0..self.config.items)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_match_paper() {
        assert_eq!(Mix::Browsing.update_fraction(), 0.05);
        assert_eq!(Mix::Shopping.update_fraction(), 0.20);
        assert_eq!(Mix::Ordering.update_fraction(), 0.50);
        assert_eq!(Mix::all().len(), 3);
    }

    #[test]
    fn generated_mix_approximates_target() {
        for mix in Mix::all() {
            let mut w = TpcwWorkload::new(TpcwConfig::new(1000, mix));
            let n = 20_000;
            let updates = (0..n)
                .filter(|_| matches!(w.next_txn(0), TpcwTxn::PlaceOrder { .. }))
                .count();
            let frac = updates as f64 / f64::from(n);
            let target = mix.update_fraction();
            assert!(
                (frac - target).abs() < 0.02,
                "{}: got {frac}, want {target}",
                mix.name()
            );
        }
    }

    #[test]
    fn reads_reference_loaded_items() {
        let mut w = TpcwWorkload::new(TpcwConfig::new(100, Mix::Browsing));
        let items: std::collections::HashSet<RowKey> = w.item_keys().collect();
        for _ in 0..1000 {
            if let TpcwTxn::ProductDetail { item } = w.next_txn(0) {
                assert!(items.contains(&item));
            }
        }
    }

    #[test]
    fn order_keys_are_unique_across_nodes() {
        let mut w1 = TpcwWorkload::new(TpcwConfig::new(100, Mix::Ordering));
        let mut w2 = TpcwWorkload::new(TpcwConfig::new(100, Mix::Ordering));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            for (node, w) in [(1u64, &mut w1), (2u64, &mut w2)] {
                if let TpcwTxn::PlaceOrder { order, .. } = w.next_txn(node) {
                    assert!(seen.insert(order), "duplicate order key");
                }
            }
        }
    }

    #[test]
    fn carts_reference_loaded_customers() {
        let mut w = TpcwWorkload::new(TpcwConfig::new(100, Mix::Ordering));
        let customers: std::collections::HashSet<RowKey> = w.customer_keys().collect();
        for _ in 0..1000 {
            if let TpcwTxn::PlaceOrder { cart, .. } = w.next_txn(0) {
                assert!(customers.contains(&cart));
            }
        }
    }
}
