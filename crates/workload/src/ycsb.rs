//! YCSB-style workload (paper §4.1, §4.3).

use crate::zipf::ScrambledZipfian;
use logbase_common::config::YCSB_MAX_KEY;
use logbase_common::{RowKey, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One benchmark operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point read of `key`.
    Read(RowKey),
    /// Update `key` with `value`.
    Update(RowKey, Value),
}

/// YCSB-style configuration.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Records inserted in the load phase (paper: 1 M per node).
    pub record_count: u64,
    /// Key domain the records scatter over (paper: 2·10⁹).
    pub key_domain: u64,
    /// Value payload size (paper: 1 KB).
    pub value_bytes: usize,
    /// Fraction of updates in the experiment mix (paper: 0.95 / 0.75).
    pub update_fraction: f64,
    /// Zipfian skew (paper: 1.0).
    pub zipf_theta: f64,
    /// RNG seed (deterministic workloads for reproducibility).
    pub seed: u64,
}

impl YcsbConfig {
    /// Paper-shaped configuration scaled to `record_count` records.
    pub fn new(record_count: u64, update_fraction: f64) -> Self {
        YcsbConfig {
            record_count,
            key_domain: YCSB_MAX_KEY,
            value_bytes: logbase_common::config::DEFAULT_RECORD_BYTES,
            update_fraction,
            zipf_theta: 1.0,
            seed: 0x0106_ba5e,
        }
    }
}

/// Deterministic YCSB-style generator.
pub struct YcsbWorkload {
    config: YcsbConfig,
    dist: ScrambledZipfian,
    rng: StdRng,
}

impl YcsbWorkload {
    /// Build a generator from `config`.
    pub fn new(config: YcsbConfig) -> Self {
        let dist = ScrambledZipfian::new(
            config.record_count.max(1),
            config.key_domain,
            config.zipf_theta,
        );
        let rng = StdRng::seed_from_u64(config.seed);
        YcsbWorkload { config, dist, rng }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Keys of the load phase, in insertion order. Every key drawn by
    /// the experiment phase is one of these.
    pub fn load_keys(&self) -> impl Iterator<Item = RowKey> + '_ {
        (0..self.config.record_count).map(|i| crate::encode_key(self.dist.key_of_item(i)))
    }

    /// A fresh payload for one record.
    pub fn make_value(&mut self) -> Value {
        let mut v = vec![0u8; self.config.value_bytes];
        self.rng.fill(&mut v[..]);
        Value::from(v)
    }

    /// Draw the next experiment-phase operation.
    pub fn next_op(&mut self) -> Op {
        let key = crate::encode_key(self.dist.sample(&mut self.rng));
        if self.rng.gen::<f64>() < self.config.update_fraction {
            let mut v = vec![0u8; self.config.value_bytes];
            self.rng.fill(&mut v[..]);
            Op::Update(key, Value::from(v))
        } else {
            Op::Read(key)
        }
    }

    /// Draw a batch of operations.
    pub fn ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_keys_are_unique_enough_and_in_domain() {
        let w = YcsbWorkload::new(YcsbConfig::new(10_000, 0.95));
        let keys: Vec<RowKey> = w.load_keys().collect();
        assert_eq!(keys.len(), 10_000);
        let distinct: std::collections::HashSet<&RowKey> = keys.iter().collect();
        // FNV over 2e9 domain: collisions are rare but possible.
        assert!(distinct.len() as f64 > 0.99 * keys.len() as f64);
        for k in &keys {
            assert!(crate::decode_key(k).unwrap() < YCSB_MAX_KEY);
        }
    }

    #[test]
    fn mix_fraction_is_respected() {
        let mut w = YcsbWorkload::new(YcsbConfig::new(1000, 0.75));
        let ops = w.ops(10_000);
        let updates = ops.iter().filter(|o| matches!(o, Op::Update(_, _))).count();
        let frac = updates as f64 / ops.len() as f64;
        assert!((0.72..0.78).contains(&frac), "update fraction {frac}");
    }

    #[test]
    fn experiment_keys_come_from_the_loaded_set() {
        let mut w = YcsbWorkload::new(YcsbConfig::new(500, 0.5));
        let loaded: std::collections::HashSet<RowKey> = w.load_keys().collect();
        for op in w.ops(2_000) {
            let key = match op {
                Op::Read(k) | Op::Update(k, _) => k,
            };
            assert!(loaded.contains(&key));
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a: Vec<Op> = YcsbWorkload::new(YcsbConfig::new(100, 0.5)).ops(100);
        let b: Vec<Op> = YcsbWorkload::new(YcsbConfig::new(100, 0.5)).ops(100);
        assert_eq!(a, b);
        let mut other_seed = YcsbConfig::new(100, 0.5);
        other_seed.seed = 99;
        let c: Vec<Op> = YcsbWorkload::new(other_seed).ops(100);
        assert_ne!(a, c);
    }

    #[test]
    fn values_have_configured_size() {
        let mut w = YcsbWorkload::new(YcsbConfig::new(10, 1.0));
        assert_eq!(w.make_value().len(), 1024);
        for op in w.ops(50) {
            if let Op::Update(_, v) = op {
                assert_eq!(v.len(), 1024);
            }
        }
    }
}
