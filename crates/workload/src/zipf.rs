//! Zipfian key sampling (the YCSB generator of Gray et al.).

use rand::Rng;

/// Zipfian distribution over `0..n` with skew `theta` (YCSB default
/// 0.99; the paper sets the coefficient to 1.0 — values ≥ 1 are clamped
/// just below 1 as in the YCSB implementation, where θ must be < 1).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum is fine at benchmark scales (n ≤ a few million); for
    // the paper's 2·10⁹ domain the scrambled generator draws from a
    // smaller logical domain and hashes outward.
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// Distribution over `0..n` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian domain must be non-empty");
        let theta = theta.clamp(0.0, 0.9999);
        let zetan = zeta(n, theta);
        let zeta2theta = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// Draw one sample in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Effective skew after clamping.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Internal zeta(2, θ) — exposed for tests.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// FNV-1a based scrambling, spreading the zipfian head uniformly over a
/// large key domain (YCSB's "scrambled zipfian").
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    key_domain: u64,
}

impl ScrambledZipfian {
    /// `item_count` logical items scattered over `0..key_domain`.
    pub fn new(item_count: u64, key_domain: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(item_count, theta),
            key_domain: key_domain.max(1),
        }
    }

    /// Draw a scrambled key in `0..key_domain`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let item = self.inner.sample(rng);
        fnv64(item) % self.key_domain
    }

    /// Deterministically map logical item `i` to its key (the load phase
    /// inserts exactly these keys so experiment-phase reads always hit).
    pub fn key_of_item(&self, item: u64) -> u64 {
        fnv64(item) % self.key_domain
    }

    /// Logical item count.
    pub fn item_count(&self) -> u64 {
        self.inner.domain()
    }
}

fn fnv64(v: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_head() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut head = 0u32;
        let draws = 100_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With θ≈1, the top 1% of items draw well over a third of
        // accesses (uniform would give 1%).
        let frac = f64::from(head) / f64::from(draws);
        assert!(frac > 0.35, "head fraction too small: {frac}");
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            f64::from(max) / f64::from(min.max(1)) < 2.0,
            "uniform draw too skewed: min={min} max={max}"
        );
    }

    #[test]
    fn paper_theta_clamps_below_one() {
        let z = Zipfian::new(100, 1.0);
        assert!(z.theta() < 1.0);
    }

    #[test]
    fn scrambled_spreads_over_key_domain() {
        let s = ScrambledZipfian::new(1000, 2_000_000_000, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut below_half = 0u32;
        for _ in 0..10_000 {
            let k = s.sample(&mut rng);
            assert!(k < 2_000_000_000);
            if k < 1_000_000_000 {
                below_half += 1;
            }
        }
        // Scrambling decorrelates popularity from key order.
        assert!((3000..7000).contains(&below_half));
    }

    #[test]
    fn scrambled_samples_always_land_on_loadable_keys() {
        let s = ScrambledZipfian::new(500, 1 << 40, 1.0);
        let loaded: std::collections::HashSet<u64> = (0..500).map(|i| s.key_of_item(i)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..5_000 {
            assert!(loaded.contains(&s.sample(&mut rng)));
        }
    }
}
