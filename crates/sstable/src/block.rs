//! Data blocks: sorted runs of `(key, ts, Option<value>)` entries.

use bytes::{BufMut, Bytes, BytesMut};
use logbase_common::codec;
use logbase_common::{Result, RowKey, Timestamp, Value};

/// One entry of a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// Record primary key.
    pub key: RowKey,
    /// Version.
    pub ts: Timestamp,
    /// Payload; `None` is a tombstone.
    pub value: Option<Value>,
}

impl BlockEntry {
    /// Approximate encoded size (for block-size budgeting).
    pub fn encoded_len(&self) -> usize {
        4 + self.key.len() + 8 + 1 + self.value.as_ref().map_or(0, |v| 4 + v.len())
    }
}

/// Builds one block of entries appended in `(key, ts)` ascending order.
#[derive(Default)]
pub struct BlockBuilder {
    buf: BytesMut,
    count: u32,
    first_key: Option<RowKey>,
    last: Option<(RowKey, Timestamp)>,
}

impl BlockBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry. Panics (debug) when called out of order — the
    /// writer sorts upstream, so disorder here is a logic bug.
    pub fn add(&mut self, entry: &BlockEntry) {
        debug_assert!(
            self.last
                .as_ref()
                .is_none_or(|(k, t)| (&entry.key, entry.ts) > (k, *t)),
            "block entries must be added in strictly ascending (key, ts) order"
        );
        if self.first_key.is_none() {
            self.first_key = Some(entry.key.clone());
        }
        self.last = Some((entry.key.clone(), entry.ts));
        codec::put_bytes(&mut self.buf, &entry.key);
        self.buf.put_u64_le(entry.ts.0);
        match &entry.value {
            Some(v) => {
                self.buf.put_u8(1);
                codec::put_bytes(&mut self.buf, v);
            }
            None => self.buf.put_u8(0),
        }
        self.count += 1;
    }

    /// Encoded byte size so far (excluding the trailing count).
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Entries added so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no entries were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// First key in the block (the sparse index key).
    pub fn first_key(&self) -> Option<&RowKey> {
        self.first_key.as_ref()
    }

    /// Last `(key, ts)` added.
    pub fn last_key(&self) -> Option<&(RowKey, Timestamp)> {
        self.last.as_ref()
    }

    /// Finish: returns the encoded block and resets the builder.
    pub fn finish(&mut self) -> Bytes {
        let mut out = std::mem::take(&mut self.buf);
        out.put_u32_le(self.count);
        self.count = 0;
        self.first_key = None;
        self.last = None;
        out.freeze()
    }
}

/// A decoded block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Entries in `(key, ts)` ascending order.
    pub entries: Vec<BlockEntry>,
}

impl Block {
    /// Decode a block produced by [`BlockBuilder::finish`].
    pub fn decode(raw: &Bytes) -> Result<Block> {
        let ctx = "sstable block";
        if raw.len() < 4 {
            return Err(logbase_common::Error::Corruption(format!(
                "{ctx}: shorter than its count field"
            )));
        }
        let count_pos = raw.len() - 4;
        let count = u32::from_le_bytes(raw[count_pos..].try_into().expect("4 bytes"));
        let mut src = raw.slice(0..count_pos);
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let key = codec::get_bytes(&mut src, ctx)?;
            let ts = Timestamp(codec::get_u64(&mut src, ctx)?);
            let has_value = codec::get_u8(&mut src, ctx)?;
            let value = match has_value {
                0 => None,
                1 => Some(codec::get_bytes(&mut src, ctx)?),
                other => {
                    return Err(logbase_common::Error::Corruption(format!(
                        "{ctx}: bad value flag {other}"
                    )))
                }
            };
            entries.push(BlockEntry {
                key: RowKey::from(key),
                ts,
                value,
            });
        }
        if !src.is_empty() {
            return Err(logbase_common::Error::Corruption(format!(
                "{ctx}: {} trailing bytes after {count} entries",
                src.len()
            )));
        }
        Ok(Block { entries })
    }

    /// Latest version of `key` with `ts <= at` within this block.
    pub fn get_at(&self, key: &[u8], at: Timestamp) -> Option<&BlockEntry> {
        // Entries are (key, ts) ascending: find the partition point past
        // (key, at) and step back one; check it is the right key.
        let idx = self
            .entries
            .partition_point(|e| (&e.key[..], e.ts) <= (key, at));
        let candidate = self.entries.get(idx.checked_sub(1)?)?;
        (candidate.key == key).then_some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, ts: u64, value: Option<&str>) -> BlockEntry {
        BlockEntry {
            key: RowKey::copy_from_slice(key.as_bytes()),
            ts: Timestamp(ts),
            value: value.map(|v| Value::copy_from_slice(v.as_bytes())),
        }
    }

    #[test]
    fn build_decode_round_trip() {
        let mut b = BlockBuilder::new();
        let entries = vec![
            entry("a", 1, Some("v1")),
            entry("a", 5, Some("v2")),
            entry("b", 2, None),
            entry("c", 3, Some("v3")),
        ];
        for e in &entries {
            b.add(e);
        }
        assert_eq!(b.count(), 4);
        assert_eq!(&b.first_key().unwrap()[..], b"a");
        let raw = b.finish();
        let block = Block::decode(&raw).unwrap();
        assert_eq!(block.entries, entries);
    }

    #[test]
    fn empty_block_round_trips() {
        let mut b = BlockBuilder::new();
        assert!(b.is_empty());
        let raw = b.finish();
        let block = Block::decode(&raw).unwrap();
        assert!(block.entries.is_empty());
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new();
        b.add(&entry("x", 1, Some("v")));
        let _ = b.finish();
        assert!(b.is_empty());
        assert!(b.first_key().is_none());
        b.add(&entry("a", 1, Some("v")));
        assert_eq!(&b.first_key().unwrap()[..], b"a");
    }

    #[test]
    fn get_at_picks_visible_version() {
        let mut b = BlockBuilder::new();
        for e in [
            entry("a", 1, Some("v1")),
            entry("a", 5, Some("v2")),
            entry("a", 9, None),
            entry("b", 2, Some("w")),
        ] {
            b.add(&e);
        }
        let block = Block::decode(&b.finish()).unwrap();
        assert_eq!(
            block.get_at(b"a", Timestamp(4)).unwrap().value.as_deref(),
            Some(&b"v1"[..])
        );
        assert_eq!(
            block.get_at(b"a", Timestamp(5)).unwrap().value.as_deref(),
            Some(&b"v2"[..])
        );
        // At t=9 the tombstone is the visible version.
        assert!(block.get_at(b"a", Timestamp(100)).unwrap().value.is_none());
        assert!(block.get_at(b"a", Timestamp(0)).is_none());
        assert!(block.get_at(b"z", Timestamp(100)).is_none());
        // Probing "b" must not match "a"'s versions.
        assert_eq!(
            block.get_at(b"b", Timestamp(100)).unwrap().value.as_deref(),
            Some(&b"w"[..])
        );
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut b = BlockBuilder::new();
        b.add(&entry("a", 1, Some("v")));
        let raw = b.finish();
        let mut bad = raw.to_vec();
        // Claim one more entry than present.
        let n = bad.len();
        bad[n - 4] = 2;
        assert!(Block::decode(&Bytes::from(bad)).is_err());
    }

    #[test]
    fn encoded_len_is_close() {
        let e = entry("key", 1, Some("value"));
        let mut b = BlockBuilder::new();
        b.add(&e);
        assert_eq!(b.len_bytes(), e.encoded_len());
    }
}
