//! K-way merge of sorted entry streams.

use crate::block::BlockEntry;

/// Merge several `(key, ts)`-ascending entry vectors into one, dropping
/// duplicates: when the same `(key, ts)` appears in more than one input,
/// the entry from the *lower-indexed* (newer) input wins. All distinct
/// versions are kept — the LSM-tree stays multiversion; garbage
/// collection of old versions is a policy decision applied by callers
/// via `retain`.
pub fn merge_entries(mut inputs: Vec<Vec<BlockEntry>>) -> Vec<BlockEntry> {
    // Simple loser-tree-free implementation: repeatedly take the minimum
    // head. Input counts are small (a handful of tables per compaction).
    let total: usize = inputs.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; inputs.len()];
    let mut out: Vec<BlockEntry> = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, input) in inputs.iter().enumerate() {
            let Some(e) = input.get(cursors[i]) else {
                continue;
            };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let be = &inputs[b][cursors[b]];
                    if (&e.key, e.ts) < (&be.key, be.ts) {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(b) = best else { break };
        let e = std::mem::replace(
            &mut inputs[b][cursors[b]],
            BlockEntry {
                key: Default::default(),
                ts: logbase_common::Timestamp::ZERO,
                value: None,
            },
        );
        cursors[b] += 1;
        match out.last() {
            Some(last) if last.key == e.key && last.ts == e.ts => {
                // Same (key, ts) from an older input: drop it.
            }
            _ => out.push(e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_common::{RowKey, Timestamp, Value};

    fn e(key: &str, ts: u64, v: &str) -> BlockEntry {
        BlockEntry {
            key: RowKey::copy_from_slice(key.as_bytes()),
            ts: Timestamp(ts),
            value: Some(Value::copy_from_slice(v.as_bytes())),
        }
    }

    #[test]
    fn merges_disjoint_streams_in_order() {
        let out = merge_entries(vec![
            vec![e("a", 1, "x"), e("c", 1, "x")],
            vec![e("b", 1, "x"), e("d", 1, "x")],
        ]);
        let keys: Vec<&[u8]> = out.iter().map(|x| &x.key[..]).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"d"]);
    }

    #[test]
    fn keeps_all_versions_of_a_key() {
        let out = merge_entries(vec![
            vec![e("a", 5, "new")],
            vec![e("a", 1, "old"), e("a", 3, "mid")],
        ]);
        let versions: Vec<u64> = out.iter().map(|x| x.ts.0).collect();
        assert_eq!(versions, vec![1, 3, 5]);
    }

    #[test]
    fn newer_input_wins_exact_duplicates() {
        let out = merge_entries(vec![vec![e("a", 1, "newer")], vec![e("a", 1, "older")]]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.as_deref(), Some(&b"newer"[..]));
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_entries(vec![]).is_empty());
        assert!(merge_entries(vec![vec![], vec![]]).is_empty());
        let out = merge_entries(vec![vec![], vec![e("a", 1, "x")]]);
        assert_eq!(out.len(), 1);
    }
}
