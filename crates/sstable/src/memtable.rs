//! Memtable: the sorted write buffer of the WAL+Data baselines.
//!
//! HBase buffers writes in a memtable and flushes it to an SSTable when
//! full — the "data written twice" half of the WAL+Data bottleneck the
//! paper removes (§1, §3.6, Fig. 3 right). The LSM-tree uses the same
//! structure as its level-0 source.

use crate::block::BlockEntry;
use logbase_common::schema::KeyRange;
use logbase_common::{RowKey, Timestamp, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sorted in-memory buffer of `(key, ts) → Option<value>`.
pub struct Memtable {
    map: RwLock<BTreeMap<(RowKey, Timestamp), Option<Value>>>,
    bytes: AtomicU64,
}

impl Default for Memtable {
    fn default() -> Self {
        Self::new()
    }
}

impl Memtable {
    /// New empty memtable.
    pub fn new() -> Self {
        Memtable {
            map: RwLock::new(BTreeMap::new()),
            bytes: AtomicU64::new(0),
        }
    }

    /// Buffer a write (or tombstone when `value` is `None`).
    pub fn put(&self, key: RowKey, ts: Timestamp, value: Option<Value>) {
        let sz = (key.len() + 8 + value.as_ref().map_or(0, |v| v.len()) + 24) as u64;
        let mut map = self.map.write();
        if let Some(old) = map.insert((key, ts), value) {
            let old_sz = (8 + old.as_ref().map_or(0, |v| v.len()) + 24) as u64;
            self.bytes.fetch_sub(old_sz.min(sz), Ordering::Relaxed);
        }
        self.bytes.fetch_add(sz, Ordering::Relaxed);
    }

    /// Latest version of `key` with `ts <= at`.
    /// `Some(None)` means the visible version is a tombstone.
    pub fn get_at(&self, key: &[u8], at: Timestamp) -> Option<Option<Value>> {
        let map = self.map.read();
        map.range((
            Bound::Included((RowKey::copy_from_slice(key), Timestamp::ZERO)),
            Bound::Included((RowKey::copy_from_slice(key), at)),
        ))
        .next_back()
        .map(|(_, v)| v.clone())
    }

    /// All buffered versions of exactly `key`, oldest first.
    pub fn versions(&self, key: &[u8]) -> Vec<(Timestamp, Option<Value>)> {
        let map = self.map.read();
        map.range((
            Bound::Included((RowKey::copy_from_slice(key), Timestamp::ZERO)),
            Bound::Included((RowKey::copy_from_slice(key), Timestamp::MAX)),
        ))
        .map(|((_, ts), v)| (*ts, v.clone()))
        .collect()
    }

    /// All buffered entries in `(key, ts)` order (flush input).
    pub fn entries(&self) -> Vec<BlockEntry> {
        let map = self.map.read();
        map.iter()
            .map(|((key, ts), value)| BlockEntry {
                key: key.clone(),
                ts: *ts,
                value: value.clone(),
            })
            .collect()
    }

    /// Entries whose key lies in `range`, latest version `<= at` per key.
    pub fn range_latest_at(&self, range: &KeyRange, at: Timestamp) -> Vec<BlockEntry> {
        let map = self.map.read();
        let lower = Bound::Included((range.start.clone(), Timestamp::ZERO));
        let upper = match &range.end {
            Some(end) => Bound::Excluded((end.clone(), Timestamp::ZERO)),
            None => Bound::Unbounded,
        };
        let mut out: Vec<BlockEntry> = Vec::new();
        for ((key, ts), value) in map.range((lower, upper)) {
            if *ts > at {
                continue;
            }
            match out.last_mut() {
                Some(last) if last.key == *key => {
                    last.ts = *ts;
                    last.value = value.clone();
                }
                _ => out.push(BlockEntry {
                    key: key.clone(),
                    ts: *ts,
                    value: value.clone(),
                }),
            }
        }
        out
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Buffered entry count.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drop everything (after a successful flush).
    pub fn clear(&self) {
        self.map.write().clear();
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_latest() {
        let m = Memtable::new();
        m.put(key("a"), Timestamp(1), Some(val("v1")));
        m.put(key("a"), Timestamp(5), Some(val("v2")));
        assert_eq!(m.get_at(b"a", Timestamp::MAX).unwrap().unwrap(), val("v2"));
        assert_eq!(m.get_at(b"a", Timestamp(3)).unwrap().unwrap(), val("v1"));
        assert!(m.get_at(b"a", Timestamp::ZERO).is_none());
        assert!(m.get_at(b"b", Timestamp::MAX).is_none());
    }

    #[test]
    fn tombstones_are_visible_versions() {
        let m = Memtable::new();
        m.put(key("a"), Timestamp(1), Some(val("v")));
        m.put(key("a"), Timestamp(2), None);
        assert_eq!(m.get_at(b"a", Timestamp::MAX), Some(None));
        assert_eq!(m.get_at(b"a", Timestamp(1)), Some(Some(val("v"))));
    }

    #[test]
    fn entries_are_sorted() {
        let m = Memtable::new();
        m.put(key("c"), Timestamp(1), Some(val("3")));
        m.put(key("a"), Timestamp(2), Some(val("1")));
        m.put(key("b"), Timestamp(3), Some(val("2")));
        let e = m.entries();
        let keys: Vec<&[u8]> = e.iter().map(|x| &x.key[..]).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c"]);
    }

    #[test]
    fn range_latest_filters_and_dedups() {
        let m = Memtable::new();
        m.put(key("a"), Timestamp(1), Some(val("old")));
        m.put(key("a"), Timestamp(9), Some(val("new")));
        m.put(key("b"), Timestamp(2), Some(val("b")));
        m.put(key("z"), Timestamp(3), Some(val("z")));
        let out = m.range_latest_at(&KeyRange::new(&b"a"[..], &b"c"[..]), Timestamp(5));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value.as_ref().unwrap(), &val("old"));
        assert_eq!(&out[1].key[..], b"b");
    }

    #[test]
    fn byte_accounting_grows_and_clears() {
        let m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(key("k"), Timestamp(1), Some(val("0123456789")));
        assert!(m.approx_bytes() > 10);
        m.clear();
        assert_eq!(m.approx_bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_writers() {
        let m = std::sync::Arc::new(Memtable::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..250u64 {
                        m.put(key(&format!("{t}-{i}")), Timestamp(i), Some(val("x")));
                    }
                });
            }
        });
        assert_eq!(m.len(), 1000);
    }
}
