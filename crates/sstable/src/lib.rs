//! Sorted string tables — the storage primitive of the **baselines**.
//!
//! The paper compares LogBase against systems that keep data in sorted
//! data files separate from the log: HBase (memtable → SSTable flush,
//! sparse block index, block cache) and LRS (an LSM-tree à la LevelDB).
//! This crate provides the shared machinery both baselines are built
//! from:
//!
//! - [`SsTableWriter`] / [`SsTableReader`] — a block-based sorted table
//!   on the DFS with a *sparse* block index (one key per block — exactly
//!   the design that loses to LogBase's *dense* in-memory index on
//!   long-tail reads, Fig. 7) and a bloom filter for absent-key probes;
//! - [`BlockCache`] — byte-budgeted LRU over decoded blocks;
//! - [`Memtable`] — the sorted in-memory buffer flushed into tables.
//!
//! Entries are `(key, timestamp) → Option<value>` with `None` encoding a
//! tombstone, sorted ascending by `(key, ts)` — the same composite order
//! the rest of the workspace uses.

mod block;
mod bloom;
mod memtable;
mod merge;
mod reader;
mod writer;

pub use block::{Block, BlockBuilder, BlockEntry};
pub use bloom::BloomFilter;
pub use memtable::Memtable;
pub use merge::merge_entries;
pub use reader::{BlockCache, SsTableIter, SsTableReader};
pub use writer::{SsTableConfig, SsTableWriter};
