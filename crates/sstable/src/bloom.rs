//! Bloom filter over record keys.
//!
//! Standard double-hashing construction (Kirsch–Mitzenmacher): two
//! 64-bit FNV-1a-derived hashes combined as `h1 + i·h2` drive `k`
//! probes. Sized at build time for a target bits-per-key.

use bytes::{BufMut, Bytes, BytesMut};
use logbase_common::codec;
use logbase_common::{Error, Result};

/// An immutable bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (xorshift-multiply) to decorrelate low bits.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

impl BloomFilter {
    /// Build a filter over `keys` with ~`bits_per_key` bits per key
    /// (10 bits/key ≈ 1% false positives).
    pub fn build<'a>(keys: impl ExactSizeIterator<Item = &'a [u8]>, bits_per_key: usize) -> Self {
        let n = keys.len().max(1);
        let nbits = (n * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        // k = ln(2) * bits/key, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut bits = vec![0u8; nbytes];
        let nbits = (nbytes * 8) as u64;
        for key in keys {
            let h1 = fnv1a(key, 0);
            let h2 = fnv1a(key, 0x9e37_79b9_7f4a_7c15);
            for i in 0..k {
                let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2))) % nbits;
                bits[(bit / 8) as usize] |= 1 << (bit % 8);
            }
        }
        BloomFilter { bits, k }
    }

    /// True when `key` *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let nbits = (self.bits.len() * 8) as u64;
        if nbits == 0 {
            return true;
        }
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9e37_79b9_7f4a_7c15);
        for i in 0..self.k {
            let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2))) % nbits;
            if self.bits[(bit / 8) as usize] & (1 << (bit % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialize for the table's filter block.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.bits.len());
        buf.put_u32_le(self.k);
        codec::put_bytes(&mut buf, &self.bits);
        buf.freeze()
    }

    /// Decode a filter block.
    pub fn decode(mut src: Bytes) -> Result<Self> {
        let k = codec::get_u32(&mut src, "bloom filter")?;
        if k == 0 || k > 64 {
            return Err(Error::Corruption(format!("bloom filter: bad k={k}")));
        }
        let bits = codec::get_bytes(&mut src, "bloom filter")?.to_vec();
        Ok(BloomFilter { bits, k })
    }

    /// Size of the bit array in bytes.
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("user-{i:08}").into_bytes())
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        for k in &ks {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            let absent = format!("absent-{i:08}");
            if f.may_contain(absent.as_bytes()) {
                fp += 1;
            }
        }
        let rate = f64::from(fp) / f64::from(probes);
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn encode_decode_round_trip() {
        let ks = keys(100);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let back = BloomFilter::decode(f.encode()).unwrap();
        assert_eq!(back, f);
        for k in &ks {
            assert!(back.may_contain(k));
        }
    }

    #[test]
    fn empty_filter_is_valid() {
        let f = BloomFilter::build(std::iter::empty::<&[u8]>(), 10);
        // No keys inserted: everything is definitely absent.
        assert!(!f.may_contain(b"anything"));
        let back = BloomFilter::decode(f.encode()).unwrap();
        assert!(!back.may_contain(b"anything"));
    }

    #[test]
    fn decode_rejects_bad_k() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        codec::put_bytes(&mut buf, &[0u8; 8]);
        assert!(BloomFilter::decode(buf.freeze()).is_err());
    }

    proptest! {
        #[test]
        fn prop_built_keys_always_match(
            ks in proptest::collection::hash_set(
                proptest::collection::vec(any::<u8>(), 1..32), 1..100)
        ) {
            let ks: Vec<Vec<u8>> = ks.into_iter().collect();
            let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 12);
            for k in &ks {
                prop_assert!(f.may_contain(k));
            }
        }
    }
}
