//! SSTable writer: blocks + sparse index + bloom filter + footer.
//!
//! Layout (all sections CRC-framed):
//!
//! ```text
//! [block 0][block 1]...[block n-1][index block][filter block][footer]
//! ```
//!
//! The index block stores `(first_key, offset, len)` per data block —
//! *sparse*, one key per block, the HBase design. The fixed-size footer
//! (last 32 bytes, unframed) locates the index and filter.

use crate::block::{BlockBuilder, BlockEntry};
use crate::bloom::BloomFilter;
use bytes::{BufMut, BytesMut};
use logbase_common::codec;
use logbase_common::{Result, RowKey};
use logbase_dfs::Dfs;

/// Magic number ending every SSTable.
pub const SSTABLE_MAGIC: u64 = 0x4c6f_6742_6173_6531; // "LogBase1"

/// Footer size in bytes: index off/len + filter off/len + count + magic.
pub const FOOTER_LEN: usize = 8 + 8 + 8 + 8 + 8 + 8;

/// SSTable build knobs.
#[derive(Debug, Clone)]
pub struct SsTableConfig {
    /// Target uncompressed block size (HBase default: 64 KB).
    pub block_bytes: usize,
    /// Bloom filter bits per key (0 disables the filter).
    pub bloom_bits_per_key: usize,
}

impl Default for SsTableConfig {
    fn default() -> Self {
        SsTableConfig {
            block_bytes: 64 * 1024,
            bloom_bits_per_key: 10,
        }
    }
}

/// Streams sorted entries into an SSTable file on the DFS.
pub struct SsTableWriter {
    dfs: Dfs,
    name: String,
    config: SsTableConfig,
    buf: BytesMut,
    builder: BlockBuilder,
    index: Vec<(RowKey, u64, u64)>,
    keys: Vec<RowKey>,
    count: u64,
    last: Option<(RowKey, logbase_common::Timestamp)>,
}

impl SsTableWriter {
    /// Begin writing `name` (must not exist).
    pub fn create(dfs: Dfs, name: impl Into<String>, config: SsTableConfig) -> Result<Self> {
        let name = name.into();
        dfs.create(&name)?;
        Ok(SsTableWriter {
            dfs,
            name,
            config,
            buf: BytesMut::new(),
            builder: BlockBuilder::new(),
            index: Vec::new(),
            keys: Vec::new(),
            count: 0,
            last: None,
        })
    }

    /// Append an entry; entries must arrive in strictly ascending
    /// `(key, ts)` order.
    pub fn add(&mut self, entry: &BlockEntry) -> Result<()> {
        if let Some((k, t)) = &self.last {
            if (&entry.key, entry.ts) <= (k, *t) {
                return Err(logbase_common::Error::InvalidArgument(format!(
                    "SSTable {} entries out of order",
                    self.name
                )));
            }
        }
        self.last = Some((entry.key.clone(), entry.ts));
        // Start a new block at a key boundary once the target size is
        // reached, so one key's versions never straddle blocks.
        if self.builder.len_bytes() >= self.config.block_bytes
            && self.builder.last_key().map(|(k, _)| k != &entry.key) == Some(true)
        {
            self.flush_block();
        }
        if self.keys.last() != Some(&entry.key) {
            self.keys.push(entry.key.clone());
        }
        self.builder.add(entry);
        self.count += 1;
        Ok(())
    }

    fn flush_block(&mut self) {
        if self.builder.is_empty() {
            return;
        }
        let first_key = self.builder.first_key().expect("non-empty block").clone();
        let raw = self.builder.finish();
        let offset = self.buf.len() as u64;
        let framed = codec::encode_frame(&mut self.buf, &raw);
        self.index.push((first_key, offset, framed as u64));
    }

    /// Entries added so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finalize: write blocks, index, filter and footer. Returns the
    /// entry count.
    pub fn finish(mut self) -> Result<u64> {
        self.flush_block();

        // Index block.
        let mut idx = BytesMut::new();
        idx.put_u64_le(self.index.len() as u64);
        for (key, off, len) in &self.index {
            codec::put_bytes(&mut idx, key);
            idx.put_u64_le(*off);
            idx.put_u64_le(*len);
        }
        let index_off = self.buf.len() as u64;
        let index_len = codec::encode_frame(&mut self.buf, &idx) as u64;

        // Filter block.
        let filter = BloomFilter::build(
            self.keys.iter().map(|k| &k[..]),
            self.config.bloom_bits_per_key.max(1),
        );
        let filter_off = self.buf.len() as u64;
        let filter_len = codec::encode_frame(&mut self.buf, &filter.encode()) as u64;

        // Footer (fixed size, unframed).
        self.buf.put_u64_le(index_off);
        self.buf.put_u64_le(index_len);
        self.buf.put_u64_le(filter_off);
        self.buf.put_u64_le(filter_len);
        self.buf.put_u64_le(self.count);
        self.buf.put_u64_le(SSTABLE_MAGIC);

        self.dfs.append(&self.name, &self.buf)?;
        self.dfs.seal(&self.name)?;
        Ok(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_common::{Timestamp, Value};
    use logbase_dfs::DfsConfig;

    fn entry(key: &str, ts: u64) -> BlockEntry {
        BlockEntry {
            key: RowKey::copy_from_slice(key.as_bytes()),
            ts: Timestamp(ts),
            value: Some(Value::copy_from_slice(b"x")),
        }
    }

    #[test]
    fn writer_rejects_out_of_order() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let mut w = SsTableWriter::create(dfs, "t/1", SsTableConfig::default()).unwrap();
        w.add(&entry("b", 1)).unwrap();
        assert!(w.add(&entry("a", 1)).is_err());
        assert!(w.add(&entry("b", 1)).is_err()); // duplicates too
        w.add(&entry("b", 2)).unwrap();
    }

    #[test]
    fn writer_creates_multiple_blocks() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let mut w = SsTableWriter::create(
            dfs.clone(),
            "t/multi",
            SsTableConfig {
                block_bytes: 64,
                bloom_bits_per_key: 10,
            },
        )
        .unwrap();
        for i in 0..100 {
            w.add(&entry(&format!("key-{i:04}"), 1)).unwrap();
        }
        assert!(w.index.len() > 2, "expected several blocks");
        assert_eq!(w.finish().unwrap(), 100);
        assert!(dfs.len("t/multi").unwrap() > 0);
    }

    #[test]
    fn refuses_existing_file() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        dfs.create("t/clash").unwrap();
        assert!(SsTableWriter::create(dfs, "t/clash", SsTableConfig::default()).is_err());
    }
}
