//! SSTable reader: footer/index/filter parsing, cached block reads.

use crate::block::{Block, BlockEntry};
use crate::bloom::BloomFilter;
use crate::writer::{FOOTER_LEN, SSTABLE_MAGIC};
use logbase_common::cache::Cache;
use logbase_common::codec;
use logbase_common::metrics::Metrics;
use logbase_common::schema::KeyRange;
use logbase_common::{Error, Result, RowKey, Timestamp};
use logbase_dfs::Dfs;
use std::sync::Arc;

/// Shared cache of decoded blocks keyed by `(file, block offset)`.
///
/// This is the baselines' *block cache*: on a hit, a point read needs no
/// DFS I/O at all; on a miss, a whole block (~64 KB) is fetched to serve
/// one record — the extra work Fig. 7 charges HBase for.
pub struct BlockCache {
    cache: Cache<(String, u64), Arc<Block>>,
}

impl BlockCache {
    /// Cache with the given byte budget and the default shard count.
    pub fn new(capacity_bytes: u64) -> Self {
        BlockCache {
            cache: Cache::lru(capacity_bytes),
        }
    }

    /// Cache with an explicit shard count (hash-partitioned; see
    /// `logbase_common::cache`). `0` means the default shard count.
    pub fn with_shards(capacity_bytes: u64, shards: usize) -> Self {
        if shards == 0 {
            return Self::new(capacity_bytes);
        }
        BlockCache {
            cache: Cache::lru_sharded(capacity_bytes, shards),
        }
    }

    fn get(&self, file: &str, offset: u64) -> Option<Arc<Block>> {
        self.cache.get(&(file.to_string(), offset))
    }

    fn insert(&self, file: &str, offset: u64, block: Arc<Block>, bytes: u64) {
        self.cache.insert((file.to_string(), offset), block, bytes);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Drop all cached blocks.
    pub fn clear(&self) {
        self.cache.clear();
    }
}

/// An open SSTable: sparse index and bloom filter resident, data blocks
/// fetched on demand (optionally through a [`BlockCache`]).
pub struct SsTableReader {
    dfs: Dfs,
    name: String,
    index: Vec<(RowKey, u64, u64)>,
    filter: BloomFilter,
    count: u64,
    file_bytes: u64,
}

impl SsTableReader {
    /// Open `name`, reading footer, sparse index and filter.
    pub fn open(dfs: Dfs, name: impl Into<String>) -> Result<Self> {
        let name = name.into();
        let file_len = dfs.len(&name)?;
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::Corruption(format!(
                "{name}: too short for an SSTable footer"
            )));
        }
        let footer = dfs.read(&name, file_len - FOOTER_LEN as u64, FOOTER_LEN as u64)?;
        let mut f = footer;
        let index_off = codec::get_u64(&mut f, &name)?;
        let index_len = codec::get_u64(&mut f, &name)?;
        let filter_off = codec::get_u64(&mut f, &name)?;
        let filter_len = codec::get_u64(&mut f, &name)?;
        let count = codec::get_u64(&mut f, &name)?;
        let magic = codec::get_u64(&mut f, &name)?;
        if magic != SSTABLE_MAGIC {
            return Err(Error::Corruption(format!(
                "{name}: bad SSTable magic {magic:#018x}"
            )));
        }

        let raw_index = dfs.read(&name, index_off, index_len)?;
        let (index_payload, _) = codec::decode_frame(&raw_index, &name)?;
        let mut src = index_payload;
        let n = codec::get_u64(&mut src, &name)?;
        let mut index = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = codec::get_bytes(&mut src, &name)?;
            let off = codec::get_u64(&mut src, &name)?;
            let len = codec::get_u64(&mut src, &name)?;
            index.push((RowKey::from(key), off, len));
        }

        let raw_filter = dfs.read(&name, filter_off, filter_len)?;
        let (filter_payload, _) = codec::decode_frame(&raw_filter, &name)?;
        let filter = BloomFilter::decode(filter_payload)?;

        Ok(SsTableReader {
            dfs,
            name,
            index,
            filter,
            count,
            file_bytes: file_len,
        })
    }

    /// File name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total entries in the table.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// On-DFS size of the table at open time (merge policies weigh
    /// runs by bytes).
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Bloom filter probe: false means `key` is definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.filter.may_contain(key)
    }

    /// Index of the block that may contain `key` (the last block whose
    /// first key is `<= key`).
    fn block_for(&self, key: &[u8]) -> Option<usize> {
        let idx = self
            .index
            .partition_point(|(first, _, _)| &first[..] <= key);
        idx.checked_sub(1)
    }

    fn load_block(&self, block_idx: usize, cache: Option<&BlockCache>) -> Result<Arc<Block>> {
        let (_, off, len) = self.index[block_idx];
        if let Some(c) = cache {
            if let Some(b) = c.get(&self.name, off) {
                Metrics::incr(&self.dfs.metrics().cache_hits);
                return Ok(b);
            }
            Metrics::incr(&self.dfs.metrics().cache_misses);
        }
        let raw = self.dfs.read(&self.name, off, len)?;
        let (payload, _) = codec::decode_frame(&raw, &self.name)?;
        let block = Arc::new(Block::decode(&payload)?);
        if let Some(c) = cache {
            c.insert(&self.name, off, Arc::clone(&block), len);
        }
        Ok(block)
    }

    /// Latest version of `key` with `ts <= at`.
    ///
    /// Returns `Some(entry)` even when the visible version is a
    /// tombstone — the caller distinguishes "deleted here" from "absent,
    /// look in older tables".
    pub fn get_at(
        &self,
        key: &[u8],
        at: Timestamp,
        cache: Option<&BlockCache>,
    ) -> Result<Option<BlockEntry>> {
        if !self.filter.may_contain(key) {
            return Ok(None);
        }
        let Some(block_idx) = self.block_for(key) else {
            return Ok(None);
        };
        let block = self.load_block(block_idx, cache)?;
        Ok(block.get_at(key, at).cloned())
    }

    /// Iterate all entries in `(key, ts)` order.
    pub fn iter<'a>(&'a self, cache: Option<&'a BlockCache>) -> SsTableIter<'a> {
        SsTableIter {
            reader: self,
            cache,
            block_idx: 0,
            entry_idx: 0,
            block: None,
            range: KeyRange::all(),
            done: false,
        }
    }

    /// Iterate entries whose key falls in `range`.
    pub fn range_iter<'a>(
        &'a self,
        range: KeyRange,
        cache: Option<&'a BlockCache>,
    ) -> SsTableIter<'a> {
        // Start at the block that may contain range.start.
        let start_block = if range.start.is_empty() {
            0
        } else {
            self.block_for(&range.start).unwrap_or(0)
        };
        SsTableIter {
            reader: self,
            cache,
            block_idx: start_block,
            entry_idx: 0,
            block: None,
            range,
            done: false,
        }
    }
}

/// Streaming iterator over an SSTable (optionally range-bounded).
pub struct SsTableIter<'a> {
    reader: &'a SsTableReader,
    cache: Option<&'a BlockCache>,
    block_idx: usize,
    entry_idx: usize,
    block: Option<Arc<Block>>,
    range: KeyRange,
    done: bool,
}

impl SsTableIter<'_> {
    /// Next entry, or `None` at the end. Errors come from DFS reads or
    /// corrupt blocks.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<BlockEntry>> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.block.is_none() {
                if self.block_idx >= self.reader.index.len() {
                    self.done = true;
                    return Ok(None);
                }
                self.block = Some(self.reader.load_block(self.block_idx, self.cache)?);
                self.entry_idx = 0;
            }
            let block = self.block.as_ref().expect("block loaded above");
            if self.entry_idx >= block.entries.len() {
                self.block = None;
                self.block_idx += 1;
                continue;
            }
            let entry = block.entries[self.entry_idx].clone();
            self.entry_idx += 1;
            if entry.key[..] < self.range.start[..] {
                continue;
            }
            if let Some(end) = &self.range.end {
                if entry.key[..] >= end[..] {
                    self.done = true;
                    return Ok(None);
                }
            }
            return Ok(Some(entry));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{SsTableConfig, SsTableWriter};
    use logbase_common::Value;
    use logbase_dfs::DfsConfig;

    fn entry(key: &str, ts: u64, value: Option<&str>) -> BlockEntry {
        BlockEntry {
            key: RowKey::copy_from_slice(key.as_bytes()),
            ts: Timestamp(ts),
            value: value.map(|v| Value::copy_from_slice(v.as_bytes())),
        }
    }

    fn build_table(dfs: &Dfs, name: &str, block_bytes: usize, n: u64) -> SsTableReader {
        let mut w = SsTableWriter::create(
            dfs.clone(),
            name,
            SsTableConfig {
                block_bytes,
                bloom_bits_per_key: 10,
            },
        )
        .unwrap();
        for i in 0..n {
            w.add(&entry(&format!("key-{i:05}"), 1, Some("v"))).unwrap();
        }
        w.finish().unwrap();
        SsTableReader::open(dfs.clone(), name).unwrap()
    }

    #[test]
    fn open_and_point_reads() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let r = build_table(&dfs, "t/1", 256, 200);
        assert_eq!(r.count(), 200);
        assert!(r.block_count() > 1);
        for i in [0u64, 1, 99, 199] {
            let e = r
                .get_at(format!("key-{i:05}").as_bytes(), Timestamp::MAX, None)
                .unwrap()
                .unwrap();
            assert_eq!(e.value.as_deref(), Some(&b"v"[..]));
        }
        assert!(r
            .get_at(b"key-99999", Timestamp::MAX, None)
            .unwrap()
            .is_none());
        assert!(r.get_at(b"aaa", Timestamp::MAX, None).unwrap().is_none());
    }

    #[test]
    fn multiversion_get_at() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let mut w = SsTableWriter::create(dfs.clone(), "t/mv", SsTableConfig::default()).unwrap();
        w.add(&entry("a", 1, Some("v1"))).unwrap();
        w.add(&entry("a", 5, Some("v2"))).unwrap();
        w.add(&entry("a", 9, None)).unwrap();
        w.finish().unwrap();
        let r = SsTableReader::open(dfs, "t/mv").unwrap();
        assert_eq!(
            r.get_at(b"a", Timestamp(6), None)
                .unwrap()
                .unwrap()
                .value
                .as_deref(),
            Some(&b"v2"[..])
        );
        assert!(r
            .get_at(b"a", Timestamp(9), None)
            .unwrap()
            .unwrap()
            .value
            .is_none());
        assert!(r.get_at(b"a", Timestamp(0), None).unwrap().is_none());
    }

    #[test]
    fn bloom_filter_skips_absent_keys_without_io() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let r = build_table(&dfs, "t/bloom", 1024, 500);
        let reads_before = dfs.metrics().snapshot().dfs_reads;
        let mut skipped = 0;
        for i in 0..500 {
            if r.get_at(format!("absent-{i}").as_bytes(), Timestamp::MAX, None)
                .unwrap()
                .is_none()
                && dfs.metrics().snapshot().dfs_reads == reads_before + skipped
            {
                // no read issued for this probe
            } else {
                skipped += 1;
            }
        }
        let reads_after = dfs.metrics().snapshot().dfs_reads;
        // Nearly all absent probes are answered by the filter alone.
        assert!(
            reads_after - reads_before < 25,
            "too many reads for absent keys: {}",
            reads_after - reads_before
        );
    }

    #[test]
    fn block_cache_eliminates_repeat_reads() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let r = build_table(&dfs, "t/cache", 512, 100);
        let cache = BlockCache::new(1 << 20);
        r.get_at(b"key-00050", Timestamp::MAX, Some(&cache))
            .unwrap();
        let reads_after_first = dfs.metrics().snapshot().dfs_reads;
        for _ in 0..10 {
            r.get_at(b"key-00050", Timestamp::MAX, Some(&cache))
                .unwrap();
        }
        assert_eq!(dfs.metrics().snapshot().dfs_reads, reads_after_first);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 10);
        assert_eq!(misses, 1);
    }

    #[test]
    fn full_iteration_is_ordered_and_complete() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let r = build_table(&dfs, "t/iter", 128, 150);
        let mut it = r.iter(None);
        let mut keys = Vec::new();
        while let Some(e) = it.next().unwrap() {
            keys.push(e.key.clone());
        }
        assert_eq!(keys.len(), 150);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_iteration_respects_bounds() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let r = build_table(&dfs, "t/range", 128, 100);
        let range = KeyRange::new(&b"key-00020"[..], &b"key-00030"[..]);
        let mut it = r.range_iter(range, None);
        let mut keys = Vec::new();
        while let Some(e) = it.next().unwrap() {
            keys.push(String::from_utf8(e.key.to_vec()).unwrap());
        }
        assert_eq!(keys.first().map(String::as_str), Some("key-00020"));
        assert_eq!(keys.last().map(String::as_str), Some("key-00029"));
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn open_rejects_non_sstable() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        dfs.create("junk").unwrap();
        dfs.append("junk", &[0u8; 100]).unwrap();
        assert!(SsTableReader::open(dfs.clone(), "junk").is_err());
        dfs.create("tiny").unwrap();
        dfs.append("tiny", b"x").unwrap();
        assert!(SsTableReader::open(dfs, "tiny").is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = SsTableWriter::create(dfs.clone(), "t/empty", SsTableConfig::default()).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let r = SsTableReader::open(dfs, "t/empty").unwrap();
        assert_eq!(r.count(), 0);
        assert!(r.get_at(b"x", Timestamp::MAX, None).unwrap().is_none());
        let mut it = r.iter(None);
        assert!(it.next().unwrap().is_none());
    }
}
