//! Property tests: SSTables round-trip arbitrary sorted multiversion
//! entry sets, and point probes agree with a model at every snapshot.

use logbase_common::schema::KeyRange;
use logbase_common::{RowKey, Timestamp, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_sstable::{BlockEntry, SsTableConfig, SsTableReader, SsTableWriter};
use proptest::prelude::*;
use std::collections::BTreeMap;

type Model = BTreeMap<(Vec<u8>, u64), Option<Vec<u8>>>;

fn entries_strategy() -> impl Strategy<Value = Model> {
    proptest::collection::btree_map(
        (proptest::collection::vec(any::<u8>(), 1..12), 0u64..32),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..32)),
        1..120,
    )
}

fn build(model: &Model, block_bytes: usize) -> (Dfs, SsTableReader) {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
    let mut w = SsTableWriter::create(
        dfs.clone(),
        "t/prop",
        SsTableConfig {
            block_bytes,
            bloom_bits_per_key: 10,
        },
    )
    .unwrap();
    for ((k, ts), v) in model {
        w.add(&BlockEntry {
            key: RowKey::from(k.clone()),
            ts: Timestamp(*ts),
            value: v.clone().map(Value::from),
        })
        .unwrap();
    }
    w.finish().unwrap();
    let r = SsTableReader::open(dfs.clone(), "t/prop").unwrap();
    (dfs, r)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48
        })]

    /// Full iteration returns exactly the model in order, for tiny
    /// blocks (many block boundaries) and large ones alike.
    #[test]
    fn prop_iteration_matches_model(model in entries_strategy(), block in 16usize..256) {
        let (_dfs, r) = build(&model, block);
        prop_assert_eq!(r.count(), model.len() as u64);
        let mut it = r.iter(None);
        let mut got = Vec::new();
        while let Some(e) = it.next().unwrap() {
            got.push(((e.key.to_vec(), e.ts.0), e.value.map(|v| v.to_vec())));
        }
        let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, expect);
    }

    /// `get_at` returns the model's latest version ≤ snapshot for every
    /// key and several snapshot bounds.
    #[test]
    fn prop_get_at_matches_model(model in entries_strategy()) {
        let (_dfs, r) = build(&model, 64);
        let keys: std::collections::BTreeSet<Vec<u8>> =
            model.keys().map(|(k, _)| k.clone()).collect();
        for key in keys {
            for at in [0u64, 7, 15, 31, u64::MAX] {
                let expect = model
                    .range((key.clone(), 0)..=(key.clone(), at))
                    .next_back()
                    .map(|((_, ts), v)| (*ts, v.clone()));
                let got = r
                    .get_at(&key, Timestamp(at), None)
                    .unwrap()
                    .map(|e| (e.ts.0, e.value.map(|v| v.to_vec())));
                prop_assert_eq!(got, expect, "key {:?} at {}", key, at);
            }
        }
    }

    /// Range iteration returns exactly the model's keys in the range.
    #[test]
    fn prop_range_iter_matches_model(
        model in entries_strategy(),
        bounds in (proptest::collection::vec(any::<u8>(), 1..4),
                   proptest::collection::vec(any::<u8>(), 1..4)),
    ) {
        let (lo, hi) = if bounds.0 <= bounds.1 { bounds } else { (bounds.1, bounds.0) };
        let (_dfs, r) = build(&model, 48);
        let range = KeyRange::new(RowKey::from(lo.clone()), RowKey::from(hi.clone()));
        let mut it = r.range_iter(range, None);
        let mut got = Vec::new();
        while let Some(e) = it.next().unwrap() {
            got.push((e.key.to_vec(), e.ts.0));
        }
        let expect: Vec<_> = model
            .keys()
            .filter(|(k, _)| *k >= lo && *k < hi)
            .cloned()
            .collect();
        prop_assert_eq!(got, expect);
    }
}
