//! SI torture runs: the seeded concurrent workload drives real
//! [`TabletServer`]s — clean, under injected DFS faults, across a
//! crash+recovery, and across cluster failover — and the history
//! checker must find **zero** anomalies. One mutation test flips
//! validation off and must see the resulting lost updates, proving the
//! checker actually detects what it claims to.
//!
//! Seeds come from `LOGBASE_CHECKER_SEED` (default 1); CI matrixes over
//! several. Failing runs serialize their full history to
//! `target/checker-failure-<label>-seed<seed>.json`.

use logbase::{HistoryRecorder, ServerConfig, TabletServer};
use logbase_checker::workload::{self, WorkloadConfig};
use logbase_checker::{assert_clean, check_recorded, seed_from_env, ViolationKind};
use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
use logbase_common::schema::TableSchema;
use logbase_common::{Error, Record, RowKey, Timestamp, Value};
use logbase_coordination::{LockService, TimestampOracle};
use logbase_dfs::{Dfs, DfsConfig, FaultSpec, OpClass};
use logbase_wal::LogEntryKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TABLE: &str = "chk";

/// A single server with an externally-held oracle and lock service (so
/// tests can assert on them and survive a reopen).
fn single_server(
    dfs: &Dfs,
    name: &str,
    oracle: &TimestampOracle,
    locks: &LockService,
) -> Arc<TabletServer> {
    let server = TabletServer::create_with(
        dfs.clone(),
        ServerConfig::new(name).with_segment_bytes(8192),
        oracle.clone(),
        locks.clone(),
    )
    .unwrap();
    server
        .create_table(TableSchema::single_group(TABLE, &["v"]))
        .unwrap();
    server
}

/// Seed, record a workload run, and hand back (outcome, recorder).
fn recorded_run(
    server: &Arc<TabletServer>,
    cfg: &WorkloadConfig,
) -> (workload::WorkloadOutcome, Arc<HistoryRecorder>) {
    let route = workload::server_route(server);
    workload::seed_accounts(&route, cfg).unwrap();
    let recorder = Arc::new(HistoryRecorder::new());
    server.set_history_recorder(Some(Arc::clone(&recorder)));
    let outcome = workload::run(&route, cfg);
    server.set_history_recorder(None);
    (outcome, recorder)
}

/// Clean single-server run: every read matches a recorded commit, the
/// bank invariant holds, and commit releases every lock it took.
#[test]
fn clean_run_is_violation_free() {
    let seed = seed_from_env();
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let oracle = TimestampOracle::new();
    let locks = LockService::new();
    let server = single_server(&dfs, "srv", &oracle, &locks);

    let cfg = WorkloadConfig::new(seed);
    let (outcome, recorder) = recorded_run(&server, &cfg);
    assert!(outcome.committed > 0, "workload committed nothing");
    assert_eq!(outcome.errored, 0, "clean run must not error: {outcome:?}");

    let report = check_recorded(&recorder);
    assert!(report.stats.reads_checked > 0, "checker saw no reads");
    assert_clean("clean", seed, &recorder.events(), &report);

    let route = workload::server_route(&server);
    workload::verify_bank_invariant(&route, &cfg).unwrap();
    assert_eq!(locks.held_count(), 0, "commit leaked write locks");
}

/// Mutation test: with first-committer-wins validation disabled the
/// same workload must produce lost updates, and the checker must call
/// them out (G-single or first-committer-wins) with the offending
/// transaction ids. This is the proof the zero-violation runs above
/// mean something.
#[test]
fn disabled_validation_is_detected_as_lost_updates() {
    let seed = seed_from_env();
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let oracle = TimestampOracle::new();
    let locks = LockService::new();
    let server = single_server(&dfs, "srv", &oracle, &locks);

    // High contention so concurrent RMWs overlap constantly.
    let mut cfg = WorkloadConfig::new(seed);
    cfg.keys = 4;
    cfg.threads = 8;
    cfg.txns_per_thread = 40;
    cfg.theta = 0.9;

    server.set_validation_enabled_for_tests(false);
    let (outcome, recorder) = recorded_run(&server, &cfg);
    server.set_validation_enabled_for_tests(true);
    assert!(outcome.committed > 0);

    let report = check_recorded(&recorder);
    assert!(
        !report.is_clean(),
        "validation was off but the checker found nothing (seed {seed})"
    );
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::GSingle | ViolationKind::FirstCommitterWins
        )),
        "expected lost-update class violations, got {:#?}",
        report.violations
    );
    let offenders = report.offending_txns();
    assert!(
        !offenders.is_empty(),
        "violations must name the offending transactions"
    );
}

/// Injected transient DFS faults (append + read lanes on every node):
/// transactions may abort — some indeterminately — but no committed
/// history may violate SI, and the bank invariant must still hold.
#[test]
fn fault_injected_run_keeps_si() {
    let seed = seed_from_env();
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3).with_fault_seed(seed));
    let oracle = TimestampOracle::new();
    let locks = LockService::new();
    let server = single_server(&dfs, "srv", &oracle, &locks);

    let cfg = WorkloadConfig::new(seed);
    let route = workload::server_route(&server);
    // Seed before the faults go live so setup is deterministic.
    workload::seed_accounts(&route, &cfg).unwrap();
    for node in 0..3 {
        dfs.fault_injector()
            .set_spec(node, OpClass::Append, FaultSpec::transient(0.03));
        dfs.fault_injector()
            .set_spec(node, OpClass::Read, FaultSpec::transient(0.03));
    }

    let recorder = Arc::new(HistoryRecorder::new());
    server.set_history_recorder(Some(Arc::clone(&recorder)));
    let outcome = workload::run(&route, &cfg);
    server.set_history_recorder(None);
    assert!(outcome.committed > 0, "nothing survived the faults");

    // Quiesce the faults before the verification reads.
    for node in 0..3 {
        dfs.fault_injector()
            .set_spec(node, OpClass::Append, FaultSpec::transient(0.0));
        dfs.fault_injector()
            .set_spec(node, OpClass::Read, FaultSpec::transient(0.0));
    }

    let report = check_recorded(&recorder);
    assert_clean("faults", seed, &recorder.events(), &report);
    workload::verify_bank_invariant(&route, &cfg).unwrap();
    assert_eq!(locks.held_count(), 0, "aborts leaked write locks");
}

/// Crash mid-compaction between two workload phases. Recovery must (a)
/// keep every committed version visible, (b) keep a forged uncommitted
/// transactional write *invisible* (Guarantee 3), and (c) the combined
/// two-phase history must stay anomaly-free.
#[test]
fn crash_recovery_run_keeps_si() {
    let seed = seed_from_env();
    let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
    let oracle = TimestampOracle::new();
    let locks = LockService::new();
    let server = single_server(&dfs, "srv", &oracle, &locks);

    let mut cfg = WorkloadConfig::new(seed);
    cfg.threads = 6;
    cfg.txns_per_thread = 40;
    let (outcome1, recorder) = recorded_run(&server, &cfg);
    assert!(outcome1.committed > 0);

    // Forge an uncommitted transactional write: a Write log entry with
    // no commit record. Guarantee 3 says recovery must never surface it.
    let forged_key = workload::register_key(&cfg, 0);
    let forged_ts = Timestamp(oracle.current().0 + 1_000);
    server
        .log_for_tests()
        .append_all(vec![(
            TABLE.to_string(),
            LogEntryKind::Write {
                txn_id: u64::MAX,
                tablet: 0,
                record: Record::put(
                    RowKey::copy_from_slice(&forged_key),
                    0,
                    forged_ts,
                    Value::from_static(b"forged-uncommitted"),
                ),
            },
        )])
        .unwrap();

    // Crash inside compaction (right after the log rotation), then
    // recover from the DFS image alone.
    dfs.fault_injector()
        .arm_crash_point("compaction.after_rotate");
    match server.compact() {
        Err(Error::CrashPoint { site }) => assert_eq!(site, "compaction.after_rotate"),
        other => panic!("expected the armed crash point to fire, got {other:?}"),
    }
    drop(server);

    let recovered = TabletServer::open_with(
        dfs.clone(),
        ServerConfig::new("srv").with_segment_bytes(8192),
        oracle.clone(),
        locks.clone(),
    )
    .unwrap();

    // Guarantee 3: the forged write has no commit record, so it must
    // not be visible at any snapshot.
    let got = recovered.get(TABLE, 0, &forged_key).unwrap();
    assert_ne!(
        got.as_deref(),
        Some(&b"forged-uncommitted"[..]),
        "uncommitted write resurrected by recovery"
    );

    // Phase 2 on the recovered server, into the same recorder (the
    // baseline is already pinned by phase 1, so recovered versions are
    // checked against phase-1 commits, not grandfathered).
    let route = workload::server_route(&recovered);
    recovered.set_history_recorder(Some(Arc::clone(&recorder)));
    let outcome2 = workload::run(&route, &cfg);
    recovered.set_history_recorder(None);
    assert!(outcome2.committed > 0);

    let report = check_recorded(&recorder);
    assert_clean("crash-recover", seed, &recorder.events(), &report);
    workload::verify_bank_invariant(&route, &cfg).unwrap();
    assert_eq!(locks.held_count(), 0);
}

/// Kill a tablet server mid-workload and let lease expiry, log
/// splitting, and fencing move its tablets. The history recorded across
/// every member — before, during, and after the takeover — must stay
/// anomaly-free, and no acked balance may be lost.
#[test]
fn failover_run_keeps_si() {
    let seed = seed_from_env();
    let cluster = Arc::new(Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap());

    let mut cfg = WorkloadConfig::new(seed).with_key_domain(cluster.config().key_domain);
    cfg.table = cluster.config().table.clone();
    cfg.threads = 6;
    cfg.txns_per_thread = 50;

    // Route through the cluster's transport-selected client: in-process
    // by default, real TCP frames under `LOGBASE_TRANSPORT=tcp` — the
    // same workload tortures both wires.
    let client = cluster.client();
    if std::env::var("LOGBASE_TRANSPORT").as_deref() == Ok("tcp") {
        // CI's net-torture job must actually cross sockets.
        assert_eq!(client.transport_name(), "tcp");
    }
    let client_ref = &client;
    let route = move |key: &[u8]| {
        client_ref
            .endpoint_for(key)
            .ok()
            .map(|ep| Box::new(ep) as workload::Endpoint<'_>)
    };
    workload::seed_accounts(&route, &cfg).unwrap();

    // One shared recorder across every member: cluster-wide history.
    let recorder = Arc::new(HistoryRecorder::new());
    for i in 0..cluster.nodes() {
        if let Some(s) = cluster.logbase_server(i) {
            s.set_history_recorder(Some(Arc::clone(&recorder)));
        }
    }

    let victim = (seed % cluster.nodes() as u64) as usize;
    let done = Arc::new(AtomicBool::new(false));
    let driver = {
        let c = Arc::clone(&cluster);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut iters = 0u64;
            loop {
                c.heartbeat_all();
                c.tick(1);
                // Transient failover errors retry on the next tick (the
                // master re-queues the victim).
                let _ = c.run_failover();
                if iters == 3 {
                    c.kill_server(victim);
                }
                iters += 1;
                if done.load(Ordering::Relaxed) && iters > 3 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            // Drive the takeover to completion.
            for _ in 0..10_000 {
                if c.pending_failovers() == 0
                    && !c.routes().iter().any(|r| r.member == victim as u32)
                {
                    return;
                }
                c.heartbeat_all();
                c.tick(1);
                let _ = c.run_failover();
            }
            panic!("failover of member {victim} never completed");
        })
    };

    let outcome = workload::run(&route, &cfg);
    done.store(true, Ordering::Relaxed);
    driver.join().unwrap();
    assert!(outcome.committed > 0, "nothing survived the failover");

    for i in 0..cluster.nodes() {
        if let Some(s) = cluster.logbase_server(i) {
            s.set_history_recorder(None);
        }
    }

    let report = check_recorded(&recorder);
    assert_clean("failover", seed, &recorder.events(), &report);
    // Every account now lives on a survivor; the money must all be
    // there.
    workload::verify_bank_invariant(&route, &cfg).unwrap();
}

/// The timestamp oracle must stay strictly monotone per client and
/// globally collision-free while the master fails over under load
/// (commit timestamps are the backbone of every SI argument above).
#[test]
fn oracle_monotone_across_master_failover() {
    let seed = seed_from_env();
    let cluster = Arc::new(Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap());
    let domain = cluster.config().key_domain;
    let before = cluster.registry().active_master();

    const WRITERS: u64 = 4;
    const PUTS: u64 = 60;
    let stride = domain / (WRITERS * PUTS + 1);

    let done = Arc::new(AtomicBool::new(false));
    let driver = {
        let c = Arc::clone(&cluster);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut iters = 0u64;
            while !done.load(Ordering::Relaxed) || iters <= 3 {
                c.heartbeat_all();
                c.tick(1);
                let _ = c.run_failover();
                if iters == 3 {
                    // The active master goes silent; the standby's lease
                    // machinery must take over without disturbing
                    // timestamp order.
                    c.pause_master(0);
                }
                iters += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let c = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut issued = Vec::with_capacity(PUTS as usize);
                for j in 0..PUTS {
                    let g = w * PUTS + j + seed % 7;
                    let ts = c
                        .client_put(
                            0,
                            logbase_workload::encode_key((g % (WRITERS * PUTS)) * stride),
                            Value::from(format!("w{w}-{j}").into_bytes()),
                        )
                        .unwrap();
                    issued.push(ts.0);
                }
                issued
            })
        })
        .collect();

    let per_thread: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    done.store(true, Ordering::Relaxed);
    driver.join().unwrap();

    let mut all = std::collections::HashSet::new();
    for (w, issued) in per_thread.iter().enumerate() {
        for pair in issued.windows(2) {
            assert!(
                pair[1] > pair[0],
                "writer {w}: commit timestamps went backwards ({} then {})",
                pair[0],
                pair[1]
            );
        }
        for ts in issued {
            assert!(all.insert(*ts), "commit timestamp {ts} issued twice");
        }
    }
    assert_eq!(all.len(), (WRITERS * PUTS) as usize);

    let after = cluster.registry().active_master();
    assert_ne!(
        before.as_ref().map(|(id, _)| *id),
        after.as_ref().map(|(id, _)| *id),
        "master never failed over (before {before:?}, after {after:?})"
    );
}

/// Tentpole regression: the background compaction scheduler (rate-
/// limited, with periodic log GC) runs continuously *while* the
/// concurrent transaction workload executes. Snapshot isolation must
/// stay anomaly-free, the bank invariant must hold, and foreground
/// point reads must keep a sane p99 — compaction yields via the token
/// bucket instead of starving the read path.
#[test]
fn compaction_interference_stays_clean_and_bounded() {
    let seed = seed_from_env();
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let oracle = TimestampOracle::new();
    let locks = LockService::new();
    let server = single_server(&dfs, "srv", &oracle, &locks);
    // Cap bulk maintenance traffic well below what the in-memory DFS
    // can serve, so the scheduler genuinely has to wait for tokens.
    server.set_maintenance_rate(Some(64 * 1024));

    let cfg = WorkloadConfig::new(seed);
    let route = workload::server_route(&server);
    workload::seed_accounts(&route, &cfg).unwrap();
    let recorder = Arc::new(HistoryRecorder::new());
    server.set_history_recorder(Some(Arc::clone(&recorder)));

    // Drive the scheduler in a tight loop for the whole workload run —
    // far more aggressive than a production interval, to maximize
    // interference.
    let stop = Arc::new(AtomicBool::new(false));
    let scheduler_thread = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let sched = logbase::CompactionScheduler::new(logbase::CompactionSchedulerConfig {
                gc_every: 5,
                gc_live_fraction: 1.0,
                ..Default::default()
            });
            let mut ticks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                sched.tick(&server).expect("scheduled maintenance failed");
                ticks += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            ticks
        })
    };

    let outcome = workload::run(&route, &cfg);

    // Foreground point-read latencies with compaction still churning.
    let mut latencies = Vec::with_capacity(200);
    for i in 0..200u64 {
        let key = workload::account_key(&cfg, i % cfg.keys);
        let ep = route(&key).unwrap();
        let start = std::time::Instant::now();
        ep.get(TABLE, 0, &key).unwrap();
        latencies.push(start.elapsed());
    }

    stop.store(true, Ordering::Relaxed);
    let ticks = scheduler_thread.join().unwrap();
    server.set_history_recorder(None);

    assert!(outcome.committed > 0, "workload committed nothing");
    assert_eq!(outcome.errored, 0, "interference run errored: {outcome:?}");
    assert!(ticks > 0, "scheduler never ticked");
    let snap = server.metrics().snapshot();
    assert!(snap.compactions > 0, "scheduler never compacted: {snap:?}");
    assert!(
        snap.compaction_throttle_waits > 0,
        "rate limiter never engaged: {snap:?}"
    );

    // SI stayed clean under continuous background maintenance.
    let report = check_recorded(&recorder);
    assert!(report.stats.reads_checked > 0, "checker saw no reads");
    assert_clean("compaction-interference", seed, &recorder.events(), &report);
    workload::verify_bank_invariant(&route, &cfg).unwrap();

    // Generous p99 bound: an in-memory get is microseconds; only a
    // compaction monopolizing the server could push it past this.
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    assert!(
        p99 < Duration::from_millis(250),
        "foreground p99 {p99:?} under background compaction"
    );
    assert!(server.fsck().is_empty());
}
