//! Seeded concurrent transaction workloads for the SI checker.
//!
//! N client threads run mixed transaction shapes — register
//! read-modify-write, bank transfers, read-only probes (the long-fork
//! witness), and blind writes — over Zipf-distributed keys against one
//! or more [`TabletServer`]s, while an installed
//! [`logbase::history::HistoryRecorder`] captures the history the
//! checker consumes.
//!
//! Keys split into two disjoint spaces: *registers* (`[0, keys)`) hold
//! decimal counters incremented by RMW transactions; *accounts*
//! (`[keys, 2·keys)`) hold balances moved by transfer transactions, so
//! the total balance is a standing invariant
//! ([`verify_bank_invariant`]).
//!
//! The generator issues **no deletes**: `remove_key` truncates a cell's
//! whole version history (§3.6.3), which legitimately breaks old
//! snapshots — targeted unit tests cover delete semantics instead.

use logbase::{ServerEndpoint, TabletServer, TxnEndpoint, TxnSession};
use logbase_common::{Error, Result, RowKey, Value};
use logbase_workload::encode_key;
use logbase_workload::zipf::Zipfian;
use rand::prelude::*;
use std::sync::Arc;

/// A freshly-routed endpoint for one key (boxed so in-process and
/// wire-backed endpoints route through the same workload).
pub type Endpoint<'e> = Box<dyn TxnEndpoint + 'e>;

/// Routes a key to an endpoint of the server currently responsible for
/// it (`None` = nobody right now — retry later). Single-server setups
/// return the one server unconditionally; cluster setups consult the
/// live route table on every call so the workload follows failover —
/// in-process via [`ServerEndpoint`], or over a real transport via the
/// cluster client's wire endpoints.
pub type RouteFn<'e> = dyn Fn(&[u8]) -> Option<Endpoint<'e>> + Send + Sync + 'e;

/// Route every key to the one `server` (single-server harnesses).
pub fn server_route(
    server: &Arc<TabletServer>,
) -> impl Fn(&[u8]) -> Option<Endpoint<'static>> + Send + Sync + 'static {
    let server = Arc::clone(server);
    move |_key: &[u8]| Some(Box::new(ServerEndpoint::new(Arc::clone(&server))) as Endpoint<'static>)
}

/// Workload shape and size.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed; thread `i` derives `seed + i`.
    pub seed: u64,
    /// Client threads.
    pub threads: usize,
    /// Transactions attempted per thread.
    pub txns_per_thread: usize,
    /// Keys per space (registers and accounts each get this many).
    pub keys: u64,
    /// Zipf skew (0 = uniform).
    pub theta: f64,
    /// Target table (single column group 0).
    pub table: String,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Retries per transaction on conflicts/transient errors.
    pub retries: usize,
    /// Multiplier applied to key ids before encoding. Cluster routers
    /// split a large uniform key domain into contiguous per-member
    /// ranges, so a stride of `key_domain / (2·keys + 1)` spreads the
    /// working set across every member instead of packing it into the
    /// first range. Single-server runs keep the default of 1.
    pub stride: u64,
}

impl WorkloadConfig {
    /// A moderate default mix for `seed`.
    pub fn new(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            threads: 8,
            txns_per_thread: 60,
            keys: 16,
            theta: 0.7,
            table: "chk".to_string(),
            initial_balance: 1000,
            retries: 12,
            stride: 1,
        }
    }

    /// Spread the key spaces across a cluster's key domain.
    pub fn with_key_domain(mut self, key_domain: u64) -> Self {
        self.stride = (key_domain / (2 * self.keys + 1)).max(1);
        self
    }
}

/// Outcome counters of one workload run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadOutcome {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions abandoned after exhausting retries on conflicts.
    pub conflicted: u64,
    /// Transactions abandoned on non-retriable or persistent errors.
    pub errored: u64,
}

/// Register key `i` (RMW counter space).
pub fn register_key(cfg: &WorkloadConfig, i: u64) -> Vec<u8> {
    encode_key((i % cfg.keys) * cfg.stride).to_vec()
}

/// Account key `i` (bank-transfer space, disjoint from registers).
pub fn account_key(cfg: &WorkloadConfig, i: u64) -> Vec<u8> {
    encode_key((cfg.keys + (i % cfg.keys)) * cfg.stride).to_vec()
}

fn parse_i64(v: Option<&[u8]>) -> i64 {
    v.and_then(|b| std::str::from_utf8(b).ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Seed every account with the initial balance (plain puts; runs before
/// the recorder is installed so setup writes don't clutter the history).
pub fn seed_accounts(route: &RouteFn<'_>, cfg: &WorkloadConfig) -> Result<()> {
    let balance = cfg.initial_balance.to_string();
    for i in 0..cfg.keys {
        let key = account_key(cfg, i);
        let ep = route(&key).ok_or_else(|| Error::Unavailable("no route".into()))?;
        ep.put(
            &cfg.table,
            0,
            RowKey::copy_from_slice(&key),
            Value::copy_from_slice(balance.as_bytes()),
        )?;
    }
    Ok(())
}

/// The transaction shapes the generator mixes.
enum Shape {
    /// Read register k, write k+1 back.
    RegisterRmw { key: Vec<u8> },
    /// Move `amount` from account a to account b.
    Transfer {
        from: Vec<u8>,
        to: Vec<u8>,
        amount: i64,
    },
    /// Read-only probe over several cells (witnesses long forks and
    /// read skew).
    ReadProbe { keys: Vec<Vec<u8>> },
    /// Blind write of a fresh value.
    BlindWrite { key: Vec<u8>, value: String },
}

/// Both keys currently routed to the same server? Transactions run on
/// one server, so multi-key shapes must pick co-located cells (a server
/// refuses cells outside its tablets with `TabletNotServed`).
/// Endpoint ids stand in for pointer identity, so this works over any
/// transport.
fn colocated(route: &RouteFn<'_>, a: &[u8], b: &[u8]) -> bool {
    match (route(a), route(b)) {
        (Some(x), Some(y)) => x.endpoint_id() == y.endpoint_id(),
        _ => false,
    }
}

fn pick_shape(
    cfg: &WorkloadConfig,
    zipf: &Zipfian,
    rng: &mut StdRng,
    route: &RouteFn<'_>,
) -> Shape {
    match rng.gen_range(0..100u32) {
        0..=39 => Shape::RegisterRmw {
            key: register_key(cfg, zipf.sample(rng)),
        },
        40..=64 => {
            let a = zipf.sample(rng);
            let from = account_key(cfg, a);
            // Scan for a co-located counterparty (routing may have
            // moved mid-scan; a stale pick just retries as
            // TabletNotServed).
            let to = (1..cfg.keys)
                .map(|off| account_key(cfg, (a + off) % cfg.keys))
                .find(|b| colocated(route, &from, b));
            match to {
                Some(to) => Shape::Transfer {
                    from,
                    to,
                    amount: rng.gen_range(1..10i64),
                },
                // Nobody co-located right now: fall back to a
                // register RMW (never mutate a lone account — that
                // would break the bank invariant).
                None => Shape::RegisterRmw {
                    key: register_key(cfg, a),
                },
            }
        }
        65..=84 => {
            let first = if rng.gen_range(0..2u32) == 0 {
                register_key(cfg, zipf.sample(rng))
            } else {
                account_key(cfg, zipf.sample(rng))
            };
            let extra = rng.gen_range(1..3usize);
            let mut keys = vec![first];
            for _ in 0..extra {
                let k = if rng.gen_range(0..2u32) == 0 {
                    register_key(cfg, zipf.sample(rng))
                } else {
                    account_key(cfg, zipf.sample(rng))
                };
                if colocated(route, &keys[0], &k) {
                    keys.push(k);
                }
            }
            Shape::ReadProbe { keys }
        }
        _ => Shape::BlindWrite {
            key: register_key(cfg, zipf.sample(rng)),
            value: rng.gen_range(0..1_000_000u64).to_string(),
        },
    }
}

/// Routing key a shape's transaction must be co-located with.
fn anchor(shape: &Shape) -> &[u8] {
    match shape {
        Shape::RegisterRmw { key } => key,
        Shape::Transfer { from, .. } => from,
        Shape::ReadProbe { keys } => &keys[0],
        Shape::BlindWrite { key, .. } => key,
    }
}

/// Execute one shape inside an open `session`.
fn apply_shape(session: &mut dyn TxnSession, table: &str, shape: &Shape) -> Result<()> {
    match shape {
        Shape::RegisterRmw { key } => {
            let v = session.read(table, 0, key)?;
            let next = (parse_i64(v.as_deref()) + 1).to_string();
            session.write(
                table,
                0,
                RowKey::copy_from_slice(key),
                Some(Value::copy_from_slice(next.as_bytes())),
            );
        }
        Shape::Transfer { from, to, amount } => {
            let fv = session.read(table, 0, from)?;
            let tv = session.read(table, 0, to)?;
            let fb = (parse_i64(fv.as_deref()) - amount).to_string();
            let tb = (parse_i64(tv.as_deref()) + amount).to_string();
            session.write(
                table,
                0,
                RowKey::copy_from_slice(from),
                Some(Value::copy_from_slice(fb.as_bytes())),
            );
            session.write(
                table,
                0,
                RowKey::copy_from_slice(to),
                Some(Value::copy_from_slice(tb.as_bytes())),
            );
        }
        Shape::ReadProbe { keys } => {
            for key in keys {
                session.read(table, 0, key)?;
            }
        }
        Shape::BlindWrite { key, value } => {
            session.write(
                table,
                0,
                RowKey::copy_from_slice(key),
                Some(Value::copy_from_slice(value.as_bytes())),
            );
        }
    }
    Ok(())
}

/// Run the workload: `cfg.threads` clients, each attempting
/// `cfg.txns_per_thread` transactions, routing every attempt through
/// `route` (so the workload follows tablet reassignment mid-run).
/// Transient errors and conflicts retry up to `cfg.retries` times with
/// a small backoff; exhausted transactions are counted, not fatal.
pub fn run(route: &RouteFn<'_>, cfg: &WorkloadConfig) -> WorkloadOutcome {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|thread| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(thread as u64));
                    let zipf = Zipfian::new(cfg.keys, cfg.theta);
                    let mut outcome = WorkloadOutcome::default();
                    for _ in 0..cfg.txns_per_thread {
                        let shape = pick_shape(cfg, &zipf, &mut rng, route);
                        run_one(route, cfg, &shape, &mut outcome);
                    }
                    outcome
                })
            })
            .collect();
        let mut total = WorkloadOutcome::default();
        for h in handles {
            let o = h.join().expect("workload thread panicked");
            total.committed += o.committed;
            total.conflicted += o.conflicted;
            total.errored += o.errored;
        }
        total
    })
}

fn run_one(
    route: &RouteFn<'_>,
    cfg: &WorkloadConfig,
    shape: &Shape,
    outcome: &mut WorkloadOutcome,
) {
    let mut conflicts = 0usize;
    for attempt in 0..=cfg.retries {
        let Some(ep) = route(anchor(shape)) else {
            // Nobody serves the key right now (failover in progress).
            std::thread::sleep(std::time::Duration::from_millis(5));
            continue;
        };
        let mut session = match ep.begin() {
            Ok(s) => s,
            // Over a wire, even `begin` can fail transiently.
            Err(e) => {
                if retriable(&e) && attempt < cfg.retries {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    continue;
                }
                outcome.errored += 1;
                return;
            }
        };
        match apply_shape(session.as_mut(), &cfg.table, shape) {
            Ok(()) => {}
            Err(e) => {
                session.abort();
                if retriable(&e) && attempt < cfg.retries {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    continue;
                }
                outcome.errored += 1;
                return;
            }
        }
        match session.commit() {
            Ok(_) => {
                outcome.committed += 1;
                return;
            }
            Err(Error::TxnConflict { .. }) => {
                conflicts += 1;
                if attempt >= cfg.retries {
                    break;
                }
            }
            Err(e) => {
                if retriable(&e) && attempt < cfg.retries {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    continue;
                }
                outcome.errored += 1;
                return;
            }
        }
    }
    if conflicts > 0 {
        outcome.conflicted += 1;
    } else {
        outcome.errored += 1;
    }
}

/// Errors worth re-running the whole transaction for. `is_retriable`
/// covers the transient infrastructure set (including `Busy` shedding);
/// fencing and stale routes additionally resolve by re-routing to the
/// new owner, transport deadlines and aborted wire sessions by simply
/// starting over.
fn retriable(e: &Error) -> bool {
    e.is_retriable()
        || matches!(
            e,
            Error::Fenced { .. }
                | Error::TabletNotServed(_)
                | Error::TabletMoved(_)
                | Error::Io(_)
                | Error::DeadlineExceeded(_)
                | Error::TxnAborted(_)
        )
}

/// Sum all account balances at the latest snapshot and compare with the
/// seeded total. Must hold after any run whose transfers kept SI.
pub fn verify_bank_invariant(route: &RouteFn<'_>, cfg: &WorkloadConfig) -> Result<()> {
    let mut total = 0i64;
    for i in 0..cfg.keys {
        let key = account_key(cfg, i);
        let ep = route(&key).ok_or_else(|| Error::Unavailable("no route".into()))?;
        let v = ep.get(&cfg.table, 0, &key)?;
        total += parse_i64(v.as_deref());
    }
    let expected = cfg.initial_balance * cfg.keys as i64;
    if total != expected {
        return Err(Error::Corruption(format!(
            "bank invariant broken: balances sum to {total}, expected {expected}"
        )));
    }
    Ok(())
}
