//! Snapshot-isolation history checker (Elle-style, after Adya's
//! anomaly taxonomy).
//!
//! Input: the flat event history recorded by
//! [`logbase::history::HistoryRecorder`]. The checker reconstructs the
//! per-cell version order from commit timestamps, derives write-write
//! (ww), write-read (wr) and read-write (rw, anti-dependency) edges,
//! and reports:
//!
//! - **G0** — a cycle of ww edges (write cycle);
//! - **G1a** — a committed transaction read a version no committed
//!   transaction wrote (aborted/phantom read);
//! - **G1b** — observed value differs from the writer's final value for
//!   that cell (intermediate read; surfaces as a value-CRC mismatch);
//! - **G1c** — a cycle of ww ∪ wr edges (cyclic information flow);
//! - **G-SI / G-single** — a cycle with exactly one rw edge (lost
//!   update, read skew promoted to a cycle);
//! - **first-committer-wins violations** — two committed transactions
//!   with overlapping write sets whose `[snapshot, commit]` intervals
//!   overlap (§3.7.1's validation rule, checked directly);
//! - **snapshot-visibility violations** — a committed transaction's
//!   read did not observe the latest committed version at or below its
//!   snapshot (stale read / future read). This direct check is sound
//!   here because the oracle's in-flight watermark guarantees every
//!   commit at or below an issued snapshot has fully applied.
//!
//! What the checker does *not* prove: SI admits write skew (G2-item);
//! serializability checking is out of scope. Histories containing
//! deletes or version-pruning compaction lose old versions by design
//! (§3.6.3/§3.6.5), so absent observations on deleted cells are
//! tolerated rather than flagged — workloads meant for strict checking
//! should avoid deletes (the bundled generator does).

use logbase::history::{Event, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A cell: `(table, column group, hex key)`.
pub type Cell = (String, u16, String);

/// How a recorded transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Commit event recorded.
    Committed,
    /// Abort recorded before any log write — writes can never surface.
    AbortedDeterminate,
    /// Abort recorded after the log append started — the commit record
    /// may be durable, so the writes may resurrect after recovery.
    AbortedIndeterminate,
    /// Begin recorded but no terminal event (client crashed mid-txn).
    Unterminated,
}

/// Reconstructed view of one transaction.
#[derive(Debug, Clone)]
pub struct TxnView {
    /// Transaction id.
    pub id: u64,
    /// Snapshot timestamp it read at.
    pub snapshot: u64,
    /// Outcome.
    pub status: TxnStatus,
    /// Commit timestamp: the real one for committed update txns, the
    /// snapshot for committed read-only txns, the reserved (would-be)
    /// timestamp for indeterminate aborts when known, else 0.
    pub commit_ts: u64,
    /// Reads performed against the store: `(cell, observed version,
    /// observed value CRC)`.
    pub reads: Vec<(Cell, Option<u64>, Option<u32>)>,
    /// Write set (committed: final; aborted: intended): `(cell, value
    /// CRC)`, `None` CRC = delete.
    pub writes: Vec<(Cell, Option<u32>)>,
}

impl TxnView {
    fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// Kind of detected violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Two committed update transactions share a commit timestamp.
    DuplicateCommitTs,
    /// A committed update transaction's commit timestamp is not above
    /// its snapshot.
    CommitBeforeSnapshot,
    /// Committed read observed a version no committed (or possibly
    /// committed) transaction wrote — G1a / phantom version.
    AbortedRead,
    /// Committed read missed the latest committed version at or below
    /// its snapshot (observed an older version or nothing).
    StaleRead,
    /// Committed read observed a version above its snapshot.
    FutureRead,
    /// Observed value CRC differs from what the version's writer wrote
    /// (G1b intermediate read, or corruption).
    CorruptRead,
    /// Cycle of ww edges — G0.
    WriteCycle,
    /// Cycle of ww ∪ wr edges — G1c.
    InfoFlowCycle,
    /// Cycle with exactly one anti-dependency edge — G-SI / G-single
    /// (lost update, promoted read skew).
    GSingle,
    /// Two committed transactions wrote the same cell with overlapping
    /// `[snapshot, commit]` intervals — first-committer-wins violated.
    FirstCommitterWins,
}

/// One detected violation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Violation {
    /// Category.
    pub kind: ViolationKind,
    /// Human-readable description with cell and timestamps.
    pub detail: String,
    /// Offending transaction ids.
    pub txns: Vec<u64>,
}

/// Aggregate statistics of a checked history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckStats {
    /// Committed transactions.
    pub committed: u64,
    /// Determinate aborts.
    pub aborted: u64,
    /// Indeterminate aborts (outcome unknowable without the log).
    pub indeterminate: u64,
    /// Transactions with no terminal event.
    pub unterminated: u64,
    /// Reads by committed transactions that were checked.
    pub reads_checked: u64,
    /// Reads excused because they observed an indeterminate txn's write
    /// that later proved durable.
    pub reads_tolerated_indeterminate: u64,
    /// Reads excused because the cell was deleted at some point
    /// (deletes truncate version history by design).
    pub reads_tolerated_deleted: u64,
    /// Reads that observed a pre-recording (initial-state) version.
    pub reads_tolerated_baseline: u64,
    /// Distinct cells written.
    pub cells: u64,
    /// Dependency edges derived (ww + wr + rw).
    pub edges: u64,
}

/// Result of checking one history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckReport {
    /// All violations found (empty = history is SI-consistent).
    pub violations: Vec<Violation>,
    /// Aggregate counters.
    pub stats: CheckStats,
}

impl CheckReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Ids of all transactions involved in violations.
    pub fn offending_txns(&self) -> BTreeSet<u64> {
        self.violations
            .iter()
            .flat_map(|v| v.txns.iter().copied())
            .collect()
    }
}

/// One committed (or possibly committed) version of a cell.
#[derive(Debug, Clone, Copy)]
struct VersionInfo {
    txn: u64,
    crc: Option<u32>, // None = delete (tombstone)
}

/// Check a recorded history for snapshot-isolation anomalies, assuming
/// nothing was written before the history started (baseline 0).
pub fn check(events: &[Event]) -> CheckReport {
    check_with_baseline(events, 0)
}

/// Check a recorded history, treating versions at or below `baseline`
/// as pre-existing initial state (see
/// [`logbase::history::HistoryRecorder::baseline`]): a read observing
/// such a version is consistent unless a *recorded* committed version
/// was visible and newer.
pub fn check_with_baseline(events: &[Event], baseline: u64) -> CheckReport {
    let txns = reconstruct(events);
    let mut report = CheckReport::default();

    // ------------------------------------------------------------------
    // Well-formedness: unique commit timestamps, commit above snapshot.
    // ------------------------------------------------------------------
    let mut by_commit_ts: HashMap<u64, u64> = HashMap::new();
    for t in txns.values() {
        match t.status {
            TxnStatus::Committed => report.stats.committed += 1,
            TxnStatus::AbortedDeterminate => report.stats.aborted += 1,
            TxnStatus::AbortedIndeterminate => report.stats.indeterminate += 1,
            TxnStatus::Unterminated => report.stats.unterminated += 1,
        }
        if t.status != TxnStatus::Committed || t.is_read_only() {
            continue;
        }
        if t.commit_ts <= t.snapshot {
            report.violations.push(Violation {
                kind: ViolationKind::CommitBeforeSnapshot,
                detail: format!(
                    "txn {} committed at {} but its snapshot is {}",
                    t.id, t.commit_ts, t.snapshot
                ),
                txns: vec![t.id],
            });
        }
        if let Some(prev) = by_commit_ts.insert(t.commit_ts, t.id) {
            report.violations.push(Violation {
                kind: ViolationKind::DuplicateCommitTs,
                detail: format!(
                    "txns {} and {} both committed at {}",
                    prev, t.id, t.commit_ts
                ),
                txns: vec![prev, t.id],
            });
        }
    }

    // ------------------------------------------------------------------
    // Version orders per cell.
    // ------------------------------------------------------------------
    // Committed versions: ts → writer/crc, naturally sorted.
    let mut versions: BTreeMap<Cell, BTreeMap<u64, VersionInfo>> = BTreeMap::new();
    // Writes by transactions whose outcome is unknowable.
    let mut maybe_versions: BTreeMap<Cell, BTreeMap<u64, VersionInfo>> = BTreeMap::new();
    // Cells that were deleted (by anyone) at some point: absent reads on
    // them are excused because `remove_key` truncates version history.
    let mut deleted_cells: BTreeSet<Cell> = BTreeSet::new();
    for t in txns.values() {
        for (cell, crc) in &t.writes {
            if crc.is_none() {
                deleted_cells.insert(cell.clone());
            }
            let info = VersionInfo {
                txn: t.id,
                crc: *crc,
            };
            match t.status {
                TxnStatus::Committed => {
                    versions
                        .entry(cell.clone())
                        .or_default()
                        .insert(t.commit_ts, info);
                }
                TxnStatus::AbortedIndeterminate if t.commit_ts != 0 => {
                    maybe_versions
                        .entry(cell.clone())
                        .or_default()
                        .insert(t.commit_ts, info);
                }
                _ => {}
            }
        }
    }
    report.stats.cells = versions.len() as u64;

    // ------------------------------------------------------------------
    // Read checks + dependency edges (committed transactions only).
    // ------------------------------------------------------------------
    let empty: BTreeMap<u64, VersionInfo> = BTreeMap::new();
    let mut ww: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut wr: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut rw: BTreeSet<(u64, u64)> = BTreeSet::new();

    for cell_versions in versions.values() {
        let mut it = cell_versions.values().peekable();
        while let Some(v) = it.next() {
            if let Some(next) = it.peek() {
                if v.txn != next.txn {
                    ww.insert((v.txn, next.txn));
                }
            }
        }
    }

    for t in txns.values() {
        if t.status != TxnStatus::Committed {
            continue; // aborted readers may legitimately have seen anything inconsistent
        }
        for (cell, observed, obs_crc) in &t.reads {
            report.stats.reads_checked += 1;
            let cv = versions.get(cell).unwrap_or(&empty);
            let expected = cv.range(..=t.snapshot).next_back();
            match observed {
                None => {
                    match expected {
                        None => {}                                  // nothing visible: consistent
                        Some((_, info)) if info.crc.is_none() => {} // visible version is a delete
                        Some((ets, info)) => {
                            if deleted_cells.contains(cell) {
                                report.stats.reads_tolerated_deleted += 1;
                            } else {
                                report.violations.push(Violation {
                                    kind: ViolationKind::StaleRead,
                                    detail: format!(
                                        "txn {} at snapshot {} read {:?} as absent but txn {} committed version {}",
                                        t.id, t.snapshot, cell, info.txn, ets
                                    ),
                                    txns: vec![t.id, info.txn],
                                });
                            }
                        }
                    }
                    // Anti-dependency on the initial version: the next
                    // version is the cell's first committed one.
                    if expected.is_none() {
                        if let Some((_, first)) = cv.iter().next() {
                            if first.txn != t.id {
                                rw.insert((t.id, first.txn));
                            }
                        }
                    }
                }
                Some(ots) => {
                    if *ots > t.snapshot {
                        report.violations.push(Violation {
                            kind: ViolationKind::FutureRead,
                            detail: format!(
                                "txn {} at snapshot {} observed future version {} of {:?}",
                                t.id, t.snapshot, ots, cell
                            ),
                            txns: vec![t.id],
                        });
                        continue;
                    }
                    match cv.get(ots) {
                        Some(info) => {
                            // wr dependency on the writer.
                            if info.txn != t.id {
                                wr.insert((info.txn, t.id));
                            }
                            // Must be the *latest* visible version.
                            if let Some((ets, einfo)) = expected {
                                if ets != ots {
                                    report.violations.push(Violation {
                                        kind: ViolationKind::StaleRead,
                                        detail: format!(
                                            "txn {} at snapshot {} observed version {} of {:?} but txn {} committed newer visible version {}",
                                            t.id, t.snapshot, ots, cell, einfo.txn, ets
                                        ),
                                        txns: vec![t.id, einfo.txn],
                                    });
                                }
                            }
                            // Value integrity (G1b / corruption).
                            if let (Some(a), Some(b)) = (obs_crc, info.crc) {
                                if *a != b {
                                    report.violations.push(Violation {
                                        kind: ViolationKind::CorruptRead,
                                        detail: format!(
                                            "txn {} observed version {} of {:?} with crc {:08x}, writer {} wrote crc {:08x}",
                                            t.id, ots, cell, a, info.txn, b
                                        ),
                                        txns: vec![t.id, info.txn],
                                    });
                                }
                            }
                            // Anti-dependency on the next version.
                            if let Some((_, next)) = cv.range(ots + 1..).next() {
                                if next.txn != t.id {
                                    rw.insert((t.id, next.txn));
                                }
                            }
                        }
                        None => {
                            // Not a committed version. Excuse it when an
                            // indeterminate txn wrote it and it would be
                            // visible (it may have committed durably).
                            let maybe = maybe_versions
                                .get(cell)
                                .and_then(|mv| mv.get(ots))
                                .filter(|_| expected.is_none_or(|(ets, _)| ets < ots));
                            if maybe.is_some() {
                                report.stats.reads_tolerated_indeterminate += 1;
                            } else if *ots <= baseline {
                                // Initial state — but a recorded
                                // committed version visible at this
                                // snapshot should have superseded it.
                                match expected {
                                    Some((ets, einfo)) if *ets > *ots => {
                                        report.violations.push(Violation {
                                            kind: ViolationKind::StaleRead,
                                            detail: format!(
                                                "txn {} at snapshot {} observed pre-history version {} of {:?} but txn {} committed visible version {}",
                                                t.id, t.snapshot, ots, cell, einfo.txn, ets
                                            ),
                                            txns: vec![t.id, einfo.txn],
                                        });
                                    }
                                    _ => {
                                        report.stats.reads_tolerated_baseline += 1;
                                        // Anti-dependency on the first
                                        // recorded overwrite, as for an
                                        // initial-version read.
                                        if let Some((_, first)) = cv.range(ots + 1..).next() {
                                            if first.txn != t.id {
                                                rw.insert((t.id, first.txn));
                                            }
                                        }
                                    }
                                }
                            } else {
                                report.violations.push(Violation {
                                    kind: ViolationKind::AbortedRead,
                                    detail: format!(
                                        "txn {} observed version {} of {:?} which no committed txn wrote (aborted or phantom read)",
                                        t.id, ots, cell
                                    ),
                                    txns: vec![t.id],
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    report.stats.edges = (ww.len() + wr.len() + rw.len()) as u64;

    // ------------------------------------------------------------------
    // First-committer-wins: for each cell, a committed writer whose
    // [snapshot, commit] interval contains another writer's commit.
    // ------------------------------------------------------------------
    for (cell, cell_versions) in &versions {
        for (&cts, info) in cell_versions {
            let Some(t) = txns.get(&info.txn) else {
                continue;
            };
            if t.commit_ts != cts || cts <= t.snapshot {
                // Resurrected/foreign version (interval unknown) or a
                // malformed interval already reported above.
                continue;
            }
            // Any other committed version of this cell inside
            // (snapshot, commit) means both txns were concurrent and
            // both committed — the second committer should have lost.
            if let Some((octs, other)) = cell_versions
                .range(t.snapshot + 1..cts)
                .find(|(_, o)| o.txn != info.txn)
            {
                report.violations.push(Violation {
                    kind: ViolationKind::FirstCommitterWins,
                    detail: format!(
                        "txns {} (commit {}) and {} (snapshot {}, commit {}) both committed writes to {:?} with overlapping intervals",
                        other.txn, octs, info.txn, t.snapshot, cts, cell
                    ),
                    txns: vec![other.txn, info.txn],
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Cycle checks.
    // ------------------------------------------------------------------
    for scc in sccs(&adjacency(&[&ww])) {
        report.violations.push(Violation {
            kind: ViolationKind::WriteCycle,
            detail: format!("write cycle (G0) among txns {scc:?}"),
            txns: scc,
        });
    }
    for scc in sccs(&adjacency(&[&ww, &wr])) {
        report.violations.push(Violation {
            kind: ViolationKind::InfoFlowCycle,
            detail: format!("information-flow cycle (G1c) among txns {scc:?}"),
            txns: scc,
        });
    }
    // G-single: exactly one rw edge per cycle — for each rw edge r→w,
    // look for a ww∪wr path w ⇝ r. All ww/wr edges are non-decreasing
    // in commit timestamp, so only edges with ts(r) ≥ ts(w) can close.
    let flow = adjacency(&[&ww, &wr]);
    for &(r, w) in &rw {
        let (Some(rt), Some(wt)) = (txns.get(&r), txns.get(&w)) else {
            continue;
        };
        if rt.commit_ts < wt.commit_ts {
            continue;
        }
        if let Some(path) = find_path(&flow, w, r) {
            let mut cycle = path;
            report.violations.push(Violation {
                kind: ViolationKind::GSingle,
                detail: format!(
                    "G-SI cycle with one anti-dependency: {:?} then rw {} → {}",
                    cycle, r, w
                ),
                txns: {
                    cycle.dedup();
                    cycle
                },
            });
        }
    }

    report
}

/// Rebuild per-transaction views from the raw event stream.
pub fn reconstruct(events: &[Event]) -> BTreeMap<u64, TxnView> {
    let mut txns: BTreeMap<u64, TxnView> = BTreeMap::new();
    for e in events {
        let view = txns.entry(e.txn).or_insert_with(|| TxnView {
            id: e.txn,
            snapshot: e.snapshot,
            status: TxnStatus::Unterminated,
            commit_ts: 0,
            reads: Vec::new(),
            writes: Vec::new(),
        });
        match e.kind {
            EventKind::Begin => view.snapshot = e.snapshot,
            EventKind::Read => {
                view.reads.push((
                    (e.table.clone(), e.cg, e.key_hex.clone()),
                    e.observed,
                    e.value_crc,
                ));
            }
            EventKind::Commit => {
                view.status = TxnStatus::Committed;
                view.commit_ts = e.commit_ts;
                view.writes = e
                    .writes
                    .iter()
                    .map(|w| ((w.table.clone(), w.cg, w.key_hex.clone()), w.value_crc))
                    .collect();
            }
            EventKind::Abort => {
                view.status = if e.abort_determinate {
                    TxnStatus::AbortedDeterminate
                } else {
                    TxnStatus::AbortedIndeterminate
                };
                view.commit_ts = e.commit_ts;
                view.writes = e
                    .writes
                    .iter()
                    .map(|w| ((w.table.clone(), w.cg, w.key_hex.clone()), w.value_crc))
                    .collect();
            }
        }
    }
    txns
}

fn adjacency(edge_sets: &[&BTreeSet<(u64, u64)>]) -> HashMap<u64, Vec<u64>> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for set in edge_sets {
        for &(a, b) in set.iter() {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default();
        }
    }
    adj
}

/// Strongly connected components with more than one node (iterative
/// Tarjan). Returns each cycle's member ids, sorted.
fn sccs(adj: &HashMap<u64, Vec<u64>>) -> Vec<Vec<u64>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let mut state: HashMap<u64, NodeState> = HashMap::new();
    let mut next_index = 0u32;
    let mut stack: Vec<u64> = Vec::new();
    let mut out = Vec::new();

    for &root in adj.keys() {
        if state.get(&root).is_some_and(|s| s.index.is_some()) {
            continue;
        }
        // Iterative DFS: (node, next child position).
        let mut call: Vec<(u64, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                let s = state.entry(v).or_default();
                if s.index.is_none() {
                    s.index = Some(next_index);
                    s.lowlink = next_index;
                    s.on_stack = true;
                    next_index += 1;
                    stack.push(v);
                }
            }
            let children = adj.get(&v).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(&w) = children.get(*ci) {
                *ci += 1;
                let ws = state.entry(w).or_default().clone();
                match ws.index {
                    None => call.push((w, 0)),
                    Some(wi) if ws.on_stack => {
                        let vl = state.get(&v).unwrap().lowlink;
                        state.get_mut(&v).unwrap().lowlink = vl.min(wi);
                    }
                    _ => {}
                }
            } else {
                let vs = state.get(&v).unwrap().clone();
                if vs.lowlink == vs.index.unwrap() {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        state.get_mut(&w).unwrap().on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    let pl = state.get(&parent).unwrap().lowlink;
                    let vl = state.get(&v).unwrap().lowlink;
                    state.get_mut(&parent).unwrap().lowlink = pl.min(vl);
                }
            }
        }
    }
    out
}

/// BFS path `from ⇝ to`; returns the node sequence when one exists.
fn find_path(adj: &HashMap<u64, Vec<u64>>, from: u64, to: u64) -> Option<Vec<u64>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: HashMap<u64, u64> = HashMap::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(from);
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            if seen.insert(w) {
                parent.insert(w, v);
                if w == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase::history::WriteRec;
    use logbase_common::Timestamp;

    fn cell_key(k: &str) -> String {
        logbase::history::to_hex(k.as_bytes())
    }

    fn wrec(k: &str, v: Option<&str>) -> WriteRec {
        WriteRec::new("t", 0, k.as_bytes(), v.map(str::as_bytes))
    }

    fn crc(v: &str) -> u32 {
        crc32fast::hash(v.as_bytes())
    }

    /// txn `id`: begin at `snap`, read events, then commit at `cts`.
    fn committed(
        id: u64,
        snap: u64,
        reads: &[(&str, Option<u64>, Option<&str>)],
        cts: u64,
        writes: &[(&str, Option<&str>)],
    ) -> Vec<Event> {
        let mut ev = vec![Event::begin(id, Timestamp(snap))];
        for (k, obs, val) in reads {
            ev.push(Event::read(
                id,
                Timestamp(snap),
                "t",
                0,
                k.as_bytes(),
                obs.map(Timestamp),
                val.map(str::as_bytes),
            ));
        }
        ev.push(Event::commit(
            id,
            Timestamp(snap),
            Timestamp(cts),
            writes.iter().map(|(k, v)| wrec(k, *v)).collect(),
        ));
        ev
    }

    #[test]
    fn clean_history_passes() {
        let mut h = Vec::new();
        h.extend(committed(
            1,
            0,
            &[],
            1,
            &[("x", Some("a")), ("y", Some("b"))],
        ));
        // Reader at snapshot 1 sees both writes of txn 1.
        h.extend(committed(
            2,
            1,
            &[("x", Some(1), Some("a")), ("y", Some(1), Some("b"))],
            1,
            &[],
        ));
        // Writer on top, then a reader at a newer snapshot.
        h.extend(committed(
            3,
            1,
            &[("x", Some(1), Some("a"))],
            2,
            &[("x", Some("c"))],
        ));
        h.extend(committed(4, 2, &[("x", Some(2), Some("c"))], 2, &[]));
        let report = check(&h);
        assert!(
            report.is_clean(),
            "unexpected violations: {:?}",
            report.violations
        );
        assert_eq!(report.stats.committed, 4);
        assert_eq!(report.stats.reads_checked, 4);
    }

    #[test]
    fn lost_update_is_g_single_and_fcw() {
        // Both txns read x@1 = "0", both commit increments: lost update.
        let mut h = Vec::new();
        h.extend(committed(1, 0, &[], 1, &[("x", Some("0"))]));
        h.extend(committed(
            2,
            1,
            &[("x", Some(1), Some("0"))],
            2,
            &[("x", Some("1"))],
        ));
        h.extend(committed(
            3,
            1,
            &[("x", Some(1), Some("0"))],
            3,
            &[("x", Some("1"))],
        ));
        let report = check(&h);
        let kinds: Vec<_> = report.violations.iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&ViolationKind::GSingle),
            "missing G-SI: {kinds:?}"
        );
        assert!(
            kinds.contains(&ViolationKind::FirstCommitterWins),
            "missing FCW: {kinds:?}"
        );
        let offenders = report.offending_txns();
        assert!(
            offenders.contains(&2) && offenders.contains(&3),
            "{offenders:?}"
        );
    }

    #[test]
    fn read_skew_is_stale_read() {
        // x and y written together twice; reader sees new x, old y.
        let mut h = Vec::new();
        h.extend(committed(
            1,
            0,
            &[],
            1,
            &[("x", Some("a1")), ("y", Some("b1"))],
        ));
        h.extend(committed(
            2,
            1,
            &[],
            2,
            &[("x", Some("a2")), ("y", Some("b2"))],
        ));
        h.extend(committed(
            3,
            2,
            &[("x", Some(2), Some("a2")), ("y", Some(1), Some("b1"))],
            2,
            &[],
        ));
        let report = check(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::StaleRead && v.txns.contains(&3)));
    }

    #[test]
    fn long_fork_is_detected() {
        // Two writers; one reader sees only the first, another only the
        // second — the forks disagree about version order.
        let mut h = Vec::new();
        h.extend(committed(1, 0, &[], 1, &[("x", Some("a"))]));
        h.extend(committed(2, 1, &[], 2, &[("y", Some("b"))]));
        // Reader at snapshot 2 must see both; seeing y but not x is a
        // stale read.
        h.extend(committed(
            3,
            2,
            &[("x", None, None), ("y", Some(2), Some("b"))],
            2,
            &[],
        ));
        let report = check(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::StaleRead && v.txns.contains(&3)));
    }

    #[test]
    fn aborted_read_is_g1a() {
        let mut h = Vec::new();
        h.push(Event::begin(1, Timestamp(0)));
        h.push(Event::abort(
            1,
            Timestamp(0),
            vec![wrec("x", Some("ghost"))],
            true,
        ));
        // Committed reader claims to have observed version 7 of x, which
        // nobody committed.
        h.extend(committed(2, 8, &[("x", Some(7), Some("ghost"))], 8, &[]));
        let report = check(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::AbortedRead && v.txns.contains(&2)));
    }

    #[test]
    fn indeterminate_writes_are_tolerated() {
        let mut h = Vec::new();
        // Txn 1's commit errored after the log append started; its
        // reserved commit timestamp was 1.
        h.push(Event::begin(1, Timestamp(0)));
        let mut ab = Event::abort(1, Timestamp(0), vec![wrec("x", Some("maybe"))], false);
        ab.commit_ts = 1;
        h.push(ab);
        // After recovery a reader observes it: tolerated, not G1a.
        h.extend(committed(2, 1, &[("x", Some(1), Some("maybe"))], 1, &[]));
        let report = check(&h);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.stats.reads_tolerated_indeterminate, 1);
    }

    #[test]
    fn future_read_is_detected() {
        let mut h = Vec::new();
        h.extend(committed(1, 0, &[], 5, &[("x", Some("a"))]));
        h.extend(committed(2, 2, &[("x", Some(5), Some("a"))], 2, &[]));
        let report = check(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::FutureRead));
    }

    #[test]
    fn corrupt_value_is_detected() {
        let mut h = Vec::new();
        h.extend(committed(1, 0, &[], 1, &[("x", Some("real"))]));
        h.extend(committed(2, 1, &[("x", Some(1), Some("bogus"))], 1, &[]));
        let report = check(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::CorruptRead));
        let _ = (crc("real"), cell_key("x")); // helpers exercised
    }

    #[test]
    fn duplicate_commit_ts_is_detected() {
        let mut h = Vec::new();
        h.extend(committed(1, 0, &[], 3, &[("x", Some("a"))]));
        h.extend(committed(2, 0, &[], 3, &[("y", Some("b"))]));
        let report = check(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::DuplicateCommitTs));
    }

    #[test]
    fn g1c_cycle_is_detected() {
        // Fabricated wr cycle: txn 2 reads txn 3's write, txn 3 reads
        // txn 2's write, timestamps forged equal-ish so the order is
        // cyclic. Use distinct cells so only wr edges matter.
        let mut h = Vec::new();
        h.extend(committed(
            1,
            0,
            &[],
            1,
            &[("x", Some("x1")), ("y", Some("y1"))],
        ));
        // txn 2: reads y@3 (written by txn 3), writes x at ts 2... but a
        // future read would also fire; keep snapshots high enough.
        h.extend(committed(
            2,
            3,
            &[("y", Some(3), Some("y3"))],
            4,
            &[("x", Some("x2"))],
        ));
        h.extend(committed(
            3,
            3,
            &[("x", Some(4), Some("x2"))],
            3,
            &[("y", Some("y3"))],
        ));
        let report = check(&h);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::InfoFlowCycle
                    || v.kind == ViolationKind::FutureRead),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn deleted_cells_excuse_missing_versions() {
        let mut h = Vec::new();
        h.extend(committed(1, 0, &[], 1, &[("x", Some("a"))]));
        h.extend(committed(2, 1, &[], 2, &[("x", None)])); // delete truncates history
                                                           // Reader at snapshot 1 *should* see version 1, but the delete
                                                           // removed every version from the index.
        h.extend(committed(3, 1, &[("x", None, None)], 1, &[]));
        let report = check(&h);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.stats.reads_tolerated_deleted, 1);
    }

    #[test]
    fn report_serializes() {
        let mut h = Vec::new();
        h.extend(committed(1, 0, &[], 1, &[("x", Some("0"))]));
        h.extend(committed(
            2,
            1,
            &[("x", Some(1), Some("0"))],
            2,
            &[("x", Some("1"))],
        ));
        h.extend(committed(
            3,
            1,
            &[("x", Some(1), Some("0"))],
            3,
            &[("x", Some("1"))],
        ));
        let report = check(&h);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: CheckReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.violations.len(), report.violations.len());
    }
}
