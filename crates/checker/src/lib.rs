//! **logbase-checker** — an Elle-style snapshot-isolation checker for
//! LogBase's MVOCC transaction layer (§3.7, Guarantee 2).
//!
//! Three pieces:
//!
//! - [`si`] — the history checker: rebuilds per-cell version orders
//!   from commit timestamps, derives ww/wr/rw dependency edges, and
//!   reports Adya anomalies (G0, G1a/b/c, G-SI) plus direct
//!   first-committer-wins and snapshot-visibility violations.
//! - [`workload`] — seeded concurrent workload generator (register
//!   RMW + bank transfers + read probes + blind writes over Zipf keys)
//!   that drives client threads through a routing function, so the same
//!   workload runs against one server or a failing-over cluster.
//! - torture tests (`tests/si_torture.rs`) wiring both to the fault
//!   injector, crash points, and cluster failover.
//!
//! Quick use:
//!
//! ```
//! use logbase::{HistoryRecorder, ServerConfig, TabletServer};
//! use logbase_common::schema::TableSchema;
//! use logbase_dfs::{Dfs, DfsConfig};
//! use std::sync::Arc;
//!
//! let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
//! let server = TabletServer::create(dfs, ServerConfig::new("srv-0")).unwrap();
//! server.create_table(TableSchema::single_group("chk", &["v"])).unwrap();
//!
//! let cfg = logbase_checker::workload::WorkloadConfig::new(1);
//! let route = logbase_checker::workload::server_route(&server);
//! logbase_checker::workload::seed_accounts(&route, &cfg).unwrap();
//!
//! let recorder = Arc::new(HistoryRecorder::new());
//! server.set_history_recorder(Some(Arc::clone(&recorder)));
//! let outcome = logbase_checker::workload::run(&route, &cfg);
//! server.set_history_recorder(None);
//!
//! let report = logbase_checker::check_recorded(&recorder);
//! assert!(report.is_clean());
//! assert!(outcome.committed > 0);
//! ```

pub mod si;
pub mod workload;

pub use si::{check, check_with_baseline, CheckReport, CheckStats, Violation, ViolationKind};

use logbase::history::{Event, HistoryRecorder};
use std::path::PathBuf;

/// Check everything a recorder captured, honoring its initial-state
/// baseline (writes that predate recording are not anomalies).
pub fn check_recorded(recorder: &HistoryRecorder) -> CheckReport {
    si::check_with_baseline(&recorder.events(), recorder.baseline().0)
}

/// Directory CI collects failure artifacts from (the workspace `target`
/// directory).
fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target")
}

/// Serialize a failing history + report to
/// `target/checker-failure-<label>-seed<seed>.json` so CI can upload it.
/// Returns the path written (best-effort: IO errors are reported on
/// stderr, not fatal — the test failure itself carries the message).
pub fn write_failure_artifact(
    label: &str,
    seed: u64,
    events: &[Event],
    report: &CheckReport,
) -> PathBuf {
    let path = artifact_dir().join(format!("checker-failure-{label}-seed{seed}.json"));
    let body = format!(
        "{{\n\"label\": \"{label}\",\n\"seed\": {seed},\n\"report\": {},\n\"history\": {}\n}}\n",
        serde_json::to_string_pretty(report)
            .unwrap_or_else(|e| format!("\"unserializable: {e:?}\"")),
        serde_json::to_string_pretty(&events.to_vec())
            .unwrap_or_else(|e| format!("\"unserializable: {e:?}\"")),
    );
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("failed to write checker artifact {}: {e}", path.display());
    }
    path
}

/// Assert a report is clean; on violation, write the artifact and panic
/// with the violation list and seed (the standard torture-test epilogue).
pub fn assert_clean(label: &str, seed: u64, events: &[Event], report: &CheckReport) {
    if report.is_clean() {
        return;
    }
    let path = write_failure_artifact(label, seed, events, report);
    panic!(
        "SI violations in {label} run (seed {seed}): {} violation(s); history at {}\n{:#?}",
        report.violations.len(),
        path.display(),
        report.violations
    );
}

/// The seed for checker torture runs: `LOGBASE_CHECKER_SEED` env var,
/// default 1 (CI matrixes over several).
pub fn seed_from_env() -> u64 {
    std::env::var("LOGBASE_CHECKER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}
