//! A simulated distributed file system — the repo's HDFS substitute.
//!
//! LogBase (§3.4) stores its log segments and index files in HDFS and
//! relies on exactly four properties of it:
//!
//! 1. **Append-only sequential files** made of fixed-size chunks
//!    (64 MB default).
//! 2. **Synchronous n-way replication**: an append returns only after all
//!    `n` replicas of the tail chunk have the bytes (RAID-1-equivalent,
//!    §3.4 "Guarantee 1").
//! 3. **Positional reads** by `(file, offset, len)` from any live replica.
//! 4. **Rack-aware placement** so that losing one node (or one rack)
//!    loses no data.
//!
//! This crate provides those properties in-process. Data nodes are either
//! memory-backed or disk-backed (a directory per node); the name node
//! tracks the namespace and chunk placement; failure injection kills and
//! restarts nodes. Everything is instrumented through
//! [`logbase_common::metrics::Metrics`] so benchmarks can report I/O
//! shapes.
//!
//! # Example
//!
//! ```
//! use logbase_dfs::{Dfs, DfsConfig};
//!
//! let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
//! dfs.create("logs/segment-000001").unwrap();
//! let off = dfs.append("logs/segment-000001", b"hello").unwrap();
//! assert_eq!(off, 0);
//! let data = dfs.read("logs/segment-000001", 0, 5).unwrap();
//! assert_eq!(&data[..], b"hello");
//! ```

mod config;
mod datanode;
mod fault;
mod namenode;
mod system;

pub use config::{AutoRepairConfig, DfsConfig, StorageBackend};
pub use datanode::{BlockId, DataNode, NodeId, SUB_BLOCK};
pub use fault::{
    FaultAction, FaultDecision, FaultInjector, FaultSpec, NetFaultAction, NetFaultDecision,
    NetFaultSpec, NetOp, OpClass, ScheduledFault, ScheduledNetFault,
};
pub use namenode::{ChunkMeta, FileMeta, PlacementPolicy};
pub use system::{Dfs, DfsFileReader};

/// Mark a named crash site inside a maintenance path.
///
/// Expands to a [`Dfs::crash_point`] call followed by `?`, so a fired
/// site aborts the enclosing function exactly where a real crash would:
/// everything before the site is durable, nothing after it ran. Costs
/// one relaxed atomic load when no test armed the registry.
///
/// ```
/// use logbase_dfs::{crash_point, Dfs, DfsConfig};
///
/// fn compact(dfs: &Dfs) -> logbase_common::Result<()> {
///     crash_point!(dfs, "compaction.begin");
///     Ok(())
/// }
/// compact(&Dfs::new(DfsConfig::in_memory(1, 1))).unwrap();
/// ```
#[macro_export]
macro_rules! crash_point {
    ($dfs:expr, $site:expr) => {
        $dfs.crash_point($site)?
    };
}
