//! Data nodes: block stores with failure injection.

use crate::config::StorageBackend;
use logbase_common::{Error, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Identifier of a data node within one DFS instance.
pub type NodeId = u32;

/// Globally unique block id (assigned by the name node).
pub type BlockId = u64;

enum BlockStore {
    Memory(RwLock<HashMap<BlockId, Mutex<Vec<u8>>>>),
    Disk {
        dir: PathBuf,
        /// Open append handles, one per block, created lazily.
        files: Mutex<HashMap<BlockId, File>>,
    },
}

/// One simulated data node.
///
/// Holds replicas of chunks ("blocks") and supports kill/restart failure
/// injection. A killed node rejects every operation with
/// [`Error::NodeDown`]; restarting a memory-backed node loses its blocks
/// (simulating a wiped machine) while a disk-backed node keeps them
/// (simulating a reboot).
pub struct DataNode {
    id: NodeId,
    rack: u32,
    alive: AtomicBool,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    store: BlockStore,
}

impl DataNode {
    /// Create a node backed per `backend`.
    pub fn new(id: NodeId, rack: u32, backend: &StorageBackend) -> Result<Self> {
        let store = match backend {
            StorageBackend::Memory => BlockStore::Memory(RwLock::new(HashMap::new())),
            StorageBackend::Disk(root) => {
                let dir = root.join(format!("dn-{id}"));
                std::fs::create_dir_all(&dir)?;
                BlockStore::Disk {
                    dir,
                    files: Mutex::new(HashMap::new()),
                }
            }
        };
        Ok(DataNode {
            id,
            rack,
            alive: AtomicBool::new(true),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            store,
        })
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Rack the node lives in.
    pub fn rack(&self) -> u32 {
        self.rack
    }

    /// Liveness flag.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Kill the node: every subsequent operation fails until restart.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Restart the node. Memory-backed nodes come back empty (their RAM
    /// is gone); disk-backed nodes keep their blocks.
    pub fn restart(&self) {
        if let BlockStore::Memory(blocks) = &self.store {
            blocks.write().clear();
        }
        if let BlockStore::Disk { files, .. } = &self.store {
            files.lock().clear();
        }
        self.alive.store(true, Ordering::Release);
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(Error::NodeDown(format!("dn-{}", self.id)))
        }
    }

    /// Append `data` to the replica of `block`, creating it if absent.
    /// Returns the replica length after the append.
    pub fn append_block(&self, block: BlockId, data: &[u8]) -> Result<u64> {
        self.check_alive()?;
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        match &self.store {
            BlockStore::Memory(blocks) => {
                {
                    let guard = blocks.read();
                    if let Some(buf) = guard.get(&block) {
                        let mut buf = buf.lock();
                        buf.extend_from_slice(data);
                        return Ok(buf.len() as u64);
                    }
                }
                let mut guard = blocks.write();
                let buf = guard.entry(block).or_insert_with(|| Mutex::new(Vec::new()));
                let mut buf = buf.lock();
                buf.extend_from_slice(data);
                Ok(buf.len() as u64)
            }
            BlockStore::Disk { dir, files } => {
                let mut files = files.lock();
                let file = match files.entry(block) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let path = dir.join(format!("blk_{block}"));
                        let f = OpenOptions::new()
                            .create(true)
                            .append(true)
                            .read(true)
                            .open(path)?;
                        e.insert(f)
                    }
                };
                file.write_all(data)?;
                Ok(file.seek(SeekFrom::End(0))?)
            }
        }
    }

    /// Read `len` bytes at `offset` within the replica of `block`.
    pub fn read_block(&self, block: BlockId, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.check_alive()?;
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        match &self.store {
            BlockStore::Memory(blocks) => {
                let guard = blocks.read();
                let buf = guard
                    .get(&block)
                    .ok_or_else(|| Error::FileNotFound(format!("dn-{} blk_{block}", self.id)))?;
                let buf = buf.lock();
                let end = offset
                    .checked_add(len as u64)
                    .filter(|e| *e <= buf.len() as u64)
                    .ok_or_else(|| Error::OutOfBounds {
                        file: format!("dn-{} blk_{block}", self.id),
                        offset,
                        len: len as u64,
                        size: buf.len() as u64,
                    })?;
                Ok(buf[offset as usize..end as usize].to_vec())
            }
            BlockStore::Disk { dir, files } => {
                let mut files = files.lock();
                let file = match files.entry(block) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let path = dir.join(format!("blk_{block}"));
                        if !path.exists() {
                            return Err(Error::FileNotFound(format!(
                                "dn-{} blk_{block}",
                                self.id
                            )));
                        }
                        let f = OpenOptions::new().append(true).read(true).open(path)?;
                        e.insert(f)
                    }
                };
                let size = file.seek(SeekFrom::End(0))?;
                if offset + len as u64 > size {
                    return Err(Error::OutOfBounds {
                        file: format!("dn-{} blk_{block}", self.id),
                        offset,
                        len: len as u64,
                        size,
                    });
                }
                file.seek(SeekFrom::Start(offset))?;
                let mut out = vec![0u8; len];
                file.read_exact(&mut out)?;
                Ok(out)
            }
        }
    }

    /// Length of the local replica of `block` (0 if absent).
    pub fn block_len(&self, block: BlockId) -> Result<u64> {
        self.check_alive()?;
        match &self.store {
            BlockStore::Memory(blocks) => Ok(blocks
                .read()
                .get(&block)
                .map_or(0, |b| b.lock().len() as u64)),
            BlockStore::Disk { dir, files } => {
                if let Some(f) = files.lock().get_mut(&block) {
                    return Ok(f.seek(SeekFrom::End(0))?);
                }
                let path = dir.join(format!("blk_{block}"));
                Ok(path.metadata().map(|m| m.len()).unwrap_or(0))
            }
        }
    }

    /// Whether this node holds a replica of `block`.
    pub fn has_block(&self, block: BlockId) -> bool {
        if !self.is_alive() {
            return false;
        }
        match &self.store {
            BlockStore::Memory(blocks) => blocks.read().contains_key(&block),
            BlockStore::Disk { dir, files } => {
                files.lock().contains_key(&block) || dir.join(format!("blk_{block}")).exists()
            }
        }
    }

    /// Drop the local replica of `block`.
    pub fn delete_block(&self, block: BlockId) -> Result<()> {
        self.check_alive()?;
        match &self.store {
            BlockStore::Memory(blocks) => {
                blocks.write().remove(&block);
            }
            BlockStore::Disk { dir, files } => {
                files.lock().remove(&block);
                let path = dir.join(format!("blk_{block}"));
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
            }
        }
        Ok(())
    }

    /// Total bytes written to this node since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read from this node since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_append_and_read() {
        let n = DataNode::new(0, 0, &StorageBackend::Memory).unwrap();
        assert_eq!(n.append_block(1, b"abc").unwrap(), 3);
        assert_eq!(n.append_block(1, b"def").unwrap(), 6);
        assert_eq!(n.read_block(1, 2, 3).unwrap(), b"cde");
        assert_eq!(n.block_len(1).unwrap(), 6);
        assert!(n.has_block(1));
        assert!(!n.has_block(2));
    }

    #[test]
    fn read_out_of_bounds() {
        let n = DataNode::new(0, 0, &StorageBackend::Memory).unwrap();
        n.append_block(1, b"abc").unwrap();
        assert!(matches!(
            n.read_block(1, 2, 5),
            Err(Error::OutOfBounds { .. })
        ));
        assert!(matches!(
            n.read_block(9, 0, 1),
            Err(Error::FileNotFound(_))
        ));
    }

    #[test]
    fn kill_blocks_all_ops_and_memory_restart_wipes() {
        let n = DataNode::new(7, 1, &StorageBackend::Memory).unwrap();
        n.append_block(1, b"abc").unwrap();
        n.kill();
        assert!(!n.is_alive());
        assert!(matches!(n.append_block(1, b"x"), Err(Error::NodeDown(_))));
        assert!(matches!(n.read_block(1, 0, 1), Err(Error::NodeDown(_))));
        assert!(!n.has_block(1));
        n.restart();
        assert!(n.is_alive());
        // Memory nodes lose their blocks on restart.
        assert!(!n.has_block(1));
    }

    #[test]
    fn disk_node_survives_restart() {
        let dir = tempfile::tempdir().unwrap();
        let backend = StorageBackend::Disk(dir.path().to_path_buf());
        let n = DataNode::new(3, 0, &backend).unwrap();
        n.append_block(5, b"persistent").unwrap();
        n.kill();
        n.restart();
        assert!(n.has_block(5));
        assert_eq!(n.read_block(5, 0, 10).unwrap(), b"persistent");
    }

    #[test]
    fn disk_append_read_delete() {
        let dir = tempfile::tempdir().unwrap();
        let backend = StorageBackend::Disk(dir.path().to_path_buf());
        let n = DataNode::new(0, 0, &backend).unwrap();
        n.append_block(1, b"hello ").unwrap();
        assert_eq!(n.append_block(1, b"world").unwrap(), 11);
        assert_eq!(n.read_block(1, 6, 5).unwrap(), b"world");
        assert_eq!(n.block_len(1).unwrap(), 11);
        n.delete_block(1).unwrap();
        assert!(!n.has_block(1));
        assert_eq!(n.block_len(1).unwrap(), 0);
    }

    #[test]
    fn io_accounting() {
        let n = DataNode::new(0, 0, &StorageBackend::Memory).unwrap();
        n.append_block(1, &[0u8; 100]).unwrap();
        n.read_block(1, 0, 40).unwrap();
        assert_eq!(n.bytes_written(), 100);
        assert_eq!(n.bytes_read(), 40);
    }
}
