//! Data nodes: checksummed block stores with failure injection.

use crate::config::StorageBackend;
use crate::fault::{FaultAction, FaultInjector, OpClass};
use logbase_common::{Error, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a data node within one DFS instance.
pub type NodeId = u32;

/// Globally unique block id (assigned by the name node).
pub type BlockId = u64;

/// Checksum granularity: one CRC32 per 512-byte sub-block, HDFS-style
/// (`io.bytes.per.checksum`). Reads verify every sub-block they touch, so
/// a flipped bit anywhere in the covered range surfaces as
/// [`Error::ChecksumMismatch`] instead of silently corrupt data.
pub const SUB_BLOCK: usize = 512;

struct MemBlock {
    data: Vec<u8>,
    sums: Vec<u32>,
}

struct DiskState {
    /// Open append handles, one per block, created lazily.
    files: HashMap<BlockId, File>,
    /// Sub-block checksums, cached from the `.crc` sidecars.
    sums: HashMap<BlockId, Vec<u32>>,
}

enum BlockStore {
    Memory(RwLock<HashMap<BlockId, Mutex<MemBlock>>>),
    Disk {
        dir: PathBuf,
        state: Mutex<DiskState>,
    },
}

/// Recompute `sums` to cover `data`, assuming everything strictly before
/// `from_byte`'s sub-block is unchanged. Returns the index of the first
/// rewritten checksum (for partial sidecar writes).
fn recompute_sums(data: &[u8], sums: &mut Vec<u32>, from_byte: usize) -> usize {
    let first = from_byte / SUB_BLOCK;
    sums.truncate(first);
    for chunk in data[first * SUB_BLOCK..].chunks(SUB_BLOCK) {
        sums.push(crc32fast::hash(chunk));
    }
    first
}

/// Verify the sub-blocks of `data` covering `[offset, offset + len)`
/// against `sums` (where `sums[i]` covers `data[i*SUB_BLOCK..]`), then
/// copy the requested range out.
fn verified_copy(
    context: &str,
    data: &[u8],
    sums: &[u32],
    offset: usize,
    len: usize,
) -> Result<Vec<u8>> {
    let first = offset / SUB_BLOCK;
    let last = (offset + len).div_ceil(SUB_BLOCK);
    for i in first..last {
        let start = i * SUB_BLOCK;
        let end = ((i + 1) * SUB_BLOCK).min(data.len());
        let expected = *sums.get(i).ok_or_else(|| {
            Error::Corruption(format!("{context}: missing checksum for sub-block {i}"))
        })?;
        let actual = crc32fast::hash(&data[start..end]);
        if actual != expected {
            return Err(Error::ChecksumMismatch {
                context: format!("{context} sub-block {i}"),
                expected,
                actual,
            });
        }
    }
    Ok(data[offset..offset + len].to_vec())
}

/// One simulated data node.
///
/// Holds replicas of chunks ("blocks") with per-sub-block CRC32 checksums
/// and supports failure injection two ways: coarse kill/restart (a killed
/// node rejects every operation with [`Error::NodeDown`]; restarting a
/// memory-backed node loses its blocks, a disk-backed node keeps them),
/// and a seeded [`FaultInjector`] consulted before every block operation
/// for transient errors, latency, torn appends and bit flips.
pub struct DataNode {
    id: NodeId,
    rack: u32,
    alive: AtomicBool,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    store: BlockStore,
    faults: Arc<FaultInjector>,
}

impl DataNode {
    /// Create a node backed per `backend`, consulting `faults` before
    /// every block operation.
    pub fn new(
        id: NodeId,
        rack: u32,
        backend: &StorageBackend,
        faults: Arc<FaultInjector>,
    ) -> Result<Self> {
        let store = match backend {
            StorageBackend::Memory => BlockStore::Memory(RwLock::new(HashMap::new())),
            StorageBackend::Disk(root) => {
                let dir = root.join(format!("dn-{id}"));
                std::fs::create_dir_all(&dir)?;
                BlockStore::Disk {
                    dir,
                    state: Mutex::new(DiskState {
                        files: HashMap::new(),
                        sums: HashMap::new(),
                    }),
                }
            }
        };
        Ok(DataNode {
            id,
            rack,
            alive: AtomicBool::new(true),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            store,
            faults,
        })
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Rack the node lives in.
    pub fn rack(&self) -> u32 {
        self.rack
    }

    /// Liveness flag.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Kill the node: every subsequent operation fails until restart.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Restart the node. Memory-backed nodes come back empty (their RAM
    /// is gone); disk-backed nodes keep their blocks.
    pub fn restart(&self) {
        if let BlockStore::Memory(blocks) = &self.store {
            blocks.write().clear();
        }
        if let BlockStore::Disk { state, .. } = &self.store {
            let mut state = state.lock();
            state.files.clear();
            state.sums.clear();
        }
        self.alive.store(true, Ordering::Release);
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(Error::NodeDown(format!("dn-{}", self.id)))
        }
    }

    fn context(&self, block: BlockId) -> String {
        format!("dn-{} blk_{block}", self.id)
    }

    /// Consult the fault injector for `class`: sleeps any injected
    /// latency, then returns the action for the caller to apply.
    fn fault(&self, class: OpClass) -> FaultAction {
        let decision = self.faults.decide(self.id, class);
        if let Some(latency) = decision.latency {
            std::thread::sleep(latency);
        }
        decision.action
    }

    fn sidecar(dir: &std::path::Path, block: BlockId) -> PathBuf {
        dir.join(format!("blk_{block}.crc"))
    }

    fn load_sums(dir: &std::path::Path, block: BlockId) -> Result<Vec<u32>> {
        match std::fs::read(Self::sidecar(dir, block)) {
            Ok(raw) => Ok(raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// Persist `sums[from..]` into the sidecar, truncating it to the
    /// current checksum count.
    fn store_sums(dir: &std::path::Path, block: BlockId, sums: &[u32], from: usize) -> Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(Self::sidecar(dir, block))?;
        f.set_len((sums.len() * 4) as u64)?;
        f.seek(SeekFrom::Start((from * 4) as u64))?;
        let mut buf = Vec::with_capacity((sums.len() - from) * 4);
        for s in &sums[from..] {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        f.write_all(&buf)?;
        Ok(())
    }

    /// Append `data` to the replica of `block`, creating it if absent.
    /// Returns the replica length after the append.
    pub fn append_block(&self, block: BlockId, data: &[u8]) -> Result<u64> {
        self.check_alive()?;
        match self.fault(OpClass::Append) {
            FaultAction::Proceed | FaultAction::BitFlip { .. } => {}
            FaultAction::TransientIo => {
                return Err(FaultInjector::transient_error(self.id, OpClass::Append))
            }
            FaultAction::Crash => {
                self.kill();
                return Err(Error::NodeDown(format!("dn-{} (injected crash)", self.id)));
            }
            FaultAction::TornAppend { keep } => {
                // Persist a prefix, then die: the classic torn write.
                let keep = keep.min(data.len());
                let _ = self.append_raw(block, &data[..keep]);
                self.kill();
                return Err(Error::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!(
                        "injected torn append on dn-{}: kept {keep}/{} bytes",
                        self.id,
                        data.len()
                    ),
                )));
            }
        }
        self.append_raw(block, data)
    }

    fn append_raw(&self, block: BlockId, data: &[u8]) -> Result<u64> {
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        match &self.store {
            BlockStore::Memory(blocks) => {
                let extend = |b: &Mutex<MemBlock>| {
                    let mut b = b.lock();
                    let from = b.data.len();
                    b.data.extend_from_slice(data);
                    let MemBlock { data: buf, sums } = &mut *b;
                    recompute_sums(buf, sums, from);
                    buf.len() as u64
                };
                {
                    let guard = blocks.read();
                    if let Some(b) = guard.get(&block) {
                        return Ok(extend(b));
                    }
                }
                let mut guard = blocks.write();
                let b = guard.entry(block).or_insert_with(|| {
                    Mutex::new(MemBlock {
                        data: Vec::new(),
                        sums: Vec::new(),
                    })
                });
                Ok(extend(b))
            }
            BlockStore::Disk { dir, state } => {
                let mut state = state.lock();
                if let std::collections::hash_map::Entry::Vacant(e) = state.sums.entry(block) {
                    e.insert(Self::load_sums(dir, block)?);
                }
                let file = match state.files.entry(block) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let path = dir.join(format!("blk_{block}"));
                        let f = OpenOptions::new()
                            .create(true)
                            .append(true)
                            .read(true)
                            .open(path)?;
                        e.insert(f)
                    }
                };
                let from = file.seek(SeekFrom::End(0))? as usize;
                file.write_all(data)?;
                let new_len = file.seek(SeekFrom::End(0))?;
                // Rehash the affected tail: the last pre-append sub-block
                // (if partial) plus everything new.
                let first = from / SUB_BLOCK;
                let tail_start = (first * SUB_BLOCK) as u64;
                file.seek(SeekFrom::Start(tail_start))?;
                let mut tail = vec![0u8; (new_len - tail_start) as usize];
                file.read_exact(&mut tail)?;
                let sums = state.sums.get_mut(&block).expect("sums loaded above");
                sums.truncate(first);
                for chunk in tail.chunks(SUB_BLOCK) {
                    sums.push(crc32fast::hash(chunk));
                }
                Self::store_sums(dir, block, sums, first)?;
                Ok(new_len)
            }
        }
    }

    /// Read `len` bytes at `offset` within the replica of `block`,
    /// verifying the checksums of every sub-block the range touches.
    pub fn read_block(&self, block: BlockId, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.check_alive()?;
        match self.fault(OpClass::Read) {
            FaultAction::Proceed | FaultAction::TornAppend { .. } => {}
            FaultAction::TransientIo => {
                return Err(FaultInjector::transient_error(self.id, OpClass::Read))
            }
            FaultAction::Crash => {
                self.kill();
                return Err(Error::NodeDown(format!("dn-{} (injected crash)", self.id)));
            }
            FaultAction::BitFlip { byte_seed, bit } => {
                self.flip_bit(block, byte_seed, bit)?;
            }
        }
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        match &self.store {
            BlockStore::Memory(blocks) => {
                let guard = blocks.read();
                let b = guard
                    .get(&block)
                    .ok_or_else(|| Error::FileNotFound(self.context(block)))?;
                let b = b.lock();
                offset
                    .checked_add(len as u64)
                    .filter(|e| *e <= b.data.len() as u64)
                    .ok_or_else(|| Error::OutOfBounds {
                        file: self.context(block),
                        offset,
                        len: len as u64,
                        size: b.data.len() as u64,
                    })?;
                verified_copy(&self.context(block), &b.data, &b.sums, offset as usize, len)
            }
            BlockStore::Disk { dir, state } => {
                let mut state = state.lock();
                if let std::collections::hash_map::Entry::Vacant(e) = state.sums.entry(block) {
                    e.insert(Self::load_sums(dir, block)?);
                }
                let file = match state.files.entry(block) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let path = dir.join(format!("blk_{block}"));
                        if !path.exists() {
                            return Err(Error::FileNotFound(format!("dn-{} blk_{block}", self.id)));
                        }
                        let f = OpenOptions::new().append(true).read(true).open(path)?;
                        e.insert(f)
                    }
                };
                let size = file.seek(SeekFrom::End(0))?;
                if offset + len as u64 > size {
                    return Err(Error::OutOfBounds {
                        file: self.context(block),
                        offset,
                        len: len as u64,
                        size,
                    });
                }
                // Read whole covering sub-blocks so their checksums can
                // be verified, then slice out the requested range.
                let aligned_start = (offset as usize / SUB_BLOCK) * SUB_BLOCK;
                let aligned_end =
                    ((offset as usize + len).div_ceil(SUB_BLOCK) * SUB_BLOCK).min(size as usize);
                file.seek(SeekFrom::Start(aligned_start as u64))?;
                let mut raw = vec![0u8; aligned_end - aligned_start];
                file.read_exact(&mut raw)?;
                let sums = state.sums.get(&block).expect("sums loaded above");
                let first = aligned_start / SUB_BLOCK;
                // `raw` starts at global sub-block `first`; shift the sums
                // so index 0 of the slice covers index 0 of `raw`.
                let shifted: Vec<u32> = sums.get(first..).map(<[u32]>::to_vec).unwrap_or_default();
                verified_copy(
                    &self.context(block),
                    &raw,
                    &shifted,
                    offset as usize - aligned_start,
                    len,
                )
            }
        }
    }

    /// Flip one bit of the stored replica (fault injection). The target
    /// byte is `byte_seed % block_len`; an absent or empty block is left
    /// alone. Checksums are deliberately *not* updated — the next read
    /// covering the byte fails with [`Error::ChecksumMismatch`].
    fn flip_bit(&self, block: BlockId, byte_seed: u64, bit: u8) -> Result<()> {
        match &self.store {
            BlockStore::Memory(blocks) => {
                let guard = blocks.read();
                if let Some(b) = guard.get(&block) {
                    let mut b = b.lock();
                    if !b.data.is_empty() {
                        let at = (byte_seed % b.data.len() as u64) as usize;
                        b.data[at] ^= 1 << (bit % 8);
                    }
                }
            }
            BlockStore::Disk { dir, state } => {
                let _state = state.lock();
                let path = dir.join(format!("blk_{block}"));
                if let Ok(mut f) = OpenOptions::new().read(true).write(true).open(path) {
                    let size = f.seek(SeekFrom::End(0))?;
                    if size > 0 {
                        let at = byte_seed % size;
                        let mut byte = [0u8];
                        f.seek(SeekFrom::Start(at))?;
                        f.read_exact(&mut byte)?;
                        byte[0] ^= 1 << (bit % 8);
                        f.seek(SeekFrom::Start(at))?;
                        f.write_all(&byte)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Shrink the replica of `block` to `len` bytes (no-op when the
    /// replica is absent or already at/below `len`). The replication
    /// pipeline uses this to undo partial appends before re-driving a
    /// write.
    pub fn truncate_block(&self, block: BlockId, len: u64) -> Result<()> {
        self.check_alive()?;
        match &self.store {
            BlockStore::Memory(blocks) => {
                let guard = blocks.read();
                if let Some(b) = guard.get(&block) {
                    let mut b = b.lock();
                    if (b.data.len() as u64) > len {
                        b.data.truncate(len as usize);
                        let MemBlock { data: buf, sums } = &mut *b;
                        recompute_sums(buf, sums, len as usize);
                    }
                }
                Ok(())
            }
            BlockStore::Disk { dir, state } => {
                let mut state = state.lock();
                let path = dir.join(format!("blk_{block}"));
                if !path.exists() {
                    return Ok(());
                }
                let size = path.metadata()?.len();
                if size <= len {
                    return Ok(());
                }
                if let Some(f) = state.files.get_mut(&block) {
                    f.set_len(len)?;
                } else {
                    OpenOptions::new().write(true).open(&path)?.set_len(len)?;
                }
                // Rehash the now-partial final sub-block.
                let mut sums = Self::load_sums(dir, block)?;
                let first = (len as usize) / SUB_BLOCK;
                sums.truncate(first);
                if len as usize % SUB_BLOCK != 0 {
                    let mut f = OpenOptions::new().read(true).open(&path)?;
                    f.seek(SeekFrom::Start((first * SUB_BLOCK) as u64))?;
                    let mut tail = vec![0u8; len as usize - first * SUB_BLOCK];
                    f.read_exact(&mut tail)?;
                    sums.push(crc32fast::hash(&tail));
                }
                Self::store_sums(dir, block, &sums, first.min(sums.len()))?;
                state.sums.insert(block, sums);
                Ok(())
            }
        }
    }

    /// Length of the local replica of `block` (0 if absent).
    pub fn block_len(&self, block: BlockId) -> Result<u64> {
        self.check_alive()?;
        match &self.store {
            BlockStore::Memory(blocks) => Ok(blocks
                .read()
                .get(&block)
                .map_or(0, |b| b.lock().data.len() as u64)),
            BlockStore::Disk { dir, state } => {
                if let Some(f) = state.lock().files.get_mut(&block) {
                    return Ok(f.seek(SeekFrom::End(0))?);
                }
                let path = dir.join(format!("blk_{block}"));
                Ok(path.metadata().map(|m| m.len()).unwrap_or(0))
            }
        }
    }

    /// Whether this node holds a replica of `block`.
    pub fn has_block(&self, block: BlockId) -> bool {
        if !self.is_alive() {
            return false;
        }
        match &self.store {
            BlockStore::Memory(blocks) => blocks.read().contains_key(&block),
            BlockStore::Disk { dir, state } => {
                state.lock().files.contains_key(&block) || dir.join(format!("blk_{block}")).exists()
            }
        }
    }

    /// Block report: every block id this node holds a replica of. The
    /// name node diffs this against its chunk table to reclaim orphaned
    /// replicas after a restart.
    pub fn list_blocks(&self) -> Vec<BlockId> {
        match &self.store {
            BlockStore::Memory(blocks) => blocks.read().keys().copied().collect(),
            BlockStore::Disk { dir, state } => {
                let _state = state.lock();
                let mut out = Vec::new();
                if let Ok(entries) = std::fs::read_dir(dir) {
                    for entry in entries.flatten() {
                        let name = entry.file_name();
                        let Some(name) = name.to_str() else { continue };
                        if let Some(id) = name.strip_prefix("blk_") {
                            if let Ok(id) = id.parse::<BlockId>() {
                                out.push(id);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Drop the local replica of `block` (and its checksum sidecar).
    pub fn delete_block(&self, block: BlockId) -> Result<()> {
        self.check_alive()?;
        match self.fault(OpClass::Delete) {
            FaultAction::Proceed | FaultAction::BitFlip { .. } | FaultAction::TornAppend { .. } => {
            }
            FaultAction::TransientIo => {
                return Err(FaultInjector::transient_error(self.id, OpClass::Delete))
            }
            FaultAction::Crash => {
                self.kill();
                return Err(Error::NodeDown(format!("dn-{} (injected crash)", self.id)));
            }
        }
        match &self.store {
            BlockStore::Memory(blocks) => {
                blocks.write().remove(&block);
            }
            BlockStore::Disk { dir, state } => {
                let mut state = state.lock();
                state.files.remove(&block);
                state.sums.remove(&block);
                let path = dir.join(format!("blk_{block}"));
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let crc = Self::sidecar(dir, block);
                if crc.exists() {
                    std::fs::remove_file(crc)?;
                }
            }
        }
        Ok(())
    }

    /// Total bytes written to this node since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read from this node since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultSpec, ScheduledFault};

    fn quiet(id: NodeId, rack: u32, backend: &StorageBackend) -> DataNode {
        DataNode::new(id, rack, backend, Arc::new(FaultInjector::disabled())).unwrap()
    }

    #[test]
    fn memory_append_and_read() {
        let n = quiet(0, 0, &StorageBackend::Memory);
        assert_eq!(n.append_block(1, b"abc").unwrap(), 3);
        assert_eq!(n.append_block(1, b"def").unwrap(), 6);
        assert_eq!(n.read_block(1, 2, 3).unwrap(), b"cde");
        assert_eq!(n.block_len(1).unwrap(), 6);
        assert!(n.has_block(1));
        assert!(!n.has_block(2));
    }

    #[test]
    fn read_out_of_bounds() {
        let n = quiet(0, 0, &StorageBackend::Memory);
        n.append_block(1, b"abc").unwrap();
        assert!(matches!(
            n.read_block(1, 2, 5),
            Err(Error::OutOfBounds { .. })
        ));
        assert!(matches!(n.read_block(9, 0, 1), Err(Error::FileNotFound(_))));
    }

    #[test]
    fn kill_blocks_all_ops_and_memory_restart_wipes() {
        let n = quiet(7, 1, &StorageBackend::Memory);
        n.append_block(1, b"abc").unwrap();
        n.kill();
        assert!(!n.is_alive());
        assert!(matches!(n.append_block(1, b"x"), Err(Error::NodeDown(_))));
        assert!(matches!(n.read_block(1, 0, 1), Err(Error::NodeDown(_))));
        assert!(!n.has_block(1));
        n.restart();
        assert!(n.is_alive());
        // Memory nodes lose their blocks on restart.
        assert!(!n.has_block(1));
    }

    #[test]
    fn disk_node_survives_restart() {
        let dir = tempfile::tempdir().unwrap();
        let backend = StorageBackend::Disk(dir.path().to_path_buf());
        let n = quiet(3, 0, &backend);
        n.append_block(5, b"persistent").unwrap();
        n.kill();
        n.restart();
        assert!(n.has_block(5));
        assert_eq!(n.read_block(5, 0, 10).unwrap(), b"persistent");
    }

    #[test]
    fn disk_append_read_delete() {
        let dir = tempfile::tempdir().unwrap();
        let backend = StorageBackend::Disk(dir.path().to_path_buf());
        let n = quiet(0, 0, &backend);
        n.append_block(1, b"hello ").unwrap();
        assert_eq!(n.append_block(1, b"world").unwrap(), 11);
        assert_eq!(n.read_block(1, 6, 5).unwrap(), b"world");
        assert_eq!(n.block_len(1).unwrap(), 11);
        n.delete_block(1).unwrap();
        assert!(!n.has_block(1));
        assert_eq!(n.block_len(1).unwrap(), 0);
    }

    #[test]
    fn io_accounting() {
        let n = quiet(0, 0, &StorageBackend::Memory);
        n.append_block(1, &[0u8; 100]).unwrap();
        n.read_block(1, 0, 40).unwrap();
        assert_eq!(n.bytes_written(), 100);
        assert_eq!(n.bytes_read(), 40);
    }

    #[test]
    fn checksums_span_sub_blocks() {
        for backend in [
            StorageBackend::Memory,
            StorageBackend::Disk(tempfile::tempdir().unwrap().path().to_path_buf()),
        ] {
            let n = quiet(0, 0, &backend);
            // Build a block spanning several sub-blocks from ragged
            // appends, then read at assorted alignments.
            let mut expect = Vec::new();
            for i in 0..20u32 {
                let piece = vec![i as u8; 137];
                expect.extend_from_slice(&piece);
                n.append_block(1, &piece).unwrap();
            }
            assert_eq!(n.block_len(1).unwrap(), expect.len() as u64);
            for (off, len) in [
                (0usize, 10usize),
                (500, 600),
                (511, 2),
                (1024, 512),
                (2000, 740),
            ] {
                assert_eq!(
                    n.read_block(1, off as u64, len).unwrap(),
                    &expect[off..off + len],
                    "range {off}+{len}"
                );
            }
        }
    }

    #[test]
    fn bit_flip_is_caught_by_read_checksums() {
        for backend in [
            StorageBackend::Memory,
            StorageBackend::Disk(tempfile::tempdir().unwrap().path().to_path_buf()),
        ] {
            let faults = Arc::new(FaultInjector::new(42));
            let n = DataNode::new(0, 0, &backend, Arc::clone(&faults)).unwrap();
            n.append_block(1, &[7u8; 2000]).unwrap();
            faults.set_spec(
                0,
                OpClass::Read,
                FaultSpec::default().with_scheduled(1, ScheduledFault::BitFlip),
            );
            let err = n.read_block(1, 0, 2000).unwrap_err();
            assert!(err.is_corruption(), "expected checksum failure, got {err}");
            // The corruption is persistent: later reads of the damaged
            // sub-block keep failing even with no further faults.
            assert!(n.read_block(1, 0, 2000).is_err());
        }
    }

    #[test]
    fn torn_append_persists_prefix_and_kills_node() {
        let dir = tempfile::tempdir().unwrap();
        let faults = Arc::new(FaultInjector::new(9));
        let n = DataNode::new(
            2,
            0,
            &StorageBackend::Disk(dir.path().to_path_buf()),
            Arc::clone(&faults),
        )
        .unwrap();
        n.append_block(1, b"committed").unwrap();
        faults.set_spec(
            2,
            OpClass::Append,
            FaultSpec::default().with_scheduled(1, ScheduledFault::TornAppend { keep: 3 }),
        );
        let err = n.append_block(1, b"doomed-write").unwrap_err();
        assert!(
            err.is_retriable(),
            "torn append should read as transient: {err}"
        );
        assert!(!n.is_alive());
        n.restart();
        assert_eq!(n.block_len(1).unwrap(), 12); // "committed" + "doo"
        assert_eq!(n.read_block(1, 0, 12).unwrap(), b"committeddoo");
    }

    #[test]
    fn truncate_undoes_partial_appends() {
        for backend in [
            StorageBackend::Memory,
            StorageBackend::Disk(tempfile::tempdir().unwrap().path().to_path_buf()),
        ] {
            let n = quiet(0, 0, &backend);
            n.append_block(1, &[1u8; 700]).unwrap();
            n.append_block(1, &[2u8; 300]).unwrap();
            n.truncate_block(1, 700).unwrap();
            assert_eq!(n.block_len(1).unwrap(), 700);
            assert_eq!(n.read_block(1, 0, 700).unwrap(), &[1u8; 700]);
            // Truncating to a larger size is a no-op.
            n.truncate_block(1, 5000).unwrap();
            assert_eq!(n.block_len(1).unwrap(), 700);
            // Re-appending after truncation keeps checksums consistent.
            n.append_block(1, &[3u8; 100]).unwrap();
            let got = n.read_block(1, 600, 200).unwrap();
            assert_eq!(&got[..100], &[1u8; 100]);
            assert_eq!(&got[100..], &[3u8; 100]);
        }
    }

    #[test]
    fn block_report_lists_replicas() {
        let dir = tempfile::tempdir().unwrap();
        let backend = StorageBackend::Disk(dir.path().to_path_buf());
        let n = quiet(0, 0, &backend);
        n.append_block(3, b"x").unwrap();
        n.append_block(9, b"y").unwrap();
        let mut blocks = n.list_blocks();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![3, 9]);
        n.delete_block(3).unwrap();
        assert_eq!(n.list_blocks(), vec![9]);
    }

    #[test]
    fn injected_transient_errors_are_retriable() {
        let faults = Arc::new(FaultInjector::new(1));
        let n = DataNode::new(0, 0, &StorageBackend::Memory, Arc::clone(&faults)).unwrap();
        n.append_block(1, b"abc").unwrap();
        faults.set_spec(0, OpClass::Read, FaultSpec::transient(1.0));
        let err = n.read_block(1, 0, 3).unwrap_err();
        assert!(err.is_retriable());
        faults.clear();
        assert_eq!(n.read_block(1, 0, 3).unwrap(), b"abc");
    }
}
