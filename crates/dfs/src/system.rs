//! The DFS facade: replicated append/read over data nodes + name node.

use crate::config::DfsConfig;
use crate::datanode::{BlockId, DataNode, NodeId};
use crate::fault::FaultInjector;
use crate::namenode::{ChunkMeta, FileMeta, NameNode, PlacementPolicy};
use bytes::Bytes;
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::{Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// A simulated DFS cluster.
///
/// Cloning the handle is cheap; all clones address the same cluster.
/// Appends are *synchronous*: the call returns only after every replica of
/// every touched chunk has the bytes, matching HDFS pipeline semantics the
/// paper relies on for Guarantee 1 (§3.4). A replica that fails mid-append
/// is retried per the configured [`logbase_common::RetryPolicy`], then
/// excluded and replaced with a fresh node — an acknowledged append is
/// never under-replicated or divergent.
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
    /// Per-handle byte token bucket. `None` (every foreground handle)
    /// reads and writes unmetered; a handle cloned via
    /// [`Dfs::rate_limited`] acquires tokens before each read or append
    /// so background bulk I/O yields to foreground load.
    limiter: Option<Arc<logbase_common::RateLimiter>>,
}

struct DfsInner {
    config: DfsConfig,
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    faults: Arc<FaultInjector>,
    /// Serializes appends per file (HDFS: single writer per file).
    append_locks: Mutex<std::collections::HashMap<String, Arc<Mutex<()>>>>,
    metrics: MetricsHandle,
}

/// Undo record for one pipeline write: `(block, committed length before
/// the write, whether the write created the block, replicas written)`.
type UndoRecord = (BlockId, u64, bool, Vec<NodeId>);

impl Dfs {
    /// Bring up a cluster per `config`.
    pub fn new(config: DfsConfig) -> Self {
        Self::with_metrics(config, Metrics::new_handle())
    }

    /// Bring up a cluster that reports into an existing metrics sink.
    pub fn with_metrics(config: DfsConfig, metrics: MetricsHandle) -> Self {
        assert!(config.data_nodes > 0, "DFS needs at least one data node");
        assert!(
            config.replication >= 1 && config.replication <= config.data_nodes,
            "replication factor must be within [1, data_nodes]"
        );
        let policy = if config.racks > 1 {
            PlacementPolicy::RackAware
        } else {
            PlacementPolicy::Flat
        };
        let faults = Arc::new(FaultInjector::new(config.fault_seed));
        let datanodes = (0..config.data_nodes as NodeId)
            .map(|id| {
                DataNode::new(
                    id,
                    id % config.racks as u32,
                    &config.backend,
                    Arc::clone(&faults),
                )
                .expect("data node directory creation failed")
            })
            .collect();
        let dfs = Dfs {
            limiter: None,
            inner: Arc::new(DfsInner {
                namenode: NameNode::new(policy),
                datanodes,
                faults,
                append_locks: Mutex::new(std::collections::HashMap::new()),
                metrics,
                config,
            }),
        };
        if let Some(repair) = dfs.inner.config.auto_repair.clone() {
            // The repair thread holds only a weak reference so dropping
            // the last user handle tears the cluster (and the thread)
            // down.
            let weak = Arc::downgrade(&dfs.inner);
            std::thread::spawn(move || {
                let mut last_sweep: Option<std::time::Instant> = None;
                loop {
                    std::thread::sleep(repair.interval);
                    let Some(inner) = weak.upgrade() else { break };
                    let dfs = Dfs {
                        inner,
                        limiter: None,
                    };
                    if last_sweep.is_some_and(|t| t.elapsed() < repair.min_gap) {
                        continue;
                    }
                    if dfs.under_replicated_chunks() > 0 {
                        Metrics::incr(&dfs.inner.metrics.repairs_triggered);
                        let _ = dfs.rereplicate();
                        last_sweep = Some(std::time::Instant::now());
                    }
                }
            });
        }
        dfs
    }

    /// The cluster's metrics sink.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.inner.metrics
    }

    /// The configuration the cluster was created with.
    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    /// The cluster's fault injector (dormant unless armed with specs).
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.inner.faults
    }

    /// A handle onto the same cluster whose reads and appends first
    /// acquire byte tokens from `limiter`. The compaction scheduler does
    /// its bulk I/O through such a handle so background traffic is
    /// throttled while foreground handles stay unmetered.
    pub fn rate_limited(&self, limiter: Arc<logbase_common::RateLimiter>) -> Dfs {
        Dfs {
            inner: Arc::clone(&self.inner),
            limiter: Some(limiter),
        }
    }

    /// Meter `bytes` through this handle's limiter, if it has one.
    fn throttle(&self, bytes: u64) {
        if let Some(limiter) = &self.limiter {
            if !limiter.acquire(bytes).is_zero() {
                Metrics::incr(&self.inner.metrics.compaction_throttle_waits);
            }
        }
    }

    /// Evaluate the named crash point `site` (see [`FaultInjector`]'s
    /// crash-point registry). A no-op unless a test armed or recorded
    /// the site; when the site fires, the `crash_sites_hit` metric is
    /// bumped and the `CrashPoint` error propagates up the maintenance
    /// call stack, simulating process death at this exact step.
    pub fn crash_point(&self, site: &str) -> Result<()> {
        self.inner.faults.check_crash_point(site).inspect_err(|_| {
            Metrics::incr(&self.inner.metrics.crash_sites_hit);
        })
    }

    fn live_nodes(&self) -> Vec<(NodeId, u32)> {
        self.inner
            .datanodes
            .iter()
            .filter(|n| n.is_alive())
            .map(|n| (n.id(), n.rack()))
            .collect()
    }

    fn node(&self, id: NodeId) -> &DataNode {
        &self.inner.datanodes[id as usize]
    }

    fn file_lock(&self, name: &str) -> Arc<Mutex<()>> {
        let mut locks = self.inner.append_locks.lock();
        Arc::clone(locks.entry(name.to_string()).or_default())
    }

    /// Create an empty file.
    pub fn create(&self, name: &str) -> Result<()> {
        self.inner.namenode.create(name)
    }

    /// True when `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.namenode.exists(name)
    }

    /// Current length of `name`.
    pub fn len(&self, name: &str) -> Result<u64> {
        Ok(self.inner.namenode.stat(name)?.len())
    }

    /// True when `name` exists and holds no bytes.
    pub fn is_empty(&self, name: &str) -> Result<bool> {
        Ok(self.len(name)? == 0)
    }

    /// Metadata snapshot (chunk layout, replica placement).
    pub fn stat(&self, name: &str) -> Result<FileMeta> {
        self.inner.namenode.stat(name)
    }

    /// List files with prefix, lexicographically.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.namenode.list(prefix)
    }

    /// Seal a file against further appends (log segment rotation).
    pub fn seal(&self, name: &str) -> Result<()> {
        self.inner.namenode.seal(name)
    }

    /// Rename a file (compaction installs sorted segments this way).
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.namenode.rename(from, to)
    }

    /// Delete a file and reclaim its chunks on all live replicas.
    ///
    /// Dead replicas are skipped; their blocks are orphaned until the
    /// node restarts and [`Dfs::sweep_orphans`] reconciles its block
    /// report against the namespace (HDFS does the same).
    pub fn delete(&self, name: &str) -> Result<()> {
        let chunks = self.inner.namenode.delete(name)?;
        for c in chunks {
            for r in c.replicas {
                let _ = self.node(r).delete_block(c.block);
            }
        }
        Ok(())
    }

    /// Append `data` to `name`, returning the offset at which it landed.
    ///
    /// The write is replicated synchronously: every replica of every
    /// touched chunk acknowledges before the call returns. A replica that
    /// fails transiently is retried per the configured policy; a replica
    /// that stays down is excluded and replaced with a freshly-placed
    /// node (healed up to the committed chunk offset from a surviving
    /// peer), so a successful return always means `replication` complete,
    /// identical replicas. On overall failure every partial replica write
    /// is rolled back before the error is returned.
    pub fn append(&self, name: &str, data: &[u8]) -> Result<u64> {
        self.throttle(data.len() as u64);
        let file_lock = self.file_lock(name);
        let _guard = file_lock.lock();

        let mut plan = self.inner.namenode.plan_append(
            name,
            data.len() as u64,
            self.inner.config.chunk_size,
            self.inner.config.replication,
            &self.live_nodes(),
        )?;
        let retry = self.inner.config.retry.clone();
        // Nodes that failed during this append; never picked again.
        let mut failed: Vec<NodeId> = Vec::new();
        // Completed (block, base, new, replicas) for rollback on failure.
        let mut undo: Vec<UndoRecord> = Vec::new();
        for w in &mut plan.writes {
            let slice = &data[w.data_range.0 as usize..w.data_range.1 as usize];
            let base = w.chunk_offset;
            let mut completed: Vec<NodeId> = Vec::new();
            let mut i = 0;
            while i < w.replicas.len() {
                let r = w.replicas[i];
                let outcome = retry.run(|attempt| {
                    if attempt > 0 {
                        Metrics::incr(&self.inner.metrics.dfs_retries);
                    }
                    // Prefix-heal sources: replicas that already took this
                    // write, then the not-yet-written original replicas
                    // (they hold exactly `base` committed bytes).
                    let sources: Vec<NodeId> = completed
                        .iter()
                        .chain(w.replicas.iter().filter(|n| !failed.contains(n)))
                        .copied()
                        .filter(|n| *n != r)
                        .collect();
                    self.write_replica(r, w.block, base, slice, &sources)
                });
                match outcome {
                    Ok(()) => {
                        completed.push(r);
                        i += 1;
                    }
                    Err(e) if e.is_retriable() => {
                        // Replica is gone for good (retries exhausted):
                        // exclude it and re-drive the write on a
                        // replacement node.
                        failed.push(r);
                        let live = self.live_nodes();
                        let mut exclude = w.replicas.clone();
                        exclude.extend_from_slice(&failed);
                        match self.inner.namenode.pick_replacement(&exclude, &live) {
                            Some(sub) => w.replicas[i] = sub,
                            None => {
                                undo.push((w.block, base, w.new_chunk, completed));
                                self.rollback_append(&undo);
                                return Err(Error::InsufficientReplicas {
                                    wanted: self.inner.config.replication,
                                    available: live
                                        .iter()
                                        .filter(|(id, _)| !failed.contains(id))
                                        .count(),
                                });
                            }
                        }
                    }
                    Err(e) => {
                        undo.push((w.block, base, w.new_chunk, completed));
                        self.rollback_append(&undo);
                        return Err(e);
                    }
                }
            }
            undo.push((w.block, base, w.new_chunk, completed));
        }
        self.inner.namenode.commit_append(&plan)?;
        Metrics::incr(&self.inner.metrics.dfs_appends);
        Metrics::add(
            &self.inner.metrics.seq_bytes_written,
            data.len() as u64 * self.inner.config.replication as u64,
        );
        Ok(plan.start_offset)
    }

    /// Drive one replica of one pipeline write to exactly
    /// `base + data.len()` bytes: undo any leftover torn tail, heal a
    /// missing committed prefix from `sources`, append, verify.
    fn write_replica(
        &self,
        r: NodeId,
        block: BlockId,
        base: u64,
        data: &[u8],
        sources: &[NodeId],
    ) -> Result<()> {
        let node = self.node(r);
        let cur = node.block_len(block)?;
        if cur > base {
            // Torn tail from an earlier failed attempt.
            node.truncate_block(block, base)?;
        } else if cur < base {
            // Fresh replacement (or stale replica): copy the committed
            // prefix from any peer that has it.
            let missing = (base - cur) as usize;
            let mut fill = None;
            for &s in sources {
                if let Ok(b) = self.node(s).read_block(block, cur, missing) {
                    fill = Some(b);
                    break;
                }
            }
            let fill = fill.ok_or_else(|| {
                Error::Unavailable(format!(
                    "no source to heal replica dn-{r} of blk_{block} to offset {base}"
                ))
            })?;
            node.append_block(block, &fill)?;
        }
        let end = node.append_block(block, data)?;
        let want = base + data.len() as u64;
        if end != want {
            let _ = node.truncate_block(block, base);
            return Err(Error::Unavailable(format!(
                "replica dn-{r} of blk_{block} diverged: length {end}, expected {want}"
            )));
        }
        Ok(())
    }

    /// Best-effort undo of partial pipeline writes (no replica may keep
    /// bytes the caller was told failed).
    fn rollback_append(&self, undo: &[UndoRecord]) {
        for (block, base, new_chunk, replicas) in undo {
            for &r in replicas {
                let node = self.node(r);
                if *new_chunk {
                    let _ = node.delete_block(*block);
                } else {
                    let _ = node.truncate_block(*block, *base);
                }
            }
        }
    }

    /// Positional read of `len` bytes at `offset`.
    ///
    /// Reads from the first live replica of each chunk, failing over to
    /// the others and retrying transient failures. A replica that fails
    /// its checksum is quarantined (its corrupt copy dropped so repair
    /// restores it) once a healthy replica has served the bytes. Counted
    /// as a random read (a "seek") in metrics.
    pub fn read(&self, name: &str, offset: u64, len: u64) -> Result<Bytes> {
        let meta = self.inner.namenode.stat(name)?;
        let size = meta.len();
        if offset + len > size {
            return Err(Error::OutOfBounds {
                file: name.to_string(),
                offset,
                len,
                size,
            });
        }
        self.throttle(len);
        Metrics::incr(&self.inner.metrics.dfs_reads);
        Metrics::incr(&self.inner.metrics.seeks);
        Metrics::add(&self.inner.metrics.rand_bytes_read, len);
        self.read_internal(name, &meta, offset, len)
    }

    fn read_internal(&self, name: &str, meta: &FileMeta, offset: u64, len: u64) -> Result<Bytes> {
        let mut out = Vec::with_capacity(len as usize);
        let mut chunk_start = 0u64;
        let mut remaining = len;
        let mut pos = offset;
        for (ci, c) in meta.chunks.iter().enumerate() {
            let chunk_end = chunk_start + c.len;
            if pos < chunk_end && remaining > 0 {
                let within = pos - chunk_start;
                let take = (c.len - within).min(remaining);
                let bytes = self.read_chunk(name, ci, c, within, take as usize)?;
                out.extend_from_slice(&bytes);
                pos += take;
                remaining -= take;
            }
            chunk_start = chunk_end;
            if remaining == 0 {
                break;
            }
        }
        if remaining > 0 {
            return Err(Error::OutOfBounds {
                file: name.to_string(),
                offset,
                len,
                size: meta.len(),
            });
        }
        Ok(Bytes::from(out))
    }

    /// Read one range of one chunk with replica failover, transient-error
    /// retry and corruption quarantine.
    fn read_chunk(
        &self,
        name: &str,
        chunk_index: usize,
        snapshot: &ChunkMeta,
        within: u64,
        take: usize,
    ) -> Result<Vec<u8>> {
        self.inner.config.retry.run(|attempt| {
            if attempt > 0 {
                Metrics::incr(&self.inner.metrics.dfs_retries);
            }
            // Re-stat each attempt: background repair may have moved
            // replicas since the caller's snapshot. Fall back to the
            // snapshot if the file was renamed or deleted under us.
            let fresh = self
                .inner
                .namenode
                .stat(name)
                .ok()
                .and_then(|m| m.chunks.get(chunk_index).cloned());
            let chunk = fresh.as_ref().unwrap_or(snapshot);
            let mut corrupt: Vec<NodeId> = Vec::new();
            let mut transient_err: Option<Error> = None;
            let mut last_err: Option<Error> = None;
            let mut got: Option<Vec<u8>> = None;
            for &r in &chunk.replicas {
                match self.node(r).read_block(chunk.block, within, take) {
                    Ok(bytes) => {
                        got = Some(bytes);
                        break;
                    }
                    Err(e) => {
                        if e.is_corruption() {
                            corrupt.push(r);
                        } else if e.is_retriable() && transient_err.is_none() {
                            transient_err = Some(e);
                            continue;
                        }
                        last_err = Some(e);
                    }
                }
            }
            match got {
                Some(bytes) => {
                    // A healthy replica served the range, so corrupt
                    // copies are safe to drop; re-replication restores
                    // them from the good copy.
                    for r in corrupt {
                        let _ = self.node(r).delete_block(chunk.block);
                        Metrics::incr(&self.inner.metrics.corrupt_reads_recovered);
                    }
                    Ok(bytes)
                }
                // Prefer the transient error so the retry policy keeps
                // trying (a down node may restart); corruption with no
                // healthy copy left is terminal.
                None => Err(transient_err.or(last_err).unwrap_or_else(|| {
                    Error::Unavailable(format!(
                        "no live replica for chunk {} of {name}",
                        snapshot.block
                    ))
                })),
            }
        })
    }

    /// Read the whole file (metrics count it as a sequential scan).
    pub fn read_all(&self, name: &str) -> Result<Bytes> {
        let meta = self.inner.namenode.stat(name)?;
        let len = meta.len();
        self.throttle(len);
        Metrics::incr(&self.inner.metrics.dfs_reads);
        Metrics::add(&self.inner.metrics.seq_bytes_read, len);
        if len == 0 {
            return Ok(Bytes::new());
        }
        self.read_internal(name, &meta, 0, len)
    }

    /// Open a buffered sequential reader over `name` (log replay, scans).
    pub fn open_reader(&self, name: &str) -> Result<DfsFileReader> {
        let meta = self.inner.namenode.stat(name)?;
        Ok(DfsFileReader {
            dfs: self.clone(),
            name: name.to_string(),
            meta,
            pos: 0,
            buf: Bytes::new(),
            buf_start: 0,
            read_ahead: 256 * 1024,
        })
    }

    /// Re-replicate under-replicated chunks (the name node's response to
    /// a lost data node in HDFS). For every chunk with fewer healthy
    /// replicas than the replication factor, the block is copied from a
    /// surviving replica onto live nodes that lack it and the metadata
    /// is updated. A replica counts as healthy only if its node is alive
    /// *and* its copy is complete — a torn tail from a crashed append is
    /// repaired, not trusted. Returns the number of replicas created.
    ///
    /// Chunks with **zero** healthy replicas are skipped (data loss —
    /// only a catastrophic simultaneous failure can cause it at
    /// replication ≥ 2; such chunks surface as read errors).
    pub fn rereplicate(&self) -> Result<u64> {
        let mut created = 0u64;
        for name in self.list("") {
            // Serialize with appends to this file so a repair copy and a
            // pipeline write cannot interleave into divergent replicas.
            let file_lock = self.file_lock(&name);
            let _guard = file_lock.lock();
            let Ok(meta) = self.stat(&name) else { continue };
            for (ci, chunk) in meta.chunks.iter().enumerate() {
                let holders: Vec<NodeId> = chunk
                    .replicas
                    .iter()
                    .copied()
                    .filter(|r| {
                        let n = self.node(*r);
                        n.is_alive() && n.block_len(chunk.block).is_ok_and(|l| l >= chunk.len)
                    })
                    .collect();
                if holders.is_empty() || holders.len() >= self.inner.config.replication {
                    continue;
                }
                // Checksum-verified source read, failing over between
                // holders (one of them may hold a corrupt copy).
                let mut data: Option<Vec<u8>> = None;
                for &h in &holders {
                    if let Ok(d) = self.node(h).read_block(chunk.block, 0, chunk.len as usize) {
                        data = Some(d);
                        break;
                    }
                }
                let Some(data) = data else { continue };
                let mut replicas = holders.clone();
                for (candidate, _) in &self.live_nodes() {
                    if replicas.len() >= self.inner.config.replication {
                        break;
                    }
                    if replicas.contains(candidate) {
                        continue;
                    }
                    let node = self.node(*candidate);
                    // The target may hold a stale or torn copy (it was a
                    // replica before it crashed): reset it first.
                    let copied: Result<()> = (|| {
                        if node.block_len(chunk.block)? > 0 {
                            node.truncate_block(chunk.block, 0)?;
                        }
                        node.append_block(chunk.block, &data)?;
                        Ok(())
                    })();
                    // A candidate that fails (injected fault, crash) is
                    // skipped, not fatal — the next sweep finishes the job.
                    if copied.is_ok() {
                        replicas.push(*candidate);
                        created += 1;
                        Metrics::incr(&self.inner.metrics.replicas_repaired);
                    }
                }
                if replicas != chunk.replicas {
                    self.inner.namenode.set_replicas(&name, ci, replicas)?;
                }
            }
        }
        Ok(created)
    }

    /// Number of chunks whose healthy replica count (alive **and**
    /// holding a complete copy) is below the replication factor
    /// (monitoring hook; drives the auto-repair thread).
    pub fn under_replicated_chunks(&self) -> u64 {
        let mut n = 0;
        for name in self.list("") {
            let Ok(meta) = self.stat(&name) else { continue };
            for chunk in &meta.chunks {
                let healthy = chunk
                    .replicas
                    .iter()
                    .filter(|r| {
                        let node = self.node(**r);
                        node.is_alive() && node.block_len(chunk.block).is_ok_and(|l| l >= chunk.len)
                    })
                    .count();
                if healthy < self.inner.config.replication {
                    n += 1;
                }
            }
        }
        n
    }

    /// Block-report sweep for one node: delete every local block that no
    /// file references (its file was deleted while the node was down).
    /// Returns the number of blocks reclaimed. Appends are excluded for
    /// the duration so an in-flight (not yet committed) block cannot be
    /// swept.
    pub fn sweep_orphans(&self, id: NodeId) -> Result<u64> {
        // Hold every file's append lock: a planned-but-uncommitted block
        // is only reachable from inside an append, and appends all hold
        // their file lock.
        let mut locks: Vec<Arc<Mutex<()>>> =
            self.inner.append_locks.lock().values().cloned().collect();
        // Total lock order (by address) so concurrent sweeps can't
        // deadlock against each other.
        locks.sort_by_key(|l| Arc::as_ptr(l) as usize);
        let _guards: Vec<_> = locks.iter().map(|l| l.lock()).collect();
        let referenced = self.inner.namenode.referenced_blocks();
        let node = self.node(id);
        let mut removed = 0u64;
        for block in node.list_blocks() {
            if !referenced.contains(&block) {
                node.delete_block(block)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Kill a data node (failure injection).
    pub fn kill_node(&self, id: NodeId) {
        self.node(id).kill();
    }

    /// Whether data node `id` is up (faults can kill nodes mid-append;
    /// supervisors poll this to decide who needs a restart).
    pub fn node_alive(&self, id: NodeId) -> bool {
        self.node(id).is_alive()
    }

    /// Restart a data node. The node files a block report on the way up:
    /// orphaned blocks (files deleted while it was down) are reclaimed.
    pub fn restart_node(&self, id: NodeId) {
        self.node(id).restart();
        let _ = self.sweep_orphans(id);
    }

    /// Block ids node `id` currently holds (its block report).
    pub fn node_blocks(&self, id: NodeId) -> Vec<BlockId> {
        self.node(id).list_blocks()
    }

    /// Number of live data nodes.
    pub fn live_node_count(&self) -> usize {
        self.live_nodes().len()
    }

    /// Per-node `(written, read)` byte counters, for placement tests.
    pub fn node_io(&self) -> Vec<(NodeId, u64, u64)> {
        self.inner
            .datanodes
            .iter()
            .map(|n| (n.id(), n.bytes_written(), n.bytes_read()))
            .collect()
    }
}

/// Buffered sequential reader over one DFS file.
///
/// Reads ahead in large chunks so that log replay and full scans issue few
/// DFS round-trips; accounting goes to the sequential counters.
pub struct DfsFileReader {
    dfs: Dfs,
    name: String,
    meta: FileMeta,
    pos: u64,
    buf: Bytes,
    buf_start: u64,
    read_ahead: u64,
}

impl DfsFileReader {
    /// Current read position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Total file length (as of open).
    pub fn len(&self) -> u64 {
        self.meta.len()
    }

    /// True when the file had no bytes at open time.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining bytes from the current position.
    pub fn remaining(&self) -> u64 {
        self.len().saturating_sub(self.pos)
    }

    /// Reposition the reader.
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos;
        // Invalidate the buffer if the new position is outside it.
        let buf_end = self.buf_start + self.buf.len() as u64;
        if pos < self.buf_start || pos >= buf_end {
            self.buf = Bytes::new();
            self.buf_start = pos;
        }
    }

    /// Read exactly `len` bytes, advancing the position.
    pub fn read_exact(&mut self, len: u64) -> Result<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        let buf_end = self.buf_start + self.buf.len() as u64;
        if self.pos >= self.buf_start && self.pos + len <= buf_end {
            let start = (self.pos - self.buf_start) as usize;
            let out = self.buf.slice(start..start + len as usize);
            self.pos += len;
            return Ok(out);
        }
        // Refill: read max(read_ahead, len) from pos.
        let want = self.read_ahead.max(len).min(self.remaining());
        if want < len {
            return Err(Error::OutOfBounds {
                file: self.name.clone(),
                offset: self.pos,
                len,
                size: self.len(),
            });
        }
        let metrics = self.dfs.metrics();
        self.dfs.throttle(want);
        Metrics::incr(&metrics.dfs_reads);
        Metrics::add(&metrics.seq_bytes_read, want);
        let bytes = self
            .dfs
            .read_internal(&self.name, &self.meta, self.pos, want)?;
        self.buf_start = self.pos;
        self.buf = bytes;
        let out = self.buf.slice(0..len as usize);
        self.pos += len;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StorageBackend;
    use crate::fault::{FaultSpec, OpClass, ScheduledFault};
    use logbase_common::RetryPolicy;

    fn small_dfs() -> Dfs {
        Dfs::new(DfsConfig::in_memory(3, 3).with_chunk_size(16))
    }

    #[test]
    fn append_read_round_trip() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        assert_eq!(dfs.append("f", b"0123456789").unwrap(), 0);
        assert_eq!(dfs.append("f", b"abcdefghij").unwrap(), 10);
        assert_eq!(dfs.len("f").unwrap(), 20);
        // Spans the 16-byte chunk boundary.
        assert_eq!(&dfs.read("f", 12, 6).unwrap()[..], b"cdefgh");
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"0123456789abcdefghij");
    }

    #[test]
    fn rate_limited_handle_throttles_only_itself() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", &[7u8; 4096]).unwrap();
        // 16 KB/s with a 1 KB burst: the second 1 KB read must wait
        // (~60 ms — slow enough that scheduling noise cannot refill the
        // bucket between the two reads).
        let slow = dfs.rate_limited(std::sync::Arc::new(logbase_common::RateLimiter::new(
            16 * 1024,
            1024,
        )));
        slow.read("f", 0, 1024).unwrap();
        slow.read("f", 1024, 1024).unwrap();
        assert!(
            Metrics::get(&dfs.metrics().compaction_throttle_waits) > 0,
            "drained bucket must register a throttle wait"
        );
        // The foreground handle shares the cluster but never waits.
        let before = Metrics::get(&dfs.metrics().compaction_throttle_waits);
        dfs.read_all("f").unwrap();
        assert_eq!(
            Metrics::get(&dfs.metrics().compaction_throttle_waits),
            before
        );
    }

    #[test]
    fn replicas_hold_identical_data() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"hello world, this spans chunks").unwrap();
        let meta = dfs.stat("f").unwrap();
        assert!(meta.chunks.len() >= 2);
        for c in &meta.chunks {
            assert_eq!(c.replicas.len(), 3);
        }
        // Every node received every byte (3 nodes, replication 3).
        let io = dfs.node_io();
        let total = dfs.len("f").unwrap();
        for (_, written, _) in io {
            assert_eq!(written, total);
        }
    }

    #[test]
    fn read_survives_single_node_failure() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"important bytes").unwrap();
        dfs.kill_node(0);
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"important bytes");
        assert_eq!(&dfs.read("f", 10, 5).unwrap()[..], b"bytes");
    }

    #[test]
    fn read_survives_two_node_failures_with_replication_three() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"still there").unwrap();
        dfs.kill_node(0);
        dfs.kill_node(1);
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"still there");
    }

    #[test]
    fn append_fails_without_enough_live_nodes() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.kill_node(2);
        let err = dfs.append("f", b"x").unwrap_err();
        assert!(matches!(err, Error::InsufficientReplicas { .. }));
        dfs.restart_node(2);
        dfs.append("f", b"x").unwrap();
    }

    #[test]
    fn out_of_bounds_read_is_rejected() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"12345").unwrap();
        assert!(matches!(
            dfs.read("f", 3, 10),
            Err(Error::OutOfBounds { .. })
        ));
    }

    #[test]
    fn sequential_reader_walks_whole_file() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(8));
        dfs.create("f").unwrap();
        let payload: Vec<u8> = (0..100u8).collect();
        dfs.append("f", &payload).unwrap();
        let mut r = dfs.open_reader("f").unwrap();
        let mut got = Vec::new();
        while r.remaining() > 0 {
            let take = r.remaining().min(7);
            got.extend_from_slice(&r.read_exact(take).unwrap());
        }
        assert_eq!(got, payload);
        assert!(r.read_exact(1).is_err());
    }

    #[test]
    fn sequential_reader_seek() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"0123456789abcdefghij").unwrap();
        let mut r = dfs.open_reader("f").unwrap();
        r.seek(10);
        assert_eq!(&r.read_exact(5).unwrap()[..], b"abcde");
        r.seek(0);
        assert_eq!(&r.read_exact(3).unwrap()[..], b"012");
    }

    #[test]
    fn delete_reclaims_blocks() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"some data here").unwrap();
        dfs.delete("f").unwrap();
        assert!(!dfs.exists("f"));
        assert!(matches!(dfs.len("f"), Err(Error::FileNotFound(_))));
    }

    #[test]
    fn rename_moves_metadata() {
        let dfs = small_dfs();
        dfs.create("tmp/seg").unwrap();
        dfs.append("tmp/seg", b"sorted").unwrap();
        dfs.rename("tmp/seg", "log/seg").unwrap();
        assert_eq!(&dfs.read_all("log/seg").unwrap()[..], b"sorted");
    }

    #[test]
    fn sealed_file_rejects_append_but_reads_fine() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"data").unwrap();
        dfs.seal("f").unwrap();
        assert!(dfs.append("f", b"more").is_err());
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"data");
    }

    #[test]
    fn disk_backend_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let dfs = Dfs::new(DfsConfig::on_disk(dir.path(), 3, 2).with_chunk_size(32));
        dfs.create("wal/seg-1").unwrap();
        let payload: Vec<u8> = (0..=255u8).collect();
        dfs.append("wal/seg-1", &payload).unwrap();
        assert_eq!(&dfs.read_all("wal/seg-1").unwrap()[..], &payload[..]);
        assert_eq!(
            &dfs.read("wal/seg-1", 100, 28).unwrap()[..],
            &payload[100..128]
        );
    }

    #[test]
    fn concurrent_appends_interleave_without_loss() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(64));
        dfs.create("f").unwrap();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let dfs = dfs.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        dfs.append("f", &[t; 10]).unwrap();
                    }
                });
            }
        });
        let all = dfs.read_all("f").unwrap();
        assert_eq!(all.len(), 4 * 50 * 10);
        // Each 10-byte record is homogeneous: appends never interleave
        // within a record.
        for rec in all.chunks(10) {
            assert!(rec.iter().all(|b| *b == rec[0]));
        }
    }

    #[test]
    fn rereplication_restores_replica_count() {
        // 4 nodes, replication 3: losing one node leaves some chunks
        // under-replicated; rereplicate() heals them onto the 4th node.
        let dfs = Dfs::new(DfsConfig::in_memory(4, 3).with_chunk_size(16));
        dfs.create("f").unwrap();
        dfs.append("f", &[7u8; 100]).unwrap();
        assert_eq!(dfs.under_replicated_chunks(), 0);
        dfs.kill_node(0);
        // Memory nodes lose their blocks permanently on restart; treat
        // node 0 as gone.
        let under = dfs.under_replicated_chunks();
        assert!(under > 0, "killing a node should under-replicate chunks");
        let created = dfs.rereplicate().unwrap();
        assert_eq!(created, under);
        assert_eq!(dfs.under_replicated_chunks(), 0);
        // Data still correct, and now survives losing another original
        // replica too.
        dfs.kill_node(1);
        assert_eq!(&dfs.read_all("f").unwrap()[..], &[7u8; 100][..]);
    }

    #[test]
    fn rereplication_skips_chunks_with_no_live_replica() {
        let dfs = Dfs::new(
            DfsConfig::in_memory(3, 2)
                .with_chunk_size(1024)
                .with_retry(RetryPolicy::no_delay(2)),
        );
        dfs.create("f").unwrap();
        dfs.append("f", b"data").unwrap();
        let meta = dfs.stat("f").unwrap();
        for r in &meta.chunks[0].replicas {
            dfs.kill_node(*r);
        }
        // Both replicas gone: nothing to heal from.
        assert_eq!(dfs.rereplicate().unwrap(), 0);
        assert!(dfs.read_all("f").is_err());
    }

    #[test]
    fn metrics_count_replicated_bytes() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", &[0u8; 100]).unwrap();
        let snap = dfs.metrics().snapshot();
        assert_eq!(snap.dfs_appends, 1);
        assert_eq!(snap.seq_bytes_written, 300); // 100 bytes × 3 replicas
    }

    #[test]
    fn memory_backend_restart_loses_replica_but_file_survives() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"abc").unwrap();
        dfs.kill_node(1);
        dfs.restart_node(1); // memory node comes back empty
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"abc");
    }

    #[test]
    fn backend_enum_is_exposed() {
        let dfs = small_dfs();
        assert!(matches!(dfs.config().backend, StorageBackend::Memory));
    }

    #[test]
    fn append_replaces_crashed_replica_mid_pipeline() {
        // 5 nodes, replication 3: node 1 crashes on its first append.
        // The pipeline must exclude it, bring in a replacement and ack a
        // fully-replicated write.
        let dfs = Dfs::new(
            DfsConfig::in_memory(5, 3)
                .with_chunk_size(64)
                .with_retry(RetryPolicy::no_delay(2)),
        );
        dfs.fault_injector().set_spec(
            1,
            OpClass::Append,
            FaultSpec::default().with_scheduled(1, ScheduledFault::Crash),
        );
        dfs.create("f").unwrap();
        dfs.append("f", &[9u8; 40]).unwrap();
        let meta = dfs.stat("f").unwrap();
        for c in &meta.chunks {
            assert_eq!(c.replicas.len(), 3);
            assert!(!c.replicas.contains(&1), "crashed node still a replica");
            for &r in &c.replicas {
                assert_eq!(dfs.node(r).block_len(c.block).unwrap(), c.len);
            }
        }
        assert_eq!(dfs.under_replicated_chunks(), 0);
        assert_eq!(&dfs.read_all("f").unwrap()[..], &[9u8; 40][..]);
    }

    #[test]
    fn torn_append_is_healed_by_replacement() {
        // Node 0 tears its copy (persists 5 of 40 bytes) and dies. The
        // acknowledged write must still land complete on 3 replicas, and
        // the torn copy must never be served.
        let dfs = Dfs::new(
            DfsConfig::in_memory(5, 3)
                .with_chunk_size(1024)
                .with_retry(RetryPolicy::no_delay(2)),
        );
        dfs.create("f").unwrap();
        dfs.append("f", &[1u8; 20]).unwrap(); // committed base data
        dfs.fault_injector().set_spec(
            0,
            OpClass::Append,
            FaultSpec::default().with_scheduled(1, ScheduledFault::TornAppend { keep: 5 }),
        );
        dfs.append("f", &[2u8; 40]).unwrap();
        let meta = dfs.stat("f").unwrap();
        let c = &meta.chunks[0];
        assert_eq!(c.len, 60);
        for &r in &c.replicas {
            // Only count replicas that took both writes; node 0 may or
            // may not be in the set depending on placement, but if it is,
            // it must have been replaced (it died on the torn write).
            assert!(dfs.node(r).is_alive());
            assert_eq!(dfs.node(r).block_len(c.block).unwrap(), 60);
        }
        let all = dfs.read_all("f").unwrap();
        assert_eq!(&all[..20], &[1u8; 20][..]);
        assert_eq!(&all[20..], &[2u8; 40][..]);
    }

    #[test]
    fn transient_append_faults_are_retried() {
        let dfs = Dfs::new(
            DfsConfig::in_memory(3, 3)
                .with_chunk_size(256)
                .with_fault_seed(7)
                .with_retry(RetryPolicy::no_delay(6)),
        );
        // Every node flakes 30% of the time on append; retries must make
        // every write land anyway (same node retried until it takes it).
        for n in 0..3 {
            dfs.fault_injector()
                .set_spec(n, OpClass::Append, FaultSpec::transient(0.3));
        }
        dfs.create("f").unwrap();
        let mut expect = Vec::new();
        for i in 0..30u8 {
            dfs.append("f", &[i; 10]).unwrap();
            expect.extend_from_slice(&[i; 10]);
        }
        dfs.fault_injector().clear();
        assert_eq!(&dfs.read_all("f").unwrap()[..], &expect[..]);
        assert!(dfs.metrics().snapshot().dfs_retries > 0);
    }

    #[test]
    fn corrupt_replica_is_quarantined_and_repaired() {
        let dfs = Dfs::new(
            DfsConfig::in_memory(3, 2)
                .with_chunk_size(1024)
                .with_retry(RetryPolicy::no_delay(3)),
        );
        dfs.create("f").unwrap();
        dfs.append("f", &[5u8; 600]).unwrap();
        let c = dfs.stat("f").unwrap().chunks[0].clone();
        let first = c.replicas[0];
        // Flip a bit in the first replica on its next read.
        dfs.fault_injector().set_spec(
            first,
            OpClass::Read,
            FaultSpec::default().with_scheduled(1, ScheduledFault::BitFlip),
        );
        // The read fails over to the healthy replica and quarantines the
        // corrupt copy.
        assert_eq!(&dfs.read("f", 0, 600).unwrap()[..], &[5u8; 600][..]);
        let snap = dfs.metrics().snapshot();
        assert!(snap.corrupt_reads_recovered >= 1);
        assert!(!dfs.node(first).has_block(c.block), "corrupt copy kept");
        assert_eq!(dfs.under_replicated_chunks(), 1);
        // Repair restores full replication from the healthy copy.
        dfs.fault_injector().clear();
        assert_eq!(dfs.rereplicate().unwrap(), 1);
        assert_eq!(dfs.under_replicated_chunks(), 0);
        assert_eq!(&dfs.read("f", 0, 600).unwrap()[..], &[5u8; 600][..]);
    }

    #[test]
    fn orphan_sweep_reclaims_blocks_deleted_while_down() {
        let dir = tempfile::tempdir().unwrap();
        let dfs = Dfs::new(DfsConfig::on_disk(dir.path(), 3, 3).with_chunk_size(32));
        dfs.create("doomed").unwrap();
        dfs.create("kept").unwrap();
        dfs.append("doomed", &[1u8; 100]).unwrap();
        dfs.append("kept", &[2u8; 50]).unwrap();
        let doomed_blocks: Vec<BlockId> = dfs
            .stat("doomed")
            .unwrap()
            .chunks
            .iter()
            .map(|c| c.block)
            .collect();
        dfs.kill_node(0);
        // Node 0 misses the delete: its replicas of "doomed" leak.
        dfs.delete("doomed").unwrap();
        for b in &doomed_blocks {
            assert!(
                dfs.node_blocks(0).contains(b),
                "dead node should still hold the orphaned block on disk"
            );
        }
        // Restart files a block report; the sweep reclaims the orphans
        // but keeps blocks of live files.
        dfs.restart_node(0);
        let after = dfs.node_blocks(0);
        for b in &doomed_blocks {
            assert!(!after.contains(b), "orphan {b} survived the sweep");
        }
        let kept_blocks: Vec<BlockId> = dfs
            .stat("kept")
            .unwrap()
            .chunks
            .iter()
            .map(|c| c.block)
            .collect();
        for b in &kept_blocks {
            assert!(after.contains(b), "live block {b} was swept");
        }
        assert_eq!(&dfs.read_all("kept").unwrap()[..], &[2u8; 50][..]);
    }

    #[test]
    fn auto_repair_heals_lost_replicas_in_background() {
        let dfs = Dfs::new(
            DfsConfig::in_memory(4, 3)
                .with_chunk_size(64)
                .with_auto_repair(std::time::Duration::from_millis(5)),
        );
        dfs.create("f").unwrap();
        dfs.append("f", &[3u8; 200]).unwrap();
        dfs.kill_node(0);
        assert!(dfs.under_replicated_chunks() > 0);
        // The background thread must converge without any manual call.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while dfs.under_replicated_chunks() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto-repair did not converge"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = dfs.metrics().snapshot();
        assert!(snap.repairs_triggered >= 1);
        assert!(snap.replicas_repaired >= 1);
        dfs.kill_node(1);
        assert_eq!(&dfs.read_all("f").unwrap()[..], &[3u8; 200][..]);
    }

    #[test]
    fn failed_append_rolls_back_partial_replicas() {
        // Replication 3 on exactly 3 nodes: when one node dies mid-append
        // there is no replacement, so the append must fail AND leave no
        // partial bytes behind (the next append must not diverge).
        let dfs = Dfs::new(
            DfsConfig::in_memory(3, 3)
                .with_chunk_size(1024)
                .with_retry(RetryPolicy::no_delay(2)),
        );
        dfs.create("f").unwrap();
        dfs.append("f", &[1u8; 10]).unwrap();
        dfs.fault_injector().set_spec(
            2,
            OpClass::Append,
            FaultSpec::default().with_scheduled(1, ScheduledFault::Crash),
        );
        let err = dfs.append("f", &[2u8; 10]).unwrap_err();
        assert!(matches!(err, Error::InsufficientReplicas { .. }));
        assert_eq!(dfs.len("f").unwrap(), 10, "failed append changed length");
        let c = dfs.stat("f").unwrap().chunks[0].clone();
        for &r in &c.replicas {
            if dfs.node(r).is_alive() {
                assert_eq!(
                    dfs.node(r).block_len(c.block).unwrap(),
                    10,
                    "partial write on dn-{r} survived rollback"
                );
            }
        }
        // Cluster heals after the dead node returns.
        dfs.fault_injector().clear();
        dfs.restart_node(2);
        dfs.append("f", &[3u8; 10]).unwrap();
        let all = dfs.read_all("f").unwrap();
        assert_eq!(&all[..10], &[1u8; 10][..]);
        assert_eq!(&all[10..], &[3u8; 10][..]);
    }
}
