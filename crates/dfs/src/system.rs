//! The DFS facade: replicated append/read over data nodes + name node.

use crate::config::DfsConfig;
use crate::datanode::{DataNode, NodeId};
use crate::namenode::{FileMeta, NameNode, PlacementPolicy};
use bytes::Bytes;
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::{Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// A simulated DFS cluster.
///
/// Cloning the handle is cheap; all clones address the same cluster.
/// Appends are *synchronous*: the call returns only after every replica of
/// every touched chunk has the bytes, matching HDFS pipeline semantics the
/// paper relies on for Guarantee 1 (§3.4).
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

struct DfsInner {
    config: DfsConfig,
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    /// Serializes appends per file (HDFS: single writer per file).
    append_locks: Mutex<std::collections::HashMap<String, Arc<Mutex<()>>>>,
    metrics: MetricsHandle,
}

impl Dfs {
    /// Bring up a cluster per `config`.
    pub fn new(config: DfsConfig) -> Self {
        Self::with_metrics(config, Metrics::new_handle())
    }

    /// Bring up a cluster that reports into an existing metrics sink.
    pub fn with_metrics(config: DfsConfig, metrics: MetricsHandle) -> Self {
        assert!(config.data_nodes > 0, "DFS needs at least one data node");
        assert!(
            config.replication >= 1 && config.replication <= config.data_nodes,
            "replication factor must be within [1, data_nodes]"
        );
        let policy = if config.racks > 1 {
            PlacementPolicy::RackAware
        } else {
            PlacementPolicy::Flat
        };
        let datanodes = (0..config.data_nodes as NodeId)
            .map(|id| {
                DataNode::new(id, id % config.racks as u32, &config.backend)
                    .expect("data node directory creation failed")
            })
            .collect();
        Dfs {
            inner: Arc::new(DfsInner {
                namenode: NameNode::new(policy),
                datanodes,
                append_locks: Mutex::new(std::collections::HashMap::new()),
                metrics,
                config,
            }),
        }
    }

    /// The cluster's metrics sink.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.inner.metrics
    }

    /// The configuration the cluster was created with.
    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    fn live_nodes(&self) -> Vec<(NodeId, u32)> {
        self.inner
            .datanodes
            .iter()
            .filter(|n| n.is_alive())
            .map(|n| (n.id(), n.rack()))
            .collect()
    }

    fn node(&self, id: NodeId) -> &DataNode {
        &self.inner.datanodes[id as usize]
    }

    /// Create an empty file.
    pub fn create(&self, name: &str) -> Result<()> {
        self.inner.namenode.create(name)
    }

    /// True when `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.namenode.exists(name)
    }

    /// Current length of `name`.
    pub fn len(&self, name: &str) -> Result<u64> {
        Ok(self.inner.namenode.stat(name)?.len())
    }

    /// True when `name` exists and holds no bytes.
    pub fn is_empty(&self, name: &str) -> Result<bool> {
        Ok(self.len(name)? == 0)
    }

    /// Metadata snapshot (chunk layout, replica placement).
    pub fn stat(&self, name: &str) -> Result<FileMeta> {
        self.inner.namenode.stat(name)
    }

    /// List files with prefix, lexicographically.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.namenode.list(prefix)
    }

    /// Seal a file against further appends (log segment rotation).
    pub fn seal(&self, name: &str) -> Result<()> {
        self.inner.namenode.seal(name)
    }

    /// Rename a file (compaction installs sorted segments this way).
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.namenode.rename(from, to)
    }

    /// Delete a file and reclaim its chunks on all live replicas.
    pub fn delete(&self, name: &str) -> Result<()> {
        let chunks = self.inner.namenode.delete(name)?;
        for c in chunks {
            for r in c.replicas {
                // Dead replicas are skipped; their blocks are orphaned,
                // exactly as in HDFS until the next block report.
                let _ = self.node(r).delete_block(c.block);
            }
        }
        Ok(())
    }

    /// Append `data` to `name`, returning the offset at which it landed.
    ///
    /// The write is replicated synchronously: every replica of every
    /// touched chunk acknowledges before the call returns.
    pub fn append(&self, name: &str, data: &[u8]) -> Result<u64> {
        let file_lock = {
            let mut locks = self.inner.append_locks.lock();
            Arc::clone(locks.entry(name.to_string()).or_default())
        };
        let _guard = file_lock.lock();

        let plan = self.inner.namenode.plan_append(
            name,
            data.len() as u64,
            self.inner.config.chunk_size,
            self.inner.config.replication,
            &self.live_nodes(),
        )?;
        for w in &plan.writes {
            let slice = &data[w.data_range.0 as usize..w.data_range.1 as usize];
            for &r in &w.replicas {
                self.node(r).append_block(w.block, slice)?;
            }
        }
        self.inner.namenode.commit_append(&plan)?;
        Metrics::incr(&self.inner.metrics.dfs_appends);
        Metrics::add(
            &self.inner.metrics.seq_bytes_written,
            data.len() as u64 * self.inner.config.replication as u64,
        );
        Ok(plan.start_offset)
    }

    /// Positional read of `len` bytes at `offset`.
    ///
    /// Reads from the first live replica of each chunk, failing over to
    /// the others. Counted as a random read (a "seek") in metrics.
    pub fn read(&self, name: &str, offset: u64, len: u64) -> Result<Bytes> {
        let meta = self.inner.namenode.stat(name)?;
        let size = meta.len();
        if offset + len > size {
            return Err(Error::OutOfBounds {
                file: name.to_string(),
                offset,
                len,
                size,
            });
        }
        Metrics::incr(&self.inner.metrics.dfs_reads);
        Metrics::incr(&self.inner.metrics.seeks);
        Metrics::add(&self.inner.metrics.rand_bytes_read, len);
        self.read_internal(name, &meta, offset, len)
    }

    fn read_internal(&self, name: &str, meta: &FileMeta, offset: u64, len: u64) -> Result<Bytes> {
        let mut out = Vec::with_capacity(len as usize);
        let mut chunk_start = 0u64;
        let mut remaining = len;
        let mut pos = offset;
        for c in &meta.chunks {
            let chunk_end = chunk_start + c.len;
            if pos < chunk_end && remaining > 0 {
                let within = pos - chunk_start;
                let take = (c.len - within).min(remaining);
                let mut got = None;
                let mut last_err = Error::Unavailable(format!(
                    "no live replica for chunk {} of {name}",
                    c.block
                ));
                for &r in &c.replicas {
                    match self.node(r).read_block(c.block, within, take as usize) {
                        Ok(bytes) => {
                            got = Some(bytes);
                            break;
                        }
                        Err(e) => last_err = e,
                    }
                }
                match got {
                    Some(bytes) => out.extend_from_slice(&bytes),
                    None => return Err(last_err),
                }
                pos += take;
                remaining -= take;
            }
            chunk_start = chunk_end;
            if remaining == 0 {
                break;
            }
        }
        if remaining > 0 {
            return Err(Error::OutOfBounds {
                file: name.to_string(),
                offset,
                len,
                size: meta.len(),
            });
        }
        Ok(Bytes::from(out))
    }

    /// Read the whole file (metrics count it as a sequential scan).
    pub fn read_all(&self, name: &str) -> Result<Bytes> {
        let meta = self.inner.namenode.stat(name)?;
        let len = meta.len();
        Metrics::incr(&self.inner.metrics.dfs_reads);
        Metrics::add(&self.inner.metrics.seq_bytes_read, len);
        if len == 0 {
            return Ok(Bytes::new());
        }
        self.read_internal(name, &meta, 0, len)
    }

    /// Open a buffered sequential reader over `name` (log replay, scans).
    pub fn open_reader(&self, name: &str) -> Result<DfsFileReader> {
        let meta = self.inner.namenode.stat(name)?;
        Ok(DfsFileReader {
            dfs: self.clone(),
            name: name.to_string(),
            meta,
            pos: 0,
            buf: Bytes::new(),
            buf_start: 0,
            read_ahead: 256 * 1024,
        })
    }

    /// Re-replicate under-replicated chunks (the name node's response to
    /// a lost data node in HDFS). For every chunk with fewer live
    /// replicas than the replication factor, the block is copied from a
    /// surviving replica onto live nodes that lack it and the metadata
    /// is updated. Returns the number of new replicas created.
    ///
    /// Chunks with **zero** live replicas are skipped (data loss — only
    /// a catastrophic simultaneous failure can cause it at replication
    /// ≥ 2; such chunks surface as read errors).
    pub fn rereplicate(&self) -> Result<u64> {
        let live = self.live_nodes();
        let mut created = 0u64;
        for name in self.list("") {
            let Ok(meta) = self.stat(&name) else { continue };
            for (ci, chunk) in meta.chunks.iter().enumerate() {
                let holders: Vec<NodeId> = chunk
                    .replicas
                    .iter()
                    .copied()
                    .filter(|r| {
                        let n = self.node(*r);
                        n.is_alive() && n.has_block(chunk.block)
                    })
                    .collect();
                if holders.is_empty() || holders.len() >= self.inner.config.replication {
                    continue;
                }
                let source = self.node(holders[0]);
                let data = source.read_block(chunk.block, 0, chunk.len as usize)?;
                let mut replicas = holders.clone();
                for (candidate, _) in &live {
                    if replicas.len() >= self.inner.config.replication {
                        break;
                    }
                    if replicas.contains(candidate) {
                        continue;
                    }
                    self.node(*candidate).append_block(chunk.block, &data)?;
                    replicas.push(*candidate);
                    created += 1;
                }
                self.inner.namenode.set_replicas(&name, ci, replicas)?;
            }
        }
        Ok(created)
    }

    /// Number of chunks whose live replica count is below the
    /// replication factor (monitoring hook).
    pub fn under_replicated_chunks(&self) -> u64 {
        let mut n = 0;
        for name in self.list("") {
            let Ok(meta) = self.stat(&name) else { continue };
            for chunk in &meta.chunks {
                let live = chunk
                    .replicas
                    .iter()
                    .filter(|r| {
                        let node = self.node(**r);
                        node.is_alive() && node.has_block(chunk.block)
                    })
                    .count();
                if live < self.inner.config.replication {
                    n += 1;
                }
            }
        }
        n
    }

    /// Kill a data node (failure injection).
    pub fn kill_node(&self, id: NodeId) {
        self.node(id).kill();
    }

    /// Restart a data node.
    pub fn restart_node(&self, id: NodeId) {
        self.node(id).restart();
    }

    /// Number of live data nodes.
    pub fn live_node_count(&self) -> usize {
        self.live_nodes().len()
    }

    /// Per-node `(written, read)` byte counters, for placement tests.
    pub fn node_io(&self) -> Vec<(NodeId, u64, u64)> {
        self.inner
            .datanodes
            .iter()
            .map(|n| (n.id(), n.bytes_written(), n.bytes_read()))
            .collect()
    }
}

/// Buffered sequential reader over one DFS file.
///
/// Reads ahead in large chunks so that log replay and full scans issue few
/// DFS round-trips; accounting goes to the sequential counters.
pub struct DfsFileReader {
    dfs: Dfs,
    name: String,
    meta: FileMeta,
    pos: u64,
    buf: Bytes,
    buf_start: u64,
    read_ahead: u64,
}

impl DfsFileReader {
    /// Current read position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Total file length (as of open).
    pub fn len(&self) -> u64 {
        self.meta.len()
    }

    /// True when the file had no bytes at open time.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining bytes from the current position.
    pub fn remaining(&self) -> u64 {
        self.len().saturating_sub(self.pos)
    }

    /// Reposition the reader.
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos;
        // Invalidate the buffer if the new position is outside it.
        let buf_end = self.buf_start + self.buf.len() as u64;
        if pos < self.buf_start || pos >= buf_end {
            self.buf = Bytes::new();
            self.buf_start = pos;
        }
    }

    /// Read exactly `len` bytes, advancing the position.
    pub fn read_exact(&mut self, len: u64) -> Result<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        let buf_end = self.buf_start + self.buf.len() as u64;
        if self.pos >= self.buf_start && self.pos + len <= buf_end {
            let start = (self.pos - self.buf_start) as usize;
            let out = self.buf.slice(start..start + len as usize);
            self.pos += len;
            return Ok(out);
        }
        // Refill: read max(read_ahead, len) from pos.
        let want = self.read_ahead.max(len).min(self.remaining());
        if want < len {
            return Err(Error::OutOfBounds {
                file: self.name.clone(),
                offset: self.pos,
                len,
                size: self.len(),
            });
        }
        let metrics = self.dfs.metrics();
        Metrics::incr(&metrics.dfs_reads);
        Metrics::add(&metrics.seq_bytes_read, want);
        let bytes = self.dfs.read_internal(&self.name, &self.meta, self.pos, want)?;
        self.buf_start = self.pos;
        self.buf = bytes;
        let out = self.buf.slice(0..len as usize);
        self.pos += len;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StorageBackend;

    fn small_dfs() -> Dfs {
        Dfs::new(DfsConfig::in_memory(3, 3).with_chunk_size(16))
    }

    #[test]
    fn append_read_round_trip() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        assert_eq!(dfs.append("f", b"0123456789").unwrap(), 0);
        assert_eq!(dfs.append("f", b"abcdefghij").unwrap(), 10);
        assert_eq!(dfs.len("f").unwrap(), 20);
        // Spans the 16-byte chunk boundary.
        assert_eq!(&dfs.read("f", 12, 6).unwrap()[..], b"cdefgh");
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"0123456789abcdefghij");
    }

    #[test]
    fn replicas_hold_identical_data() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"hello world, this spans chunks").unwrap();
        let meta = dfs.stat("f").unwrap();
        assert!(meta.chunks.len() >= 2);
        for c in &meta.chunks {
            assert_eq!(c.replicas.len(), 3);
        }
        // Every node received every byte (3 nodes, replication 3).
        let io = dfs.node_io();
        let total = dfs.len("f").unwrap();
        for (_, written, _) in io {
            assert_eq!(written, total);
        }
    }

    #[test]
    fn read_survives_single_node_failure() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"important bytes").unwrap();
        dfs.kill_node(0);
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"important bytes");
        assert_eq!(&dfs.read("f", 10, 5).unwrap()[..], b"bytes");
    }

    #[test]
    fn read_survives_two_node_failures_with_replication_three() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"still there").unwrap();
        dfs.kill_node(0);
        dfs.kill_node(1);
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"still there");
    }

    #[test]
    fn append_fails_without_enough_live_nodes() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.kill_node(2);
        let err = dfs.append("f", b"x").unwrap_err();
        assert!(matches!(err, Error::InsufficientReplicas { .. }));
        dfs.restart_node(2);
        dfs.append("f", b"x").unwrap();
    }

    #[test]
    fn out_of_bounds_read_is_rejected() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"12345").unwrap();
        assert!(matches!(
            dfs.read("f", 3, 10),
            Err(Error::OutOfBounds { .. })
        ));
    }

    #[test]
    fn sequential_reader_walks_whole_file() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(8));
        dfs.create("f").unwrap();
        let payload: Vec<u8> = (0..100u8).collect();
        dfs.append("f", &payload).unwrap();
        let mut r = dfs.open_reader("f").unwrap();
        let mut got = Vec::new();
        while r.remaining() > 0 {
            let take = r.remaining().min(7);
            got.extend_from_slice(&r.read_exact(take).unwrap());
        }
        assert_eq!(got, payload);
        assert!(r.read_exact(1).is_err());
    }

    #[test]
    fn sequential_reader_seek() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"0123456789abcdefghij").unwrap();
        let mut r = dfs.open_reader("f").unwrap();
        r.seek(10);
        assert_eq!(&r.read_exact(5).unwrap()[..], b"abcde");
        r.seek(0);
        assert_eq!(&r.read_exact(3).unwrap()[..], b"012");
    }

    #[test]
    fn delete_reclaims_blocks() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"some data here").unwrap();
        dfs.delete("f").unwrap();
        assert!(!dfs.exists("f"));
        assert!(matches!(dfs.len("f"), Err(Error::FileNotFound(_))));
    }

    #[test]
    fn rename_moves_metadata() {
        let dfs = small_dfs();
        dfs.create("tmp/seg").unwrap();
        dfs.append("tmp/seg", b"sorted").unwrap();
        dfs.rename("tmp/seg", "log/seg").unwrap();
        assert_eq!(&dfs.read_all("log/seg").unwrap()[..], b"sorted");
    }

    #[test]
    fn sealed_file_rejects_append_but_reads_fine() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"data").unwrap();
        dfs.seal("f").unwrap();
        assert!(dfs.append("f", b"more").is_err());
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"data");
    }

    #[test]
    fn disk_backend_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let dfs = Dfs::new(DfsConfig::on_disk(dir.path(), 3, 2).with_chunk_size(32));
        dfs.create("wal/seg-1").unwrap();
        let payload: Vec<u8> = (0..=255u8).collect();
        dfs.append("wal/seg-1", &payload).unwrap();
        assert_eq!(&dfs.read_all("wal/seg-1").unwrap()[..], &payload[..]);
        assert_eq!(&dfs.read("wal/seg-1", 100, 28).unwrap()[..], &payload[100..128]);
    }

    #[test]
    fn concurrent_appends_interleave_without_loss() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(64));
        dfs.create("f").unwrap();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let dfs = dfs.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        dfs.append("f", &[t; 10]).unwrap();
                    }
                });
            }
        });
        let all = dfs.read_all("f").unwrap();
        assert_eq!(all.len(), 4 * 50 * 10);
        // Each 10-byte record is homogeneous: appends never interleave
        // within a record.
        for rec in all.chunks(10) {
            assert!(rec.iter().all(|b| *b == rec[0]));
        }
    }

    #[test]
    fn rereplication_restores_replica_count() {
        // 4 nodes, replication 3: losing one node leaves some chunks
        // under-replicated; rereplicate() heals them onto the 4th node.
        let dfs = Dfs::new(DfsConfig::in_memory(4, 3).with_chunk_size(16));
        dfs.create("f").unwrap();
        dfs.append("f", &[7u8; 100]).unwrap();
        assert_eq!(dfs.under_replicated_chunks(), 0);
        dfs.kill_node(0);
        // Memory nodes lose their blocks permanently on restart; treat
        // node 0 as gone.
        let under = dfs.under_replicated_chunks();
        assert!(under > 0, "killing a node should under-replicate chunks");
        let created = dfs.rereplicate().unwrap();
        assert_eq!(created, under);
        assert_eq!(dfs.under_replicated_chunks(), 0);
        // Data still correct, and now survives losing another original
        // replica too.
        dfs.kill_node(1);
        assert_eq!(&dfs.read_all("f").unwrap()[..], &[7u8; 100][..]);
    }

    #[test]
    fn rereplication_skips_chunks_with_no_live_replica() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(1024));
        dfs.create("f").unwrap();
        dfs.append("f", b"data").unwrap();
        let meta = dfs.stat("f").unwrap();
        for r in &meta.chunks[0].replicas {
            dfs.kill_node(*r);
        }
        // Both replicas gone: nothing to heal from.
        assert_eq!(dfs.rereplicate().unwrap(), 0);
        assert!(dfs.read_all("f").is_err());
    }

    #[test]
    fn metrics_count_replicated_bytes() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", &[0u8; 100]).unwrap();
        let snap = dfs.metrics().snapshot();
        assert_eq!(snap.dfs_appends, 1);
        assert_eq!(snap.seq_bytes_written, 300); // 100 bytes × 3 replicas
    }

    #[test]
    fn memory_backend_restart_loses_replica_but_file_survives() {
        let dfs = small_dfs();
        dfs.create("f").unwrap();
        dfs.append("f", b"abc").unwrap();
        dfs.kill_node(1);
        dfs.restart_node(1); // memory node comes back empty
        assert_eq!(&dfs.read_all("f").unwrap()[..], b"abc");
    }

    #[test]
    fn backend_enum_is_exposed() {
        let dfs = small_dfs();
        assert!(matches!(dfs.config().backend, StorageBackend::Memory));
    }
}
