//! Deterministic fault injection for the simulated DFS.
//!
//! A [`FaultInjector`] sits between the [`crate::Dfs`] facade and each
//! data node's block store. Every block operation first asks the injector
//! for a [`FaultDecision`]; the injector can delay the operation (slow
//! node), fail it with a transient I/O error, tear an append (persist
//! only a prefix of the bytes, then kill the node), or flip a bit of the
//! stored block so the read-path checksums catch it.
//!
//! # Determinism contract
//!
//! Faults are driven by one master seed. Each `(node, op class)` pair —
//! a *lane* — owns an independent SplitMix64 stream derived from the
//! seed, and every decision is a pure function of the lane's seed and the
//! lane's own operation counter. Thread interleaving across nodes
//! therefore never changes which decision the Nth append on node 3
//! receives: replaying a workload with the same seed replays the same
//! per-lane fault sequence. Scheduled faults (`at op N, do X`) are exact;
//! probabilistic faults reproduce exactly as well because the Bernoulli
//! draws come from the lane stream in lane-op order.
//!
//! # Crash points
//!
//! Besides block-level faults, the injector hosts a registry of **named
//! crash points** (SyncPoint-style): maintenance code marks every
//! mutation step with `crash_point!(dfs, "compaction.after_sorted_write")`.
//! The call is a no-op (one relaxed atomic load) unless a test armed that
//! exact site with [`FaultInjector::arm_crash_point`]; when armed, the
//! Nth hit returns [`logbase_common::Error::CrashPoint`], which the
//! maintenance path propagates without cleanup — the in-process analogue
//! of dying at that instruction. Recording mode
//! ([`FaultInjector::record_crash_points`]) instead notes every site
//! reached, letting tests assert coverage against the registered list.

use crate::datanode::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The class of block operation a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Block appends (the replication pipeline's write).
    Append,
    /// Positional block reads.
    Read,
    /// Block deletions (file delete, orphan sweeps).
    Delete,
}

/// A fault scheduled to fire at an exact lane-operation index.
#[derive(Debug, Clone)]
pub enum ScheduledFault {
    /// Fail the operation with a transient (retriable) I/O error.
    TransientIo,
    /// Persist only the first `keep` bytes of the append, then kill the
    /// node — a torn write at the moment of a crash. Append lanes only.
    TornAppend {
        /// Bytes of the append payload that reach storage.
        keep: usize,
    },
    /// Flip one bit of the stored block before serving the read, so the
    /// sub-block checksum verification detects corruption. Read lanes
    /// only.
    BitFlip,
    /// Kill the node without touching the bytes.
    Crash,
}

/// Per-lane fault configuration.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that an operation fails with a transient
    /// I/O error (drawn from the lane's deterministic stream).
    pub io_error_prob: f64,
    /// Fixed latency added to every operation (slow node).
    pub fixed_latency: Option<Duration>,
    /// Additional random latency, uniform in `[0, d]`.
    pub random_latency: Option<Duration>,
    /// Faults that fire when the lane's 1-based op counter hits the
    /// given index. Exact and interleaving-independent.
    pub scheduled: Vec<(u64, ScheduledFault)>,
}

impl FaultSpec {
    /// Spec that fails operations with probability `p`.
    pub fn transient(p: f64) -> Self {
        FaultSpec {
            io_error_prob: p,
            ..FaultSpec::default()
        }
    }

    /// Spec that delays every operation by `d` (slow node).
    pub fn slow(d: Duration) -> Self {
        FaultSpec {
            fixed_latency: Some(d),
            ..FaultSpec::default()
        }
    }

    /// Builder-style scheduled fault at 1-based lane op `at`.
    #[must_use]
    pub fn with_scheduled(mut self, at: u64, fault: ScheduledFault) -> Self {
        self.scheduled.push((at, fault));
        self
    }
}

/// What the data node must do for one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute normally.
    Proceed,
    /// Fail with a transient (retriable) I/O error.
    TransientIo,
    /// Persist `keep` bytes of the append, kill the node, fail the call.
    TornAppend {
        /// Prefix length that reaches storage.
        keep: usize,
    },
    /// Flip bit `bit` of the byte selected by `byte_seed % block_len`
    /// in the stored block, then serve the (now corrupt) read normally.
    BitFlip {
        /// Seed the data node reduces modulo the block length.
        byte_seed: u64,
        /// Bit index in `0..8`.
        bit: u8,
    },
    /// Kill the node and fail the call with `NodeDown`.
    Crash,
}

/// One decision: optional latency plus the action to take.
#[derive(Debug, Clone)]
pub struct FaultDecision {
    /// Sleep this long before acting (slow-node simulation).
    pub latency: Option<Duration>,
    /// The action to take.
    pub action: FaultAction,
}

impl FaultDecision {
    const PROCEED: FaultDecision = FaultDecision {
        latency: None,
        action: FaultAction::Proceed,
    };
}

/// SplitMix64 — the lane streams' generator. Kept local so the injector
/// is self-contained and its streams are stable across dependency
/// changes.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

struct Lane {
    spec: FaultSpec,
    rng: SplitMix64,
    ops: u64,
}

// ---------------------------------------------------------------------
// Transport (network) faults
// ---------------------------------------------------------------------

/// The class of transport operation a net-fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetOp {
    /// Accepting (or, from the client's side, establishing) a connection.
    Accept,
    /// Writing one RPC response back to the client. Admission-control
    /// shed (`Busy`) frames intentionally skip this lane: load
    /// harnesses use its injected latency as simulated service cost,
    /// which a shed — the cheapest possible rejection — must not pay.
    Respond,
}

/// A transport fault scheduled at an exact lane-operation index.
#[derive(Debug, Clone)]
pub enum ScheduledNetFault {
    /// Refuse the connection at accept time. Accept lanes only.
    ConnRefuse,
    /// Reset the connection instead of responding (client sees a dropped
    /// socket mid-request). Respond lanes only.
    ConnReset,
    /// Send only a prefix of the response frame, then reset — a torn
    /// frame on the wire. Respond lanes only.
    TornFrame,
    /// Send the response twice; the client's request-id dispatch must
    /// drop the duplicate. Respond lanes only.
    DupResponse,
    /// Swallow the response and keep the connection open — a half-open
    /// connection the client can only escape via its deadline. Respond
    /// lanes only.
    HalfOpen,
}

/// Per-member transport fault configuration. Same determinism contract
/// as [`FaultSpec`]: each `(member, net op)` lane owns a SplitMix64
/// stream, and every probabilistic decision is one draw from it in
/// lane-op order.
#[derive(Debug, Clone, Default)]
pub struct NetFaultSpec {
    /// Probability a connection attempt is refused (accept lane).
    pub conn_refuse_prob: f64,
    /// Probability a response is replaced by a connection reset.
    pub conn_reset_prob: f64,
    /// Probability a response frame is torn (prefix sent, then reset).
    pub torn_frame_prob: f64,
    /// Probability a response is duplicated on the wire.
    pub dup_response_prob: f64,
    /// Probability a response is swallowed, leaving the connection
    /// half-open.
    pub half_open_prob: f64,
    /// Fixed latency added before every response (slow wire).
    pub fixed_latency: Option<Duration>,
    /// Additional random latency, uniform in `[0, d]`.
    pub random_latency: Option<Duration>,
    /// Faults that fire when the lane's 1-based op counter hits the
    /// given index.
    pub scheduled: Vec<(u64, ScheduledNetFault)>,
}

impl NetFaultSpec {
    /// Builder-style scheduled fault at 1-based lane op `at`.
    #[must_use]
    pub fn with_scheduled(mut self, at: u64, fault: ScheduledNetFault) -> Self {
        self.scheduled.push((at, fault));
        self
    }
}

/// What the transport must do for one connection attempt or response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFaultAction {
    /// Execute normally.
    Proceed,
    /// Refuse the connection.
    ConnRefuse,
    /// Reset the connection without responding.
    ConnReset,
    /// Send `keep_seed % frame_len` bytes of the response frame (the
    /// transport reduces the seed, mirroring [`FaultAction::BitFlip`]),
    /// then reset.
    TornFrame {
        /// Seed the transport reduces modulo the frame length.
        keep_seed: u64,
    },
    /// Send the response frame twice.
    DupResponse,
    /// Swallow the response; keep the connection open.
    HalfOpen,
}

/// One transport decision: optional latency plus the action.
#[derive(Debug, Clone)]
pub struct NetFaultDecision {
    /// Sleep this long before acting (slow-wire simulation).
    pub latency: Option<Duration>,
    /// The action to take.
    pub action: NetFaultAction,
}

impl NetFaultDecision {
    const PROCEED: NetFaultDecision = NetFaultDecision {
        latency: None,
        action: NetFaultAction::Proceed,
    };
}

struct NetLane {
    spec: NetFaultSpec,
    rng: SplitMix64,
    ops: u64,
}

/// Crash-point registry state (behind one mutex; the fast path never
/// takes it).
#[derive(Default)]
struct CrashPoints {
    /// Armed site and how many hits remain before it fires (1 = next
    /// hit fires). `None` = nothing armed.
    armed: Option<(String, u64)>,
    /// When true, every hit site is collected into `seen`.
    recording: bool,
    /// Sites reached while recording.
    seen: std::collections::BTreeSet<String>,
    /// Sites that actually fired (armed hits), in firing order.
    fired: Vec<String>,
}

/// Seeded, per-node, per-op-class fault source. See the module docs for
/// the determinism contract.
pub struct FaultInjector {
    seed: u64,
    /// Fast path: `false` until the first spec is installed, letting an
    /// un-faulted cluster skip the lane lock entirely.
    armed: AtomicBool,
    lanes: Mutex<HashMap<(NodeId, OpClass), Lane>>,
    /// Fast path for transport faults, separate from block faults so an
    /// un-faulted wire skips the net-lane lock entirely.
    net_armed: AtomicBool,
    net_lanes: Mutex<HashMap<(u32, NetOp), NetLane>>,
    /// Fast path for crash points: `false` until a site is armed or
    /// recording starts, so production code pays one relaxed load per
    /// `crash_point!` site.
    crash_enabled: AtomicBool,
    crash_points: Mutex<CrashPoints>,
}

impl FaultInjector {
    /// Injector with a master seed. No faults fire until a spec is set.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            armed: AtomicBool::new(false),
            lanes: Mutex::new(HashMap::new()),
            net_armed: AtomicBool::new(false),
            net_lanes: Mutex::new(HashMap::new()),
            crash_enabled: AtomicBool::new(false),
            crash_points: Mutex::new(CrashPoints::default()),
        }
    }

    /// Injector that never fires (the default for production clusters).
    pub fn disabled() -> Self {
        FaultInjector::new(0)
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn lane_seed(&self, node: NodeId, class: OpClass) -> u64 {
        let class_tag = match class {
            OpClass::Append => 0x61u64,
            OpClass::Read => 0x72u64,
            OpClass::Delete => 0x64u64,
        };
        // Mix the lane coordinates into the master seed; SplitMix64's
        // output function scrambles whatever structure remains.
        self.seed
            ^ (u64::from(node).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            ^ (class_tag.wrapping_mul(0xCA5A_8268_95B6_07C9))
    }

    /// Install (or replace) the fault spec for one `(node, class)` lane.
    /// Resets the lane's op counter and stream so the schedule is
    /// reproducible from the moment of installation.
    pub fn set_spec(&self, node: NodeId, class: OpClass, spec: FaultSpec) {
        let mut lanes = self.lanes.lock();
        lanes.insert(
            (node, class),
            Lane {
                spec,
                rng: SplitMix64::new(self.lane_seed(node, class)),
                ops: 0,
            },
        );
        self.armed.store(true, Ordering::Release);
    }

    /// Remove every installed spec (the injector goes quiet; op counters
    /// are discarded).
    pub fn clear(&self) {
        self.lanes.lock().clear();
        self.armed.store(false, Ordering::Release);
    }

    /// Operations the lane has decided so far.
    pub fn ops(&self, node: NodeId, class: OpClass) -> u64 {
        self.lanes
            .lock()
            .get(&(node, class))
            .map_or(0, |lane| lane.ops)
    }

    /// Decide the fate of one operation on `node`'s `class` lane.
    pub fn decide(&self, node: NodeId, class: OpClass) -> FaultDecision {
        if !self.armed.load(Ordering::Acquire) {
            return FaultDecision::PROCEED;
        }
        let mut lanes = self.lanes.lock();
        let Some(lane) = lanes.get_mut(&(node, class)) else {
            return FaultDecision::PROCEED;
        };
        lane.ops += 1;
        let op = lane.ops;

        let mut latency = lane.spec.fixed_latency;
        if let Some(max) = lane.spec.random_latency {
            let extra = max.mul_f64(lane.rng.next_f64());
            latency = Some(latency.unwrap_or(Duration::ZERO) + extra);
        }

        let scheduled = lane
            .spec
            .scheduled
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| f.clone());
        let action = if let Some(fault) = scheduled {
            match fault {
                ScheduledFault::TransientIo => FaultAction::TransientIo,
                ScheduledFault::TornAppend { keep } => FaultAction::TornAppend { keep },
                ScheduledFault::BitFlip => FaultAction::BitFlip {
                    byte_seed: lane.rng.next_u64(),
                    bit: (lane.rng.next_u64() % 8) as u8,
                },
                ScheduledFault::Crash => FaultAction::Crash,
            }
        } else if lane.spec.io_error_prob > 0.0 && lane.rng.next_f64() < lane.spec.io_error_prob {
            FaultAction::TransientIo
        } else {
            FaultAction::Proceed
        };
        FaultDecision { latency, action }
    }

    /// The error a [`FaultAction::TransientIo`] decision turns into:
    /// `Interrupted`, which [`logbase_common::Error::is_retriable`]
    /// classifies as transient.
    pub fn transient_error(node: NodeId, class: OpClass) -> logbase_common::Error {
        logbase_common::Error::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected transient fault: dn-{node} {class:?}"),
        ))
    }

    // ------------------------------------------------------------------
    // Transport faults
    // ------------------------------------------------------------------

    fn net_lane_seed(&self, member: u32, op: NetOp) -> u64 {
        let op_tag = match op {
            NetOp::Accept => 0x4Eu64,  // 'N'
            NetOp::Respond => 0x52u64, // 'R'
        };
        self.seed
            ^ (u64::from(member).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
            ^ (op_tag.wrapping_mul(0xAEF1_7502_C3A2_C91F))
    }

    /// Install (or replace) the transport fault spec for one member.
    /// Both of the member's net lanes (accept and respond) are reset so
    /// the schedule reproduces from the moment of installation.
    pub fn set_net_spec(&self, member: u32, spec: NetFaultSpec) {
        let mut lanes = self.net_lanes.lock();
        for op in [NetOp::Accept, NetOp::Respond] {
            lanes.insert(
                (member, op),
                NetLane {
                    spec: spec.clone(),
                    rng: SplitMix64::new(self.net_lane_seed(member, op)),
                    ops: 0,
                },
            );
        }
        self.net_armed.store(true, Ordering::Release);
    }

    /// Install (or replace) the transport fault spec for a single lane
    /// of one member, leaving its other lane untouched. Load harnesses
    /// use this to inject per-response service latency without also
    /// throttling connection accepts.
    pub fn set_net_spec_for(&self, member: u32, op: NetOp, spec: NetFaultSpec) {
        let mut lanes = self.net_lanes.lock();
        lanes.insert(
            (member, op),
            NetLane {
                spec,
                rng: SplitMix64::new(self.net_lane_seed(member, op)),
                ops: 0,
            },
        );
        self.net_armed.store(true, Ordering::Release);
    }

    /// Remove every installed transport spec.
    pub fn clear_net(&self) {
        self.net_lanes.lock().clear();
        self.net_armed.store(false, Ordering::Release);
    }

    /// Transport operations the lane has decided so far.
    pub fn net_ops(&self, member: u32, op: NetOp) -> u64 {
        self.net_lanes
            .lock()
            .get(&(member, op))
            .map_or(0, |lane| lane.ops)
    }

    /// Decide the fate of one transport operation on `member`'s `op`
    /// lane. Scheduled faults take precedence; otherwise one uniform
    /// draw is split across the configured probabilities (so at most one
    /// probabilistic fault fires per operation).
    pub fn decide_net(&self, member: u32, op: NetOp) -> NetFaultDecision {
        if !self.net_armed.load(Ordering::Acquire) {
            return NetFaultDecision::PROCEED;
        }
        let mut lanes = self.net_lanes.lock();
        let Some(lane) = lanes.get_mut(&(member, op)) else {
            return NetFaultDecision::PROCEED;
        };
        lane.ops += 1;
        let op_idx = lane.ops;

        let mut latency = lane.spec.fixed_latency;
        if let Some(max) = lane.spec.random_latency {
            let extra = max.mul_f64(lane.rng.next_f64());
            latency = Some(latency.unwrap_or(Duration::ZERO) + extra);
        }

        let scheduled = lane
            .spec
            .scheduled
            .iter()
            .find(|(at, _)| *at == op_idx)
            .map(|(_, f)| f.clone());
        let action = if let Some(fault) = scheduled {
            match fault {
                ScheduledNetFault::ConnRefuse => NetFaultAction::ConnRefuse,
                ScheduledNetFault::ConnReset => NetFaultAction::ConnReset,
                ScheduledNetFault::TornFrame => NetFaultAction::TornFrame {
                    keep_seed: lane.rng.next_u64(),
                },
                ScheduledNetFault::DupResponse => NetFaultAction::DupResponse,
                ScheduledNetFault::HalfOpen => NetFaultAction::HalfOpen,
            }
        } else {
            // One draw walks the cumulative probability ladder, keyed to
            // the lane the operation belongs to: accept lanes only
            // refuse, respond lanes only tear/reset/dup/swallow.
            let draw = lane.rng.next_f64();
            match op {
                NetOp::Accept if draw < lane.spec.conn_refuse_prob => NetFaultAction::ConnRefuse,
                NetOp::Respond => {
                    let s = &lane.spec;
                    let reset_to = s.conn_reset_prob;
                    let torn_to = reset_to + s.torn_frame_prob;
                    let dup_to = torn_to + s.dup_response_prob;
                    let half_to = dup_to + s.half_open_prob;
                    if draw < reset_to {
                        NetFaultAction::ConnReset
                    } else if draw < torn_to {
                        NetFaultAction::TornFrame {
                            keep_seed: lane.rng.next_u64(),
                        }
                    } else if draw < dup_to {
                        NetFaultAction::DupResponse
                    } else if draw < half_to {
                        NetFaultAction::HalfOpen
                    } else {
                        NetFaultAction::Proceed
                    }
                }
                _ => NetFaultAction::Proceed,
            }
        };
        NetFaultDecision { latency, action }
    }

    /// The retriable error a refused or reset connection surfaces as on
    /// the client: the member may be fine an instant later (or after the
    /// router points elsewhere), so the retry loop must keep going.
    pub fn net_error(member: u32, what: &str) -> logbase_common::Error {
        logbase_common::Error::Unavailable(format!(
            "injected transport fault: member {member} {what}"
        ))
    }

    // ------------------------------------------------------------------
    // Crash points
    // ------------------------------------------------------------------

    /// Arm crash point `site`: the next hit fires
    /// [`logbase_common::Error::CrashPoint`] and disarms the registry
    /// (so recovery that re-traverses the same site does not crash
    /// again).
    pub fn arm_crash_point(&self, site: &str) {
        self.arm_crash_point_at(site, 1);
    }

    /// Arm crash point `site` to fire on its `nth` hit (1-based).
    pub fn arm_crash_point_at(&self, site: &str, nth: u64) {
        let mut cp = self.crash_points.lock();
        cp.armed = Some((site.to_string(), nth.max(1)));
        self.crash_enabled.store(true, Ordering::Release);
    }

    /// Disarm any armed crash point (recording, if on, stays on).
    pub fn disarm_crash_points(&self) {
        let mut cp = self.crash_points.lock();
        cp.armed = None;
        self.crash_enabled.store(cp.recording, Ordering::Release);
    }

    /// Toggle recording mode: while on, every crash site reached is
    /// collected (without firing) for coverage assertions.
    pub fn record_crash_points(&self, on: bool) {
        let mut cp = self.crash_points.lock();
        cp.recording = on;
        if !on {
            cp.seen.clear();
        }
        self.crash_enabled
            .store(cp.recording || cp.armed.is_some(), Ordering::Release);
    }

    /// Sites reached while recording, sorted by name.
    pub fn crash_points_seen(&self) -> Vec<String> {
        self.crash_points.lock().seen.iter().cloned().collect()
    }

    /// Sites that actually fired, in firing order.
    pub fn crash_points_fired(&self) -> Vec<String> {
        self.crash_points.lock().fired.clone()
    }

    /// Evaluate crash point `site`. No-op unless armed at this site (the
    /// countdown reaches zero) or recording. Called via the
    /// `crash_point!` macro / [`crate::Dfs::crash_point`].
    pub fn check_crash_point(&self, site: &str) -> logbase_common::Result<()> {
        if !self.crash_enabled.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut cp = self.crash_points.lock();
        if cp.recording {
            cp.seen.insert(site.to_string());
        }
        if let Some((armed_site, remaining)) = &mut cp.armed {
            if armed_site == site {
                *remaining -= 1;
                if *remaining == 0 {
                    cp.fired.push(site.to_string());
                    cp.armed = None;
                    let recording = cp.recording;
                    drop(cp);
                    self.crash_enabled.store(recording, Ordering::Release);
                    return Err(logbase_common::Error::CrashPoint {
                        site: site.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(inj: &FaultInjector, node: NodeId, class: OpClass, n: u64) -> Vec<FaultAction> {
        (0..n).map(|_| inj.decide(node, class).action).collect()
    }

    #[test]
    fn unarmed_injector_always_proceeds() {
        let inj = FaultInjector::disabled();
        for a in drive(&inj, 0, OpClass::Append, 100) {
            assert_eq!(a, FaultAction::Proceed);
        }
    }

    #[test]
    fn same_seed_same_lane_sequence() {
        let make = || {
            let inj = FaultInjector::new(0xBEEF);
            inj.set_spec(1, OpClass::Append, FaultSpec::transient(0.3));
            inj.set_spec(2, OpClass::Read, FaultSpec::transient(0.5));
            inj
        };
        let a = make();
        let b = make();
        // Interleave lanes differently on the two injectors; per-lane
        // sequences must still match exactly.
        let mut a1 = Vec::new();
        let mut a2 = Vec::new();
        for _ in 0..200 {
            a1.push(a.decide(1, OpClass::Append).action);
            a2.push(a.decide(2, OpClass::Read).action);
        }
        let b2: Vec<_> = drive(&b, 2, OpClass::Read, 200);
        let b1: Vec<_> = drive(&b, 1, OpClass::Append, 200);
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        // And the fault mix is non-trivial at p=0.3 over 200 ops.
        assert!(a1.contains(&FaultAction::TransientIo));
        assert!(a1.contains(&FaultAction::Proceed));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(1);
        let b = FaultInjector::new(2);
        for inj in [&a, &b] {
            inj.set_spec(0, OpClass::Append, FaultSpec::transient(0.5));
        }
        assert_ne!(
            drive(&a, 0, OpClass::Append, 64),
            drive(&b, 0, OpClass::Append, 64)
        );
    }

    #[test]
    fn scheduled_faults_fire_exactly_once_at_their_index() {
        let inj = FaultInjector::new(7);
        inj.set_spec(
            3,
            OpClass::Append,
            FaultSpec::default()
                .with_scheduled(2, ScheduledFault::TornAppend { keep: 4 })
                .with_scheduled(5, ScheduledFault::Crash),
        );
        let acts = drive(&inj, 3, OpClass::Append, 6);
        assert_eq!(acts[0], FaultAction::Proceed);
        assert_eq!(acts[1], FaultAction::TornAppend { keep: 4 });
        assert_eq!(acts[2], FaultAction::Proceed);
        assert_eq!(acts[4], FaultAction::Crash);
        assert_eq!(acts[5], FaultAction::Proceed);
    }

    #[test]
    fn latency_is_reported_and_bounded() {
        let inj = FaultInjector::new(11);
        let spec = FaultSpec {
            fixed_latency: Some(Duration::from_micros(100)),
            random_latency: Some(Duration::from_micros(50)),
            ..FaultSpec::default()
        };
        inj.set_spec(0, OpClass::Read, spec);
        for _ in 0..32 {
            let d = inj.decide(0, OpClass::Read);
            let lat = d.latency.expect("latency configured");
            assert!(lat >= Duration::from_micros(100));
            assert!(lat <= Duration::from_micros(150));
        }
    }

    #[test]
    fn lanes_are_independent() {
        let inj = FaultInjector::new(5);
        inj.set_spec(0, OpClass::Append, FaultSpec::transient(1.0));
        // Read lane of the same node has no spec: always proceeds.
        assert_eq!(
            inj.decide(0, OpClass::Append).action,
            FaultAction::TransientIo
        );
        assert_eq!(inj.decide(0, OpClass::Read).action, FaultAction::Proceed);
        assert_eq!(inj.ops(0, OpClass::Append), 1);
        assert_eq!(inj.ops(0, OpClass::Read), 0);
    }

    #[test]
    fn transient_error_is_retriable() {
        assert!(FaultInjector::transient_error(3, OpClass::Append).is_retriable());
    }

    #[test]
    fn unarmed_crash_points_are_no_ops() {
        let inj = FaultInjector::disabled();
        for _ in 0..100 {
            inj.check_crash_point("a.b").unwrap();
        }
        assert!(inj.crash_points_fired().is_empty());
        assert!(inj.crash_points_seen().is_empty());
    }

    #[test]
    fn armed_site_fires_once_then_disarms() {
        let inj = FaultInjector::disabled();
        inj.arm_crash_point("compaction.x");
        inj.check_crash_point("checkpoint.y").unwrap(); // other site: no fire
        let err = inj.check_crash_point("compaction.x").unwrap_err();
        assert!(matches!(
            err,
            logbase_common::Error::CrashPoint { ref site } if site == "compaction.x"
        ));
        // Disarmed after firing: recovery re-traversal survives.
        inj.check_crash_point("compaction.x").unwrap();
        assert_eq!(inj.crash_points_fired(), vec!["compaction.x".to_string()]);
    }

    #[test]
    fn nth_hit_arming_counts_hits() {
        let inj = FaultInjector::disabled();
        inj.arm_crash_point_at("s", 3);
        inj.check_crash_point("s").unwrap();
        inj.check_crash_point("s").unwrap();
        assert!(inj.check_crash_point("s").is_err());
    }

    #[test]
    fn recording_collects_sites_without_firing() {
        let inj = FaultInjector::disabled();
        inj.record_crash_points(true);
        inj.check_crash_point("b").unwrap();
        inj.check_crash_point("a").unwrap();
        inj.check_crash_point("b").unwrap();
        assert_eq!(
            inj.crash_points_seen(),
            vec!["a".to_string(), "b".to_string()]
        );
        inj.record_crash_points(false);
        assert!(inj.crash_points_seen().is_empty());
    }

    #[test]
    fn net_lanes_are_deterministic_and_independent_of_block_lanes() {
        let make = || {
            let inj = FaultInjector::new(0xFACE);
            inj.set_net_spec(
                1,
                NetFaultSpec {
                    conn_reset_prob: 0.2,
                    torn_frame_prob: 0.2,
                    dup_response_prob: 0.2,
                    half_open_prob: 0.2,
                    ..NetFaultSpec::default()
                },
            );
            inj
        };
        let a = make();
        let b = make();
        let seq = |inj: &FaultInjector| -> Vec<NetFaultAction> {
            (0..100)
                .map(|_| inj.decide_net(1, NetOp::Respond).action)
                .collect()
        };
        let sa = seq(&a);
        // Interleave block-lane traffic on `b`; net sequence must not shift.
        b.set_spec(1, OpClass::Append, FaultSpec::transient(0.5));
        let sb: Vec<_> = (0..100)
            .map(|_| {
                b.decide(1, OpClass::Append);
                b.decide_net(1, NetOp::Respond).action
            })
            .collect();
        assert_eq!(sa, sb);
        // All four respond faults appear at p=0.2 each over 100 ops.
        assert!(sa.iter().any(|x| matches!(x, NetFaultAction::ConnReset)));
        assert!(sa
            .iter()
            .any(|x| matches!(x, NetFaultAction::TornFrame { .. })));
        assert!(sa.iter().any(|x| matches!(x, NetFaultAction::DupResponse)));
        assert!(sa.iter().any(|x| matches!(x, NetFaultAction::HalfOpen)));
        assert!(sa.iter().any(|x| matches!(x, NetFaultAction::Proceed)));
    }

    #[test]
    fn net_accept_lane_only_refuses() {
        let inj = FaultInjector::new(3);
        inj.set_net_spec(
            0,
            NetFaultSpec {
                conn_refuse_prob: 1.0,
                conn_reset_prob: 1.0,
                ..NetFaultSpec::default()
            },
        );
        assert_eq!(
            inj.decide_net(0, NetOp::Accept).action,
            NetFaultAction::ConnRefuse
        );
        // The respond lane never refuses; with reset_prob=1 it resets.
        assert_eq!(
            inj.decide_net(0, NetOp::Respond).action,
            NetFaultAction::ConnReset
        );
    }

    #[test]
    fn scheduled_net_faults_fire_at_their_index() {
        let inj = FaultInjector::new(9);
        inj.set_net_spec(
            2,
            NetFaultSpec::default()
                .with_scheduled(2, ScheduledNetFault::TornFrame)
                .with_scheduled(3, ScheduledNetFault::HalfOpen),
        );
        assert_eq!(
            inj.decide_net(2, NetOp::Respond).action,
            NetFaultAction::Proceed
        );
        assert!(matches!(
            inj.decide_net(2, NetOp::Respond).action,
            NetFaultAction::TornFrame { .. }
        ));
        assert_eq!(
            inj.decide_net(2, NetOp::Respond).action,
            NetFaultAction::HalfOpen
        );
        assert_eq!(inj.net_ops(2, NetOp::Respond), 3);
    }

    #[test]
    fn clear_net_quiesces_only_the_wire() {
        let inj = FaultInjector::new(4);
        inj.set_net_spec(
            0,
            NetFaultSpec {
                conn_refuse_prob: 1.0,
                ..NetFaultSpec::default()
            },
        );
        inj.set_spec(0, OpClass::Append, FaultSpec::transient(1.0));
        inj.clear_net();
        assert_eq!(
            inj.decide_net(0, NetOp::Accept).action,
            NetFaultAction::Proceed
        );
        assert_eq!(
            inj.decide(0, OpClass::Append).action,
            FaultAction::TransientIo
        );
        assert!(FaultInjector::net_error(0, "connection refused").is_retriable());
    }

    #[test]
    fn disarm_clears_a_pending_site() {
        let inj = FaultInjector::disabled();
        inj.arm_crash_point("s");
        inj.disarm_crash_points();
        inj.check_crash_point("s").unwrap();
        assert!(inj.crash_points_fired().is_empty());
    }
}
