//! Name node: namespace, chunk metadata and rack-aware placement.

use crate::datanode::{BlockId, NodeId};
use logbase_common::{Error, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Metadata of one chunk of a file.
#[derive(Debug, Clone)]
pub struct ChunkMeta {
    /// Globally unique block id.
    pub block: BlockId,
    /// Current length of the chunk in bytes.
    pub len: u64,
    /// Nodes holding replicas, pipeline order.
    pub replicas: Vec<NodeId>,
}

/// Metadata of one file: an ordered list of chunks.
#[derive(Debug, Clone, Default)]
pub struct FileMeta {
    /// Chunks in file order.
    pub chunks: Vec<ChunkMeta>,
    /// Whether the file is sealed (no further appends).
    pub sealed: bool,
}

impl FileMeta {
    /// Total file length.
    pub fn len(&self) -> u64 {
        self.chunks.iter().map(|c| c.len).sum()
    }

    /// True when the file holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Replica placement policy.
///
/// `RackAware` mirrors HDFS: first replica on a rotating "writer-local"
/// node, second on a node in a *different* rack, third on another node in
/// the second replica's rack. `Flat` ignores racks (round-robin), used
/// when `racks == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// HDFS-style rack-aware placement.
    RackAware,
    /// Round-robin over all live nodes.
    Flat,
}

/// The namespace and placement authority.
pub struct NameNode {
    files: RwLock<BTreeMap<String, FileMeta>>,
    next_block: AtomicU64,
    next_writer: AtomicU64,
    policy: PlacementPolicy,
}

impl NameNode {
    /// New empty namespace.
    pub fn new(policy: PlacementPolicy) -> Self {
        NameNode {
            files: RwLock::new(BTreeMap::new()),
            next_block: AtomicU64::new(1),
            next_writer: AtomicU64::new(0),
            policy,
        }
    }

    /// Create an empty file. Fails if it already exists.
    pub fn create(&self, name: &str) -> Result<()> {
        let mut files = self.files.write();
        if files.contains_key(name) {
            return Err(Error::FileExists(name.to_string()));
        }
        files.insert(name.to_string(), FileMeta::default());
        Ok(())
    }

    /// True when `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Current metadata snapshot of `name`.
    pub fn stat(&self, name: &str) -> Result<FileMeta> {
        self.files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::FileNotFound(name.to_string()))
    }

    /// List file names with the given prefix, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Remove `name` and return its chunks for the caller to reclaim.
    pub fn delete(&self, name: &str) -> Result<Vec<ChunkMeta>> {
        self.files
            .write()
            .remove(name)
            .map(|m| m.chunks)
            .ok_or_else(|| Error::FileNotFound(name.to_string()))
    }

    /// Rename `from` to `to` (fails if `to` exists).
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut files = self.files.write();
        if files.contains_key(to) {
            return Err(Error::FileExists(to.to_string()));
        }
        let meta = files
            .remove(from)
            .ok_or_else(|| Error::FileNotFound(from.to_string()))?;
        files.insert(to.to_string(), meta);
        Ok(())
    }

    /// Seal `name` against further appends.
    pub fn seal(&self, name: &str) -> Result<()> {
        let mut files = self.files.write();
        let meta = files
            .get_mut(name)
            .ok_or_else(|| Error::FileNotFound(name.to_string()))?;
        meta.sealed = true;
        Ok(())
    }

    /// Plan an append of `len` bytes to `name` with chunk capacity
    /// `chunk_size`. Returns the list of `(chunk, offset within chunk,
    /// slice range)` writes to perform; new chunks are allocated with
    /// replicas chosen from `live` (node id → rack). The plan is applied
    /// with [`NameNode::commit_append`] after the replica writes succeed.
    pub fn plan_append(
        &self,
        name: &str,
        len: u64,
        chunk_size: u64,
        replication: usize,
        live: &[(NodeId, u32)],
    ) -> Result<AppendPlan> {
        if live.len() < replication {
            return Err(Error::InsufficientReplicas {
                wanted: replication,
                available: live.len(),
            });
        }
        let files = self.files.read();
        let meta = files
            .get(name)
            .ok_or_else(|| Error::FileNotFound(name.to_string()))?;
        if meta.sealed {
            return Err(Error::InvalidArgument(format!(
                "file {name} is sealed against appends"
            )));
        }
        let file_len = meta.len();
        let mut writes = Vec::new();
        let mut remaining = len;
        let mut data_pos = 0u64;

        // Fill the tail chunk first.
        let mut tail_room = match meta.chunks.last() {
            Some(c) if c.len < chunk_size => chunk_size - c.len,
            _ => 0,
        };
        if tail_room > 0 && remaining > 0 {
            let take = tail_room.min(remaining);
            let c = meta.chunks.last().expect("tail chunk exists");
            writes.push(ChunkWrite {
                chunk_index: meta.chunks.len() - 1,
                block: c.block,
                replicas: c.replicas.clone(),
                data_range: (data_pos, data_pos + take),
                new_chunk: false,
                chunk_offset: c.len,
            });
            remaining -= take;
            data_pos += take;
            tail_room -= take;
            let _ = tail_room;
        }
        // Allocate fresh chunks for the rest.
        let mut chunk_index = meta.chunks.len();
        while remaining > 0 {
            let take = chunk_size.min(remaining);
            let block = self.next_block.fetch_add(1, Ordering::Relaxed);
            let replicas = self.place(replication, live);
            writes.push(ChunkWrite {
                chunk_index,
                block,
                replicas,
                data_range: (data_pos, data_pos + take),
                new_chunk: true,
                chunk_offset: 0,
            });
            remaining -= take;
            data_pos += take;
            chunk_index += 1;
        }
        Ok(AppendPlan {
            file: name.to_string(),
            start_offset: file_len,
            writes,
        })
    }

    /// Record the effects of a completed append plan.
    pub fn commit_append(&self, plan: &AppendPlan) -> Result<()> {
        let mut files = self.files.write();
        let meta = files
            .get_mut(&plan.file)
            .ok_or_else(|| Error::FileNotFound(plan.file.clone()))?;
        for w in &plan.writes {
            let wlen = w.data_range.1 - w.data_range.0;
            if w.new_chunk {
                debug_assert_eq!(w.chunk_index, meta.chunks.len());
                meta.chunks.push(ChunkMeta {
                    block: w.block,
                    len: wlen,
                    replicas: w.replicas.clone(),
                });
            } else {
                let c = meta.chunks.get_mut(w.chunk_index).ok_or_else(|| {
                    Error::Corruption(format!(
                        "append plan refers to missing chunk {} of {}",
                        w.chunk_index, plan.file
                    ))
                })?;
                c.len += wlen;
                // The pipeline may have swapped failed replicas for
                // replacements mid-append; the chunk's authoritative
                // replica set is whatever the pipeline actually wrote.
                c.replicas.clone_from(&w.replicas);
            }
        }
        Ok(())
    }

    /// Replace the replica set of one chunk (re-replication after a
    /// node failure).
    pub fn set_replicas(
        &self,
        name: &str,
        chunk_index: usize,
        replicas: Vec<NodeId>,
    ) -> Result<()> {
        let mut files = self.files.write();
        let meta = files
            .get_mut(name)
            .ok_or_else(|| Error::FileNotFound(name.to_string()))?;
        let chunk = meta
            .chunks
            .get_mut(chunk_index)
            .ok_or_else(|| Error::Corruption(format!("{name}: no chunk at index {chunk_index}")))?;
        chunk.replicas = replicas;
        Ok(())
    }

    /// Choose one live node not in `exclude` to replace a failed
    /// pipeline replica. Uses the same rotating cursor as fresh
    /// placement so replacements spread over the cluster.
    pub fn pick_replacement(&self, exclude: &[NodeId], live: &[(NodeId, u32)]) -> Option<NodeId> {
        if live.is_empty() {
            return None;
        }
        let start = self.next_writer.fetch_add(1, Ordering::Relaxed) as usize % live.len();
        live.iter()
            .cycle()
            .skip(start)
            .take(live.len())
            .map(|(id, _)| *id)
            .find(|id| !exclude.contains(id))
    }

    /// Every block id referenced by some file's chunk table. Data nodes
    /// diff their block reports against this set to reclaim orphaned
    /// replicas (blocks whose file was deleted while the node was down).
    pub fn referenced_blocks(&self) -> HashSet<BlockId> {
        self.files
            .read()
            .values()
            .flat_map(|m| m.chunks.iter().map(|c| c.block))
            .collect()
    }

    /// Choose `replication` nodes for a new chunk.
    fn place(&self, replication: usize, live: &[(NodeId, u32)]) -> Vec<NodeId> {
        let start = self.next_writer.fetch_add(1, Ordering::Relaxed) as usize % live.len();
        match self.policy {
            PlacementPolicy::Flat => (0..replication)
                .map(|i| live[(start + i) % live.len()].0)
                .collect(),
            PlacementPolicy::RackAware => {
                let mut chosen: Vec<(NodeId, u32)> = Vec::with_capacity(replication);
                // First replica: "local" (rotating) node.
                chosen.push(live[start]);
                // Second: different rack if possible.
                if replication > 1 {
                    let second = live
                        .iter()
                        .cycle()
                        .skip(start + 1)
                        .take(live.len())
                        .find(|(id, rack)| *rack != chosen[0].1 && *id != chosen[0].0)
                        .or_else(|| {
                            live.iter()
                                .cycle()
                                .skip(start + 1)
                                .take(live.len())
                                .find(|(id, _)| *id != chosen[0].0)
                        });
                    if let Some(&n) = second {
                        chosen.push(n);
                    }
                }
                // Third and beyond: same rack as second, then anywhere.
                while chosen.len() < replication {
                    let have: Vec<NodeId> = chosen.iter().map(|c| c.0).collect();
                    let want_rack = chosen.get(1).map(|c| c.1);
                    let next = live
                        .iter()
                        .cycle()
                        .skip(start + chosen.len())
                        .take(live.len())
                        .find(|(id, rack)| {
                            !have.contains(id) && want_rack.is_none_or(|r| *rack == r)
                        })
                        .or_else(|| {
                            live.iter()
                                .cycle()
                                .skip(start + chosen.len())
                                .take(live.len())
                                .find(|(id, _)| !have.contains(id))
                        });
                    match next {
                        Some(&n) => chosen.push(n),
                        None => break,
                    }
                }
                chosen.into_iter().map(|(id, _)| id).collect()
            }
        }
    }
}

/// One replica-pipeline write produced by [`NameNode::plan_append`].
#[derive(Debug, Clone)]
pub struct ChunkWrite {
    /// Index of the chunk within the file.
    pub chunk_index: usize,
    /// Block to append to.
    pub block: BlockId,
    /// Replica pipeline.
    pub replicas: Vec<NodeId>,
    /// Half-open byte range of the caller's buffer to write.
    pub data_range: (u64, u64),
    /// Whether this write creates the chunk.
    pub new_chunk: bool,
    /// Committed length of the chunk before this append (0 for new
    /// chunks). The pipeline uses it to detect and repair torn replicas:
    /// a healthy replica is exactly `chunk_offset` bytes long before the
    /// write and `chunk_offset + write len` after.
    pub chunk_offset: u64,
}

/// A planned multi-chunk append.
#[derive(Debug, Clone)]
pub struct AppendPlan {
    /// Target file.
    pub file: String,
    /// Offset in the file where the append starts.
    pub start_offset: u64,
    /// Pipeline writes to perform in order.
    pub writes: Vec<ChunkWrite>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(n: usize, racks: u32) -> Vec<(NodeId, u32)> {
        (0..n as u32).map(|i| (i, i % racks)).collect()
    }

    #[test]
    fn namespace_crud() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        nn.create("a/b").unwrap();
        assert!(nn.exists("a/b"));
        assert!(matches!(nn.create("a/b"), Err(Error::FileExists(_))));
        nn.create("a/c").unwrap();
        nn.create("z").unwrap();
        assert_eq!(nn.list("a/"), vec!["a/b".to_string(), "a/c".to_string()]);
        nn.rename("a/c", "a/d").unwrap();
        assert!(!nn.exists("a/c"));
        nn.delete("a/d").unwrap();
        assert!(matches!(nn.delete("a/d"), Err(Error::FileNotFound(_))));
    }

    #[test]
    fn plan_append_spans_chunks() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        nn.create("f").unwrap();
        // chunk size 10, append 25 bytes => 3 new chunks (10,10,5)
        let plan = nn.plan_append("f", 25, 10, 2, &live(3, 1)).unwrap();
        assert_eq!(plan.start_offset, 0);
        assert_eq!(plan.writes.len(), 3);
        assert!(plan.writes.iter().all(|w| w.new_chunk));
        assert_eq!(plan.writes[2].data_range, (20, 25));
        nn.commit_append(&plan).unwrap();
        assert_eq!(nn.stat("f").unwrap().len(), 25);

        // Next append fills the 5-byte tail first.
        let plan2 = nn.plan_append("f", 8, 10, 2, &live(3, 1)).unwrap();
        assert_eq!(plan2.start_offset, 25);
        assert_eq!(plan2.writes.len(), 2);
        assert!(!plan2.writes[0].new_chunk);
        assert_eq!(plan2.writes[0].data_range, (0, 5));
        assert!(plan2.writes[1].new_chunk);
        nn.commit_append(&plan2).unwrap();
        assert_eq!(nn.stat("f").unwrap().len(), 33);
        assert_eq!(nn.stat("f").unwrap().chunks.len(), 4);
    }

    #[test]
    fn append_requires_enough_replicas() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        nn.create("f").unwrap();
        let err = nn.plan_append("f", 10, 10, 3, &live(2, 1)).unwrap_err();
        assert!(matches!(err, Error::InsufficientReplicas { .. }));
    }

    #[test]
    fn sealed_file_rejects_appends() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        nn.create("f").unwrap();
        nn.seal("f").unwrap();
        assert!(nn.plan_append("f", 1, 10, 1, &live(1, 1)).is_err());
    }

    #[test]
    fn rack_aware_placement_spans_racks() {
        let nn = NameNode::new(PlacementPolicy::RackAware);
        let nodes = live(6, 2); // racks 0,1,0,1,0,1
        for _ in 0..12 {
            let replicas = nn.place(3, &nodes);
            assert_eq!(replicas.len(), 3);
            // Replicas distinct.
            let mut sorted = replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
            // At least two racks covered.
            let racks: std::collections::BTreeSet<u32> = replicas
                .iter()
                .map(|id| nodes.iter().find(|(n, _)| n == id).unwrap().1)
                .collect();
            assert!(racks.len() >= 2, "replicas {replicas:?} all in one rack");
        }
    }

    #[test]
    fn rack_aware_single_rack_degrades_gracefully() {
        let nn = NameNode::new(PlacementPolicy::RackAware);
        let nodes = live(3, 1);
        let replicas = nn.place(3, &nodes);
        assert_eq!(replicas.len(), 3);
    }

    #[test]
    fn plan_append_records_chunk_offsets() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        nn.create("f").unwrap();
        let plan = nn.plan_append("f", 7, 10, 1, &live(1, 1)).unwrap();
        assert_eq!(plan.writes[0].chunk_offset, 0);
        nn.commit_append(&plan).unwrap();
        // Tail fill resumes at the committed chunk length.
        let plan2 = nn.plan_append("f", 8, 10, 1, &live(1, 1)).unwrap();
        assert_eq!(plan2.writes[0].chunk_offset, 7);
        assert_eq!(plan2.writes[1].chunk_offset, 0);
    }

    #[test]
    fn pick_replacement_skips_excluded_nodes() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        let nodes = live(4, 1);
        for _ in 0..8 {
            let got = nn.pick_replacement(&[0, 2], &nodes).unwrap();
            assert!(got == 1 || got == 3);
        }
        assert_eq!(nn.pick_replacement(&[0, 1, 2, 3], &nodes), None);
        assert_eq!(nn.pick_replacement(&[], &[]), None);
    }

    #[test]
    fn referenced_blocks_tracks_chunk_tables() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        nn.create("f").unwrap();
        let plan = nn.plan_append("f", 25, 10, 1, &live(1, 1)).unwrap();
        nn.commit_append(&plan).unwrap();
        let blocks = nn.referenced_blocks();
        assert_eq!(blocks.len(), 3);
        for w in &plan.writes {
            assert!(blocks.contains(&w.block));
        }
        nn.delete("f").unwrap();
        assert!(nn.referenced_blocks().is_empty());
    }

    #[test]
    fn placement_rotates_first_replica() {
        let nn = NameNode::new(PlacementPolicy::Flat);
        let nodes = live(4, 1);
        let firsts: Vec<NodeId> = (0..4).map(|_| nn.place(1, &nodes)[0]).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3]);
    }
}
