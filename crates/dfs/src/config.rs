//! DFS configuration.

use logbase_common::config::{DEFAULT_REPLICATION, DEFAULT_SEGMENT_BYTES};
use std::path::PathBuf;

/// Where data-node blocks live.
#[derive(Debug, Clone)]
pub enum StorageBackend {
    /// Blocks held in process memory. Fast; used by unit tests and by
    /// benchmarks that measure algorithmic shape rather than disk cost.
    Memory,
    /// Blocks stored as files under `<root>/<node>/blk_<id>`. Appends are
    /// buffered (no fsync) so the OS page cache plays the role the
    /// cluster's disk caches played in the paper's testbed.
    Disk(PathBuf),
}

/// Configuration for a simulated DFS instance.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Number of data nodes in the cluster.
    pub data_nodes: usize,
    /// Replication factor (paper default: 3).
    pub replication: usize,
    /// Chunk size in bytes (paper default: 64 MB).
    pub chunk_size: u64,
    /// Number of racks the nodes are spread over (for rack-aware
    /// placement). Nodes are assigned round-robin to racks.
    pub racks: usize,
    /// Block storage backend.
    pub backend: StorageBackend,
}

impl DfsConfig {
    /// Memory-backed config with `data_nodes` nodes and replication `r`.
    pub fn in_memory(data_nodes: usize, r: usize) -> Self {
        DfsConfig {
            data_nodes,
            replication: r,
            chunk_size: DEFAULT_SEGMENT_BYTES,
            racks: 2.min(data_nodes.max(1)),
            backend: StorageBackend::Memory,
        }
    }

    /// Disk-backed config rooted at `root`.
    pub fn on_disk(root: impl Into<PathBuf>, data_nodes: usize, r: usize) -> Self {
        DfsConfig {
            data_nodes,
            replication: r,
            chunk_size: DEFAULT_SEGMENT_BYTES,
            racks: 2.min(data_nodes.max(1)),
            backend: StorageBackend::Disk(root.into()),
        }
    }

    /// Builder-style chunk-size override (tests use small chunks to
    /// exercise chunk rotation cheaply).
    #[must_use]
    pub fn with_chunk_size(mut self, bytes: u64) -> Self {
        self.chunk_size = bytes;
        self
    }

    /// Builder-style rack-count override.
    #[must_use]
    pub fn with_racks(mut self, racks: usize) -> Self {
        self.racks = racks.max(1);
        self
    }
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig::in_memory(DEFAULT_REPLICATION, DEFAULT_REPLICATION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DfsConfig::default();
        assert_eq!(c.replication, 3);
        assert_eq!(c.chunk_size, 64 * 1024 * 1024);
    }

    #[test]
    fn builders_override() {
        let c = DfsConfig::in_memory(5, 3).with_chunk_size(1024).with_racks(3);
        assert_eq!(c.chunk_size, 1024);
        assert_eq!(c.racks, 3);
        assert_eq!(c.data_nodes, 5);
    }
}
