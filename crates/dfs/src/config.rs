//! DFS configuration.

use logbase_common::config::{DEFAULT_REPLICATION, DEFAULT_SEGMENT_BYTES};
use logbase_common::RetryPolicy;
use std::path::PathBuf;
use std::time::Duration;

/// Background self-healing settings (opt-in).
///
/// When enabled, the DFS runs a repair thread that polls for
/// under-replicated chunks every `interval` and re-replicates them, with
/// at least `min_gap` between consecutive repair sweeps (a crude rate
/// limit so repair traffic cannot swamp foreground I/O).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoRepairConfig {
    /// How often the repair thread polls for under-replicated chunks.
    pub interval: Duration,
    /// Minimum gap between consecutive repair sweeps.
    pub min_gap: Duration,
}

impl Default for AutoRepairConfig {
    fn default() -> Self {
        AutoRepairConfig {
            interval: Duration::from_millis(50),
            min_gap: Duration::from_millis(25),
        }
    }
}

/// Where data-node blocks live.
#[derive(Debug, Clone)]
pub enum StorageBackend {
    /// Blocks held in process memory. Fast; used by unit tests and by
    /// benchmarks that measure algorithmic shape rather than disk cost.
    Memory,
    /// Blocks stored as files under `<root>/<node>/blk_<id>`. Appends are
    /// buffered (no fsync) so the OS page cache plays the role the
    /// cluster's disk caches played in the paper's testbed.
    Disk(PathBuf),
}

/// Configuration for a simulated DFS instance.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Number of data nodes in the cluster.
    pub data_nodes: usize,
    /// Replication factor (paper default: 3).
    pub replication: usize,
    /// Chunk size in bytes (paper default: 64 MB).
    pub chunk_size: u64,
    /// Number of racks the nodes are spread over (for rack-aware
    /// placement). Nodes are assigned round-robin to racks.
    pub racks: usize,
    /// Block storage backend.
    pub backend: StorageBackend,
    /// Retry schedule for transient replica failures on the append and
    /// read paths.
    pub retry: RetryPolicy,
    /// Master seed for the per-node fault injector (deterministic fault
    /// replay). The injector stays dormant until a test arms it with
    /// fault specs, so the seed is free to set unconditionally.
    pub fault_seed: u64,
    /// Background repair thread settings; `None` (the default) leaves
    /// repair to explicit [`crate::Dfs::rereplicate`] calls.
    pub auto_repair: Option<AutoRepairConfig>,
}

impl DfsConfig {
    /// Memory-backed config with `data_nodes` nodes and replication `r`.
    pub fn in_memory(data_nodes: usize, r: usize) -> Self {
        DfsConfig {
            data_nodes,
            replication: r,
            chunk_size: DEFAULT_SEGMENT_BYTES,
            racks: 2.min(data_nodes.max(1)),
            backend: StorageBackend::Memory,
            retry: RetryPolicy::default(),
            fault_seed: 0,
            auto_repair: None,
        }
    }

    /// Disk-backed config rooted at `root`.
    pub fn on_disk(root: impl Into<PathBuf>, data_nodes: usize, r: usize) -> Self {
        DfsConfig {
            data_nodes,
            replication: r,
            chunk_size: DEFAULT_SEGMENT_BYTES,
            racks: 2.min(data_nodes.max(1)),
            backend: StorageBackend::Disk(root.into()),
            retry: RetryPolicy::default(),
            fault_seed: 0,
            auto_repair: None,
        }
    }

    /// Builder-style chunk-size override (tests use small chunks to
    /// exercise chunk rotation cheaply).
    #[must_use]
    pub fn with_chunk_size(mut self, bytes: u64) -> Self {
        self.chunk_size = bytes;
        self
    }

    /// Builder-style rack-count override.
    #[must_use]
    pub fn with_racks(mut self, racks: usize) -> Self {
        self.racks = racks.max(1);
        self
    }

    /// Builder-style retry-policy override.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style fault-seed override. Also seeds the retry jitter so
    /// one seed pins the whole fault/retry schedule.
    #[must_use]
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self.retry = self.retry.with_seed(seed);
        self
    }

    /// Enable background self-healing with the given poll interval
    /// (`min_gap` defaults to half the interval).
    #[must_use]
    pub fn with_auto_repair(mut self, interval: Duration) -> Self {
        self.auto_repair = Some(AutoRepairConfig {
            interval,
            min_gap: interval / 2,
        });
        self
    }
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig::in_memory(DEFAULT_REPLICATION, DEFAULT_REPLICATION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DfsConfig::default();
        assert_eq!(c.replication, 3);
        assert_eq!(c.chunk_size, 64 * 1024 * 1024);
    }

    #[test]
    fn builders_override() {
        let c = DfsConfig::in_memory(5, 3)
            .with_chunk_size(1024)
            .with_racks(3);
        assert_eq!(c.chunk_size, 1024);
        assert_eq!(c.racks, 3);
        assert_eq!(c.data_nodes, 5);
    }
}
