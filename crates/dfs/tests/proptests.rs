//! Property tests: the DFS behaves like a plain byte vector per file,
//! under arbitrary append/read interleavings and chunk sizes.

use logbase_dfs::{Dfs, DfsConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64
        })]

    /// Appends concatenate; positional reads return exactly the model's
    /// bytes, regardless of chunk size (so chunk-boundary handling is
    /// exercised for every offset/length combination).
    #[test]
    fn prop_dfs_file_is_a_byte_vector(
        chunk_size in 1u64..64,
        appends in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 1..16),
        reads in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..16),
    ) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(chunk_size));
        dfs.create("f").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for data in &appends {
            let off = dfs.append("f", data).unwrap();
            prop_assert_eq!(off, model.len() as u64);
            model.extend_from_slice(data);
        }
        prop_assert_eq!(dfs.len("f").unwrap(), model.len() as u64);
        prop_assert_eq!(&dfs.read_all("f").unwrap()[..], &model[..]);
        for (off, len) in reads {
            let off = u64::from(off) % (model.len() as u64 + 1);
            let len = u64::from(len).min(model.len() as u64 - off);
            let got = dfs.read("f", off, len).unwrap();
            prop_assert_eq!(&got[..], &model[off as usize..(off + len) as usize]);
        }
    }

    /// The sequential reader agrees with positional reads at every
    /// step size.
    #[test]
    fn prop_sequential_reader_matches_model(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        step in 1u64..64,
    ) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(32));
        dfs.create("f").unwrap();
        dfs.append("f", &payload).unwrap();
        let mut r = dfs.open_reader("f").unwrap();
        let mut got = Vec::new();
        while r.remaining() > 0 {
            let take = r.remaining().min(step);
            got.extend_from_slice(&r.read_exact(take).unwrap());
        }
        prop_assert_eq!(got, payload);
    }

    /// Any single node failure is invisible to reads at replication ≥ 2.
    #[test]
    fn prop_single_failure_transparent(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        victim in 0u32..3,
    ) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2).with_chunk_size(16));
        dfs.create("f").unwrap();
        dfs.append("f", &payload).unwrap();
        dfs.kill_node(victim);
        // Replication 2 of 3 nodes: one failure may hit 0, 1 or 2 of a
        // chunk's replicas; with r=2 at most one of them — reads succeed.
        prop_assert_eq!(&dfs.read_all("f").unwrap()[..], &payload[..]);
    }
}
