//! Concurrency stress tests for the sharded cache (ISSUE 4): many
//! threads hammering insert/get/invalidate/clear must never blow the
//! byte budget, and hit/miss accounting must add up exactly.

use logbase_common::cache::{Cache, FifoPolicy, LruPolicy, ReplacementPolicy, MIN_SHARD_BYTES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 20_000;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Drive `cache` from THREADS threads with a mixed op stream, then
/// check the budget invariant and exact hit/miss accounting.
fn stress(cache: Arc<Cache<u64, Vec<u8>>>, capacity: u64) {
    let gets = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let gets = &gets;
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let r = splitmix(t.wrapping_mul(0x1000) ^ i);
                    let key = r % 512;
                    match r % 100 {
                        0..=49 => {
                            let _ = cache.get(&key);
                            gets.fetch_add(1, Ordering::Relaxed);
                        }
                        50..=89 => cache.insert(key, vec![0u8; 64], 64 + (r % 192)),
                        90..=98 => cache.invalidate(&key),
                        _ => cache.clear(),
                    }
                    // The budget is a hard invariant at every moment,
                    // not just at quiescence.
                    assert!(
                        cache.used_bytes() <= capacity,
                        "budget blown mid-stress: {} > {capacity}",
                        cache.used_bytes()
                    );
                }
            });
        }
    });
    let (hits, misses) = cache.stats();
    assert_eq!(
        hits + misses,
        gets.load(Ordering::Relaxed),
        "hit+miss accounting diverged from the number of gets"
    );
    assert!(cache.used_bytes() <= capacity);
    assert!(cache.len() <= 512);
}

#[test]
fn stress_sharded_lru() {
    let capacity = 8 * MIN_SHARD_BYTES;
    let cache = Arc::new(Cache::lru_sharded(capacity, 8));
    assert_eq!(cache.shard_count(), 8);
    stress(cache, capacity);
}

#[test]
fn stress_single_shard_lru() {
    let capacity = MIN_SHARD_BYTES;
    let cache = Arc::new(Cache::lru_sharded(capacity, 1));
    assert_eq!(cache.shard_count(), 1);
    stress(cache, capacity);
}

#[test]
fn stress_sharded_fifo() {
    let capacity = 4 * MIN_SHARD_BYTES;
    let cache = Arc::new(Cache::with_policy_factory(capacity, 4, || {
        Box::new(FifoPolicy::default())
    }));
    stress(cache, capacity);
}

/// Sharded caches keep per-shard LRU semantics: a key that is re-read
/// survives eviction pressure from keys in the same shard.
#[test]
fn sharded_get_insert_round_trip() {
    let cache: Cache<u64, Vec<u8>> = Cache::lru_sharded(16 * MIN_SHARD_BYTES, 16);
    for k in 0..10_000u64 {
        cache.insert(k, k.to_le_bytes().to_vec(), 64);
    }
    let mut resident = 0;
    for k in 0..10_000u64 {
        if let Some(v) = cache.get(&k) {
            assert_eq!(v, k.to_le_bytes().to_vec(), "wrong value for key {k}");
            resident += 1;
        }
    }
    assert_eq!(resident, cache.len());
    assert!(cache.used_bytes() <= 16 * MIN_SHARD_BYTES);
}

/// Regression (ISSUE 4): a hot-key read storm on a cache far under its
/// byte budget must not grow policy state without bound. Indirectly
/// observable through the policy; here we drive the real cache hard and
/// make sure the recency queue compaction kicks in (the direct queue
/// length check lives in the cache unit tests).
#[test]
fn hot_key_storm_stays_bounded() {
    let mut policy: LruPolicy<u64> = LruPolicy::default();
    for k in 0..64u64 {
        policy.on_insert(&k);
    }
    for i in 0..1_000_000u64 {
        policy.on_access(&(i % 4));
    }
    assert!(
        policy.queue_len() <= 2 * 64 + 1,
        "queue leaked to {} entries",
        policy.queue_len()
    );
}
