//! Length-prefixed, CRC32-checked framing and primitive codecs.
//!
//! Both the log repository and SSTable blocks store variable-length
//! payloads. A frame is:
//!
//! ```text
//! +----------+----------+==================+
//! | len: u32 | crc: u32 | payload (len) .. |
//! +----------+----------+==================+
//! ```
//!
//! `crc` covers the payload only; `len` corruption is caught by bounds
//! checks plus the subsequent CRC failure. All integers are little-endian.

use crate::error::{Error, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Size of the frame header (length + crc).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default upper bound on a single frame's payload (16 MiB). A torn or
/// hostile length prefix can announce up to 4 GiB; every decoder that
/// allocates based on the prefix must bound it first.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Append one frame around `payload` to `dst`. Returns the framed length.
pub fn encode_frame(dst: &mut BytesMut, payload: &[u8]) -> usize {
    let crc = crc32fast::hash(payload);
    dst.reserve(FRAME_HEADER_LEN + payload.len());
    dst.put_u32_le(payload.len() as u32);
    dst.put_u32_le(crc);
    dst.put_slice(payload);
    FRAME_HEADER_LEN + payload.len()
}

/// Append one frame whose payload is produced by `fill` writing directly
/// into `dst` — the allocation-free twin of [`encode_frame`]. The header
/// is reserved up front and backfilled with the payload length and CRC
/// once `fill` returns, so hot paths (the group-commit encoder) never
/// materialize the payload in a side buffer. Returns the framed length.
pub fn encode_frame_with<F>(dst: &mut BytesMut, fill: F) -> usize
where
    F: FnOnce(&mut BytesMut),
{
    let start = dst.len();
    dst.put_u32_le(0);
    dst.put_u32_le(0);
    fill(dst);
    let payload_len = dst.len() - start - FRAME_HEADER_LEN;
    let crc = crc32fast::hash(&dst[start + FRAME_HEADER_LEN..]);
    dst[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    dst[start + 4..start + FRAME_HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
    FRAME_HEADER_LEN + payload_len
}

/// Decode one frame starting at the front of `src`.
///
/// On success returns the payload and the total number of bytes consumed.
/// `context` names the source (for error messages).
pub fn decode_frame(src: &[u8], context: &str) -> Result<(Bytes, usize)> {
    decode_frame_bounded(src, MAX_FRAME_LEN.max(src.len()), context)
}

/// [`decode_frame`] with an explicit payload-length bound.
///
/// A length prefix above `max_len` fails with [`Error::FrameTooLarge`]
/// *before* any length-derived allocation or read — the defense a
/// streaming transport needs, where "skip ahead `len` bytes" means
/// allocating or blocking for that many bytes.
pub fn decode_frame_bounded(src: &[u8], max_len: usize, context: &str) -> Result<(Bytes, usize)> {
    if src.len() < FRAME_HEADER_LEN {
        return Err(Error::Corruption(format!(
            "{context}: truncated frame header ({} bytes)",
            src.len()
        )));
    }
    let mut hdr = &src[..FRAME_HEADER_LEN];
    let len = hdr.get_u32_le() as usize;
    let crc = hdr.get_u32_le();
    if len > max_len {
        return Err(Error::FrameTooLarge {
            announced: len as u64,
            max: max_len as u64,
        });
    }
    let end = FRAME_HEADER_LEN
        .checked_add(len)
        .ok_or_else(|| Error::Corruption(format!("{context}: frame length overflow")))?;
    if src.len() < end {
        return Err(Error::Corruption(format!(
            "{context}: truncated frame payload (want {len}, have {})",
            src.len() - FRAME_HEADER_LEN
        )));
    }
    let payload = &src[FRAME_HEADER_LEN..end];
    let actual = crc32fast::hash(payload);
    if actual != crc {
        return Err(Error::ChecksumMismatch {
            context: context.to_string(),
            expected: crc,
            actual,
        });
    }
    Ok((Bytes::copy_from_slice(payload), end))
}

/// Write a `u32` length-prefixed byte string.
pub fn put_bytes(dst: &mut BytesMut, bytes: &[u8]) {
    dst.put_u32_le(bytes.len() as u32);
    dst.put_slice(bytes);
}

/// Read a `u32` length-prefixed byte string written by [`put_bytes`].
pub fn get_bytes(src: &mut Bytes, context: &str) -> Result<Bytes> {
    if src.remaining() < 4 {
        return Err(Error::Corruption(format!(
            "{context}: truncated length prefix"
        )));
    }
    let len = src.get_u32_le() as usize;
    if src.remaining() < len {
        return Err(Error::Corruption(format!(
            "{context}: byte string truncated (want {len}, have {})",
            src.remaining()
        )));
    }
    Ok(src.split_to(len))
}

/// Read a `u64`, failing with a corruption error on underflow.
pub fn get_u64(src: &mut Bytes, context: &str) -> Result<u64> {
    if src.remaining() < 8 {
        return Err(Error::Corruption(format!("{context}: truncated u64")));
    }
    Ok(src.get_u64_le())
}

/// Read a `u32`, failing with a corruption error on underflow.
pub fn get_u32(src: &mut Bytes, context: &str) -> Result<u32> {
    if src.remaining() < 4 {
        return Err(Error::Corruption(format!("{context}: truncated u32")));
    }
    Ok(src.get_u32_le())
}

/// Read a `u16`, failing with a corruption error on underflow.
pub fn get_u16(src: &mut Bytes, context: &str) -> Result<u16> {
    if src.remaining() < 2 {
        return Err(Error::Corruption(format!("{context}: truncated u16")));
    }
    Ok(src.get_u16_le())
}

/// Read a single byte, failing with a corruption error on underflow.
pub fn get_u8(src: &mut Bytes, context: &str) -> Result<u8> {
    if src.remaining() < 1 {
        return Err(Error::Corruption(format!("{context}: truncated u8")));
    }
    Ok(src.get_u8())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = BytesMut::new();
        let n = encode_frame(&mut buf, b"hello world");
        assert_eq!(n, FRAME_HEADER_LEN + 11);
        let (payload, consumed) = decode_frame(&buf, "test").unwrap();
        assert_eq!(&payload[..], b"hello world");
        assert_eq!(consumed, n);
    }

    #[test]
    fn frame_with_closure_matches_buffered_encoding() {
        let mut a = BytesMut::new();
        let na = encode_frame(&mut a, b"same payload");
        let mut b = BytesMut::new();
        b.put_slice(b"prefix"); // backfill must be start-relative
        let nb = encode_frame_with(&mut b, |dst| dst.put_slice(b"same payload"));
        assert_eq!(na, nb);
        assert_eq!(&a[..], &b[6..]);
        let (payload, consumed) = decode_frame(&b[6..], "test").unwrap();
        assert_eq!(&payload[..], b"same payload");
        assert_eq!(consumed, nb);
    }

    #[test]
    fn frame_empty_payload() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"");
        let (payload, consumed) = decode_frame(&buf, "test").unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, FRAME_HEADER_LEN);
    }

    #[test]
    fn frame_detects_flipped_bit() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"payload");
        let mut bytes = buf.to_vec();
        bytes[FRAME_HEADER_LEN + 2] ^= 0x40;
        let err = decode_frame(&bytes, "test").unwrap_err();
        assert!(matches!(err, Error::ChecksumMismatch { .. }));
    }

    #[test]
    fn frame_truncated_header() {
        let err = decode_frame(&[1, 2, 3], "test").unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn frame_truncated_payload() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"long enough payload");
        let err = decode_frame(&buf[..buf.len() - 4], "test").unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_payload_checks() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"payload");
        let mut bytes = buf.to_vec();
        // Corrupt the length prefix to announce ~3.7 GiB.
        bytes[..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        let err = decode_frame_bounded(&bytes, 1 << 20, "test").unwrap_err();
        assert!(
            matches!(err, Error::FrameTooLarge { announced, max }
                if announced == 0xDEAD_BEEF && max == 1 << 20),
            "wrong error: {err}"
        );
        // The unbounded entry point still refuses lengths beyond the
        // workspace bound once the buffer itself is bigger than it.
        let err = decode_frame_bounded(&bytes, MAX_FRAME_LEN, "test").unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { .. }));
    }

    #[test]
    fn bounded_decode_accepts_frames_at_the_bound() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, &[7u8; 64]);
        let (payload, _) = decode_frame_bounded(&buf, 64, "test").unwrap();
        assert_eq!(payload.len(), 64);
        let err = decode_frame_bounded(&buf, 63, "test").unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { .. }));
    }

    #[test]
    fn consecutive_frames_decode_in_sequence() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"one");
        encode_frame(&mut buf, b"two");
        let all = buf.freeze();
        let (p1, n1) = decode_frame(&all, "t").unwrap();
        let (p2, n2) = decode_frame(&all[n1..], "t").unwrap();
        assert_eq!(&p1[..], b"one");
        assert_eq!(&p2[..], b"two");
        assert_eq!(n1 + n2, all.len());
    }

    #[test]
    fn bytes_round_trip() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"abc");
        put_bytes(&mut buf, b"");
        let mut src = buf.freeze();
        assert_eq!(&get_bytes(&mut src, "t").unwrap()[..], b"abc");
        assert!(get_bytes(&mut src, "t").unwrap().is_empty());
        assert!(get_bytes(&mut src, "t").is_err());
    }

    #[test]
    fn primitive_underflow_errors() {
        let mut empty = Bytes::new();
        assert!(get_u64(&mut empty.clone(), "t").is_err());
        assert!(get_u32(&mut empty.clone(), "t").is_err());
        assert!(get_u16(&mut empty.clone(), "t").is_err());
        assert!(get_u8(&mut empty, "t").is_err());
    }
}
