//! Byte-budgeted, hash-sharded cache with pluggable replacement.
//!
//! §3.6.2: "we employ the LRU strategy ... However, we also design the
//! replacement strategy as an abstracted interface so that users can plug
//! in new strategies that fit their application access patterns."
//!
//! [`Cache`] evicts victims chosen by a [`ReplacementPolicy`] once the
//! byte budget is exceeded. LogBase's read buffer and the baselines'
//! block caches are both instances of it.
//!
//! # Sharding
//!
//! A cache is split into N hash-partitioned shards, each with its own
//! mutex, policy instance and slice of the byte budget, so concurrent
//! readers on different keys do not serialize on one global lock. The
//! default shard count follows the machine's available parallelism;
//! small budgets are clamped to fewer shards (at least
//! [`MIN_SHARD_BYTES`] each) so tiny caches keep exact global
//! replacement order. Correctness does not depend on the shard count:
//! the read buffer's version check (§3.6.2) makes a stale or evicted
//! entry a miss, never a wrong answer.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest per-shard budget the constructors will create. Requested
/// shard counts are clamped so every shard gets at least this many
/// bytes, keeping small caches (unit tests, tiny budgets) deterministic
/// single-shard instances with exact global replacement order.
pub const MIN_SHARD_BYTES: u64 = 64 * 1024;

/// Default shard count: the machine's available parallelism.
pub fn default_shard_count() -> usize {
    crate::config::default_parallelism()
}

/// Non-cryptographic multiply-rotate hasher (the FxHash construction)
/// used only for shard selection. Collisions are harmless — a skewed
/// pick just loads one shard more — so we trade SipHash's resistance
/// for a few instructions per op.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Chooses eviction victims. Implementations are driven by the owning
/// shard under its lock, so they need no internal synchronization.
pub trait ReplacementPolicy<K>: Send {
    /// A key was inserted.
    fn on_insert(&mut self, key: &K);
    /// A key was read (cache hit).
    fn on_access(&mut self, key: &K);
    /// A key was removed (either evicted or explicitly invalidated).
    fn on_remove(&mut self, key: &K);
    /// Choose the next victim. Must return a currently resident key
    /// (the cache removes it and then calls `on_remove`).
    fn victim(&mut self) -> Option<K>;
}

/// Least-recently-used replacement.
///
/// Implemented as a recency sequence: each access stamps the key with an
/// increasing counter; the victim is the resident key with the smallest
/// stamp. A lazy queue keeps amortized O(1)-ish victim selection. Stale
/// queue entries (re-accessed or removed keys) are dropped both by
/// `victim()` and by periodic compaction, so the queue stays within a
/// constant factor of the resident set even when nothing is ever
/// evicted (hot-key workloads under budget).
pub struct LruPolicy<K> {
    stamps: HashMap<K, u64>,
    queue: VecDeque<(u64, K)>,
    clock: u64,
}

impl<K> Default for LruPolicy<K> {
    fn default() -> Self {
        LruPolicy {
            stamps: HashMap::new(),
            queue: VecDeque::new(),
            clock: 0,
        }
    }
}

impl<K: Eq + Hash + Clone + Send> LruPolicy<K> {
    /// Current length of the lazy recency queue (diagnostics / tests).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Drop stale queue entries once the queue outgrows the resident
    /// set by 2×. Each key has exactly one current stamp and the queue
    /// is pushed in stamp order, so retaining current entries preserves
    /// recency order. Amortized O(1) per access: a compaction pass is
    /// O(queue), triggered only after O(queue) pushes.
    fn maybe_compact(&mut self) {
        if self.queue.len() > 16 && self.queue.len() > 2 * self.stamps.len() {
            let stamps = &self.stamps;
            self.queue.retain(|(s, k)| stamps.get(k) == Some(s));
        }
    }
}

impl<K: Eq + Hash + Clone + Send> ReplacementPolicy<K> for LruPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        self.clock += 1;
        self.stamps.insert(key.clone(), self.clock);
        self.queue.push_back((self.clock, key.clone()));
        self.maybe_compact();
    }

    fn on_access(&mut self, key: &K) {
        self.clock += 1;
        if let Some(s) = self.stamps.get_mut(key) {
            *s = self.clock;
        }
        self.queue.push_back((self.clock, key.clone()));
        self.maybe_compact();
    }

    fn on_remove(&mut self, key: &K) {
        self.stamps.remove(key);
    }

    fn victim(&mut self) -> Option<K> {
        while let Some((stamp, key)) = self.queue.pop_front() {
            // Skip stale queue entries (key re-accessed or removed since).
            if self.stamps.get(&key) == Some(&stamp) {
                return Some(key);
            }
        }
        None
    }
}

/// First-in-first-out replacement: ignores accesses.
pub struct FifoPolicy<K> {
    queue: VecDeque<K>,
    resident: HashMap<K, usize>,
}

impl<K> Default for FifoPolicy<K> {
    fn default() -> Self {
        FifoPolicy {
            queue: VecDeque::new(),
            resident: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Clone + Send> ReplacementPolicy<K> for FifoPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        *self.resident.entry(key.clone()).or_insert(0) += 1;
        self.queue.push_back(key.clone());
    }

    fn on_access(&mut self, _key: &K) {}

    fn on_remove(&mut self, key: &K) {
        if let Some(n) = self.resident.get_mut(key) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.resident.remove(key);
            }
        }
    }

    fn victim(&mut self) -> Option<K> {
        while let Some(key) = self.queue.pop_front() {
            if self.resident.get(&key).copied().unwrap_or(0) > 0 {
                return Some(key);
            }
        }
        None
    }
}

struct CacheInner<K, V> {
    map: HashMap<K, (V, u64)>,
    policy: Box<dyn ReplacementPolicy<K> + 'static>,
    used_bytes: u64,
}

/// One hash partition: its own lock, policy and byte budget.
struct Shard<K, V> {
    inner: Mutex<CacheInner<K, V>>,
    capacity_bytes: u64,
}

/// A byte-budgeted, hash-sharded cache.
pub struct Cache<K, V> {
    shards: Vec<Shard<K, V>>,
    capacity_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone + Send + 'static, V: Clone> Cache<K, V> {
    /// Cache with an LRU policy, the given byte budget and the default
    /// shard count ([`default_shard_count`], clamped for small budgets).
    pub fn lru(capacity_bytes: u64) -> Self {
        Self::lru_sharded(capacity_bytes, default_shard_count())
    }

    /// Cache with an LRU policy and an explicit shard count (clamped so
    /// every shard gets at least [`MIN_SHARD_BYTES`]).
    pub fn lru_sharded(capacity_bytes: u64, shards: usize) -> Self {
        Self::with_policy_factory(capacity_bytes, shards, || Box::new(LruPolicy::default()))
    }

    /// Single-shard cache with an explicit policy instance. Exact global
    /// replacement order — use for custom policies or when determinism
    /// matters more than concurrency.
    pub fn with_policy(capacity_bytes: u64, policy: Box<dyn ReplacementPolicy<K>>) -> Self {
        Cache {
            shards: vec![Shard {
                inner: Mutex::new(CacheInner {
                    map: HashMap::new(),
                    policy,
                    used_bytes: 0,
                }),
                capacity_bytes,
            }],
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Sharded cache with one policy instance per shard, built by
    /// `factory`. The requested shard count is clamped to ≥ 1 and to at
    /// most `capacity_bytes / MIN_SHARD_BYTES`; the budget is split
    /// evenly (remainder to the first shards), so the sum of per-shard
    /// budgets is exactly `capacity_bytes` and the global byte invariant
    /// follows from the per-shard one.
    pub fn with_policy_factory<F>(capacity_bytes: u64, shards: usize, factory: F) -> Self
    where
        F: Fn() -> Box<dyn ReplacementPolicy<K>>,
    {
        let n = effective_shards(capacity_bytes, shards);
        let base = capacity_bytes / n as u64;
        let rem = capacity_bytes % n as u64;
        let shards = (0..n)
            .map(|i| Shard {
                inner: Mutex::new(CacheInner {
                    map: HashMap::new(),
                    policy: factory(),
                    used_bytes: 0,
                }),
                capacity_bytes: base + u64::from((i as u64) < rem),
            })
            .collect();
        Cache {
            shards,
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards this cache was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total byte budget across all shards.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        // Shard selection is on every cache op's fast path; a SipHash
        // DefaultHasher here costs more than the lock it avoids. An
        // FxHash-style multiply is enough — the pick only needs to be
        // consistent, not collision-resistant.
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // Multiply-shift range mapping (Lemire): uses the hash's high
        // bits and avoids a hardware divide on the fast path.
        let idx = ((h.finish() as u128 * self.shards.len() as u128) >> 64) as usize;
        &self.shards[idx]
    }

    /// Look up `key`, updating hit/miss statistics and recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.shard(key).inner.lock();
        match inner.map.get(key) {
            Some((v, _)) => {
                let v = v.clone();
                inner.policy.on_access(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `key` with an accounted size of `bytes`, evicting victims
    /// as needed. Entries larger than the owning shard's budget are not
    /// admitted. `used_bytes <= capacity_bytes` is a hard invariant:
    /// even a replacement policy that has desynced from the resident map
    /// (no victim while over budget) cannot blow it — the cache falls
    /// back to evicting an arbitrary resident entry.
    pub fn insert(&self, key: K, value: V, bytes: u64) {
        let shard = self.shard(&key);
        if bytes > shard.capacity_bytes {
            return;
        }
        let mut inner = shard.inner.lock();
        if let Some((_, old_bytes)) = inner.map.remove(&key) {
            inner.used_bytes -= old_bytes;
            inner.policy.on_remove(&key);
        }
        while inner.used_bytes + bytes > shard.capacity_bytes {
            if let Some(victim) = inner.policy.victim() {
                let removed = inner.map.remove(&victim);
                debug_assert!(
                    removed.is_some(),
                    "replacement policy returned a non-resident victim (policy/map desync)"
                );
                if let Some((_, vb)) = removed {
                    inner.used_bytes -= vb;
                }
                inner.policy.on_remove(&victim);
            } else if let Some(fallback) = inner.map.keys().next().cloned() {
                // Policy is out of victims while residents remain: evict
                // arbitrarily so the byte budget holds regardless.
                if let Some((_, vb)) = inner.map.remove(&fallback) {
                    inner.used_bytes -= vb;
                }
                inner.policy.on_remove(&fallback);
            } else {
                // Empty shard: admission check guarantees bytes fit.
                break;
            }
        }
        inner.map.insert(key.clone(), (value, bytes));
        inner.used_bytes += bytes;
        inner.policy.on_insert(&key);
        debug_assert!(
            inner.used_bytes <= shard.capacity_bytes,
            "shard byte budget exceeded after insert"
        );
    }

    /// Drop `key` if resident.
    pub fn invalidate(&self, key: &K) {
        let mut inner = self.shard(key).inner.lock();
        if let Some((_, bytes)) = inner.map.remove(key) {
            inner.used_bytes -= bytes;
            inner.policy.on_remove(key);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            let keys: Vec<K> = inner.map.keys().cloned().collect();
            for k in &keys {
                inner.policy.on_remove(k);
            }
            inner.map.clear();
            inner.used_bytes = 0;
        }
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().map.len()).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently accounted across all shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.inner.lock().used_bytes).sum()
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Clamp a requested shard count: at least 1, at most what gives every
/// shard [`MIN_SHARD_BYTES`] of budget.
fn effective_shards(capacity_bytes: u64, requested: usize) -> usize {
    let max_by_budget = (capacity_bytes / MIN_SHARD_BYTES).max(1);
    requested.clamp(1, max_by_budget.min(usize::MAX as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let c: Cache<u32, String> = Cache::lru(100);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into(), 10);
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn small_budgets_collapse_to_one_shard() {
        let c: Cache<u32, u32> = Cache::lru_sharded(100, 64);
        assert_eq!(c.shard_count(), 1);
        let big: Cache<u32, u32> = Cache::lru_sharded(64 * MIN_SHARD_BYTES, 8);
        assert_eq!(big.shard_count(), 8);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: Cache<u32, u32> = Cache::lru(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(&1);
        c.insert(4, 4, 10);
        assert!(c.get(&1).is_some());
        assert!(c.get(&2).is_none());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let c: Cache<u32, u32> = Cache::with_policy(30, Box::new(FifoPolicy::default()));
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        c.get(&1); // does not protect 1 under FIFO
        c.insert(4, 4, 10);
        assert!(c.get(&1).is_none());
        assert!(c.get(&2).is_some());
    }

    #[test]
    fn sharded_fifo_via_factory() {
        let c: Cache<u32, u32> =
            Cache::with_policy_factory(8 * MIN_SHARD_BYTES, 8, || Box::new(FifoPolicy::default()));
        assert_eq!(c.shard_count(), 8);
        for i in 0..1000 {
            c.insert(i, i, 1000);
        }
        assert!(c.used_bytes() <= 8 * MIN_SHARD_BYTES);
        assert!(!c.is_empty());
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let c: Cache<u32, u32> = Cache::lru(10);
        c.insert(1, 1, 11);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_size_accounting() {
        let c: Cache<u32, u32> = Cache::lru(100);
        c.insert(1, 1, 60);
        c.insert(1, 2, 10);
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.get(&1), Some(2));
    }

    #[test]
    fn invalidate_and_clear() {
        let c: Cache<u32, u32> = Cache::lru(100);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.invalidate(&1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn eviction_makes_room_for_large_entries() {
        let c: Cache<u32, u32> = Cache::lru(100);
        for i in 0..10 {
            c.insert(i, i, 10);
        }
        c.insert(99, 99, 95);
        assert!(c.get(&99).is_some());
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c: std::sync::Arc<Cache<u64, u64>> = std::sync::Arc::new(Cache::lru(1000));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u64 {
                        c.insert(t * 1000 + i, i, 8);
                        let _ = c.get(&(t * 1000 + i / 2));
                    }
                });
            }
        });
        assert!(c.used_bytes() <= 1000);
    }

    /// Regression (ISSUE 4): the LRU recency queue must stay bounded on
    /// a hot-key workload that never evicts — every `on_access` pushes a
    /// queue entry and only `victim()` used to drain them.
    #[test]
    fn lru_queue_bounded_under_hot_key_hits() {
        let mut p: LruPolicy<u32> = LruPolicy::default();
        for k in 0..8 {
            p.on_insert(&k);
        }
        for _ in 0..1_000_000u32 {
            p.on_access(&3);
        }
        assert!(
            p.queue_len() <= 2 * 8 + 1,
            "recency queue leaked: {} entries for 8 resident keys",
            p.queue_len()
        );
        // Recency order survives compaction: 3 is hottest, 0 is coldest.
        assert_eq!(p.victim(), Some(0));
    }

    /// A policy that has lost track of every resident entry: `victim()`
    /// always returns `None`. Models a desynced custom policy.
    struct AmnesiacPolicy;
    impl ReplacementPolicy<u32> for AmnesiacPolicy {
        fn on_insert(&mut self, _: &u32) {}
        fn on_access(&mut self, _: &u32) {}
        fn on_remove(&mut self, _: &u32) {}
        fn victim(&mut self) -> Option<u32> {
            None
        }
    }

    /// Regression (ISSUE 4): a desynced policy must not blow the byte
    /// budget — the cache falls back to arbitrary eviction.
    #[test]
    fn budget_holds_with_desynced_policy() {
        let c: Cache<u32, u32> = Cache::with_policy(100, Box::new(AmnesiacPolicy));
        for i in 0..50 {
            c.insert(i, i, 30);
            assert!(
                c.used_bytes() <= 100,
                "budget blown at insert {i}: {} bytes",
                c.used_bytes()
            );
        }
        assert!(!c.is_empty());
    }

    #[test]
    fn lru_per_shard_in_sharded_cache() {
        // 2 shards × MIN_SHARD_BYTES each; fill beyond budget and check
        // the invariant holds per shard (thus globally).
        let c: Cache<u64, Vec<u8>> = Cache::lru_sharded(2 * MIN_SHARD_BYTES, 2);
        assert_eq!(c.shard_count(), 2);
        for i in 0..1000u64 {
            c.insert(i, vec![0u8; 512], 512);
        }
        assert!(c.used_bytes() <= 2 * MIN_SHARD_BYTES);
    }
}
