//! Byte-budgeted cache with pluggable replacement.
//!
//! §3.6.2: "we employ the LRU strategy ... However, we also design the
//! replacement strategy as an abstracted interface so that users can plug
//! in new strategies that fit their application access patterns."
//!
//! [`Cache`] evicts victims chosen by a [`ReplacementPolicy`] once the
//! byte budget is exceeded. LogBase's read buffer and the baselines'
//! block caches are both instances of it.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// Chooses eviction victims. Implementations are driven by the cache
/// under its lock, so they need no internal synchronization.
pub trait ReplacementPolicy<K>: Send {
    /// A key was inserted.
    fn on_insert(&mut self, key: &K);
    /// A key was read (cache hit).
    fn on_access(&mut self, key: &K);
    /// A key was removed (either evicted or explicitly invalidated).
    fn on_remove(&mut self, key: &K);
    /// Choose the next victim. Must return a currently resident key
    /// (the cache removes it and then calls `on_remove`).
    fn victim(&mut self) -> Option<K>;
}

/// Least-recently-used replacement.
///
/// Implemented as a recency sequence: each access stamps the key with an
/// increasing counter; the victim is the resident key with the smallest
/// stamp. A lazy queue keeps amortized O(1)-ish victim selection.
pub struct LruPolicy<K> {
    stamps: HashMap<K, u64>,
    queue: VecDeque<(u64, K)>,
    clock: u64,
}

impl<K> Default for LruPolicy<K> {
    fn default() -> Self {
        LruPolicy {
            stamps: HashMap::new(),
            queue: VecDeque::new(),
            clock: 0,
        }
    }
}

impl<K: Eq + Hash + Clone + Send> ReplacementPolicy<K> for LruPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        self.clock += 1;
        self.stamps.insert(key.clone(), self.clock);
        self.queue.push_back((self.clock, key.clone()));
    }

    fn on_access(&mut self, key: &K) {
        self.clock += 1;
        if let Some(s) = self.stamps.get_mut(key) {
            *s = self.clock;
        }
        self.queue.push_back((self.clock, key.clone()));
    }

    fn on_remove(&mut self, key: &K) {
        self.stamps.remove(key);
    }

    fn victim(&mut self) -> Option<K> {
        while let Some((stamp, key)) = self.queue.pop_front() {
            // Skip stale queue entries (key re-accessed or removed since).
            if self.stamps.get(&key) == Some(&stamp) {
                return Some(key);
            }
        }
        None
    }
}

/// First-in-first-out replacement: ignores accesses.
pub struct FifoPolicy<K> {
    queue: VecDeque<K>,
    resident: HashMap<K, usize>,
}

impl<K> Default for FifoPolicy<K> {
    fn default() -> Self {
        FifoPolicy {
            queue: VecDeque::new(),
            resident: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Clone + Send> ReplacementPolicy<K> for FifoPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        *self.resident.entry(key.clone()).or_insert(0) += 1;
        self.queue.push_back(key.clone());
    }

    fn on_access(&mut self, _key: &K) {}

    fn on_remove(&mut self, key: &K) {
        if let Some(n) = self.resident.get_mut(key) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.resident.remove(key);
            }
        }
    }

    fn victim(&mut self) -> Option<K> {
        while let Some(key) = self.queue.pop_front() {
            if self.resident.get(&key).copied().unwrap_or(0) > 0 {
                return Some(key);
            }
        }
        None
    }
}

struct CacheInner<K, V> {
    map: HashMap<K, (V, u64)>,
    policy: Box<dyn ReplacementPolicy<K> + 'static>,
    used_bytes: u64,
}

/// A byte-budgeted cache.
pub struct Cache<K, V> {
    inner: Mutex<CacheInner<K, V>>,
    capacity_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone + Send + 'static, V: Clone> Cache<K, V> {
    /// Cache with an LRU policy and the given byte budget.
    pub fn lru(capacity_bytes: u64) -> Self {
        Self::with_policy(capacity_bytes, Box::new(LruPolicy::default()))
    }

    /// Cache with an explicit policy.
    pub fn with_policy(capacity_bytes: u64, policy: Box<dyn ReplacementPolicy<K>>) -> Self {
        Cache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                policy,
                used_bytes: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, updating hit/miss statistics and recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        match inner.map.get(key) {
            Some((v, _)) => {
                let v = v.clone();
                inner.policy.on_access(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `key` with an accounted size of `bytes`, evicting victims
    /// as needed. Entries larger than the whole budget are not admitted.
    pub fn insert(&self, key: K, value: V, bytes: u64) {
        if bytes > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some((_, old_bytes)) = inner.map.remove(&key) {
            inner.used_bytes -= old_bytes;
            inner.policy.on_remove(&key);
        }
        while inner.used_bytes + bytes > self.capacity_bytes {
            let Some(victim) = inner.policy.victim() else {
                break;
            };
            if let Some((_, vb)) = inner.map.remove(&victim) {
                inner.used_bytes -= vb;
            }
            inner.policy.on_remove(&victim);
        }
        inner.map.insert(key.clone(), (value, bytes));
        inner.used_bytes += bytes;
        inner.policy.on_insert(&key);
    }

    /// Drop `key` if resident.
    pub fn invalidate(&self, key: &K) {
        let mut inner = self.inner.lock();
        if let Some((_, bytes)) = inner.map.remove(key) {
            inner.used_bytes -= bytes;
            inner.policy.on_remove(key);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let keys: Vec<K> = inner.map.keys().cloned().collect();
        for k in &keys {
            inner.policy.on_remove(k);
        }
        inner.map.clear();
        inner.used_bytes = 0;
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently accounted.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let c: Cache<u32, String> = Cache::lru(100);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into(), 10);
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: Cache<u32, u32> = Cache::lru(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(&1);
        c.insert(4, 4, 10);
        assert!(c.get(&1).is_some());
        assert!(c.get(&2).is_none());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let c: Cache<u32, u32> = Cache::with_policy(30, Box::new(FifoPolicy::default()));
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        c.get(&1); // does not protect 1 under FIFO
        c.insert(4, 4, 10);
        assert!(c.get(&1).is_none());
        assert!(c.get(&2).is_some());
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let c: Cache<u32, u32> = Cache::lru(10);
        c.insert(1, 1, 11);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_size_accounting() {
        let c: Cache<u32, u32> = Cache::lru(100);
        c.insert(1, 1, 60);
        c.insert(1, 2, 10);
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.get(&1), Some(2));
    }

    #[test]
    fn invalidate_and_clear() {
        let c: Cache<u32, u32> = Cache::lru(100);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.invalidate(&1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn eviction_makes_room_for_large_entries() {
        let c: Cache<u32, u32> = Cache::lru(100);
        for i in 0..10 {
            c.insert(i, i, 10);
        }
        c.insert(99, 99, 95);
        assert!(c.get(&99).is_some());
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c: std::sync::Arc<Cache<u64, u64>> = std::sync::Arc::new(Cache::lru(1000));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u64 {
                        c.insert(t * 1000 + i, i, 8);
                        let _ = c.get(&(t * 1000 + i / 2));
                    }
                });
            }
        });
        assert!(c.used_bytes() <= 1000);
    }
}
