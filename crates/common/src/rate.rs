//! Token-bucket rate limiter for background I/O.
//!
//! The compaction scheduler moves bulk bytes through the same DFS the
//! foreground serves reads and writes from, so its traffic is metered:
//! every background read or append first acquires that many byte-tokens
//! from a [`RateLimiter`]. Tokens refill continuously at the configured
//! rate up to a burst capacity; an empty bucket makes the *background*
//! caller sleep, never the foreground (which simply does not hold a
//! limiter).
//!
//! The bucket deliberately admits one oversized request when at full
//! capacity (debt model): a 4 MiB segment write against a 1 MiB bucket
//! proceeds once the bucket is full and drives the balance negative,
//! and the caller then pays the debt off before its next acquire. This
//! keeps single requests larger than the burst from deadlocking.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// A continuously-refilling byte token bucket. Clone-free: share it
/// behind an `Arc`.
pub struct RateLimiter {
    /// Refill rate, bytes per second.
    rate: f64,
    /// Maximum token balance (burst size), bytes.
    capacity: f64,
    state: Mutex<Bucket>,
}

struct Bucket {
    /// Current balance; negative while paying off an oversized request.
    tokens: f64,
    last_refill: Instant,
}

impl RateLimiter {
    /// A bucket refilling at `bytes_per_sec` with a burst of
    /// `burst_bytes` (clamped to at least one byte each so the bucket
    /// always drains).
    pub fn new(bytes_per_sec: u64, burst_bytes: u64) -> Self {
        RateLimiter {
            rate: (bytes_per_sec.max(1)) as f64,
            capacity: (burst_bytes.max(1)) as f64,
            state: Mutex::new(Bucket {
                tokens: (burst_bytes.max(1)) as f64,
                last_refill: Instant::now(),
            }),
        }
    }

    /// A bucket with a burst of one second's worth of tokens.
    pub fn per_sec(bytes_per_sec: u64) -> Self {
        Self::new(bytes_per_sec, bytes_per_sec)
    }

    /// The configured refill rate in bytes per second.
    pub fn rate(&self) -> u64 {
        self.rate as u64
    }

    /// Take `bytes` tokens, sleeping until the bucket covers them.
    /// Returns the time spent waiting (zero when the bucket had room).
    pub fn acquire(&self, bytes: u64) -> Duration {
        let mut waited = Duration::ZERO;
        loop {
            let wait = {
                let mut b = self.state.lock();
                self.refill(&mut b);
                // Admit when the balance is at least min(bytes, capacity):
                // an oversized request proceeds from a full bucket and
                // leaves the balance negative (debt).
                let need = (bytes as f64).min(self.capacity);
                if b.tokens >= need {
                    b.tokens -= bytes as f64;
                    return waited;
                }
                Duration::from_secs_f64(((need - b.tokens) / self.rate).clamp(0.0005, 0.25))
            };
            std::thread::sleep(wait);
            waited += wait;
        }
    }

    /// Take `bytes` tokens if the bucket covers them right now; `false`
    /// (and no tokens taken) otherwise.
    pub fn try_acquire(&self, bytes: u64) -> bool {
        let mut b = self.state.lock();
        self.refill(&mut b);
        let need = (bytes as f64).min(self.capacity);
        if b.tokens >= need {
            b.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    fn refill(&self, b: &mut Bucket) {
        let now = Instant::now();
        let dt = now.duration_since(b.last_refill).as_secs_f64();
        b.last_refill = now;
        b.tokens = (b.tokens + dt * self.rate).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_free_then_rate_kicks_in() {
        let rl = RateLimiter::new(1_000_000, 10_000);
        // The initial burst drains without waiting.
        assert!(rl.try_acquire(10_000));
        // Bucket is now empty; an immediate acquire must wait.
        assert!(!rl.try_acquire(5_000));
        let waited = rl.acquire(5_000);
        assert!(waited > Duration::ZERO, "empty bucket must make us wait");
    }

    #[test]
    fn oversized_request_runs_from_a_full_bucket() {
        let rl = RateLimiter::new(1_000_000, 1_000);
        // 5x the burst size: admitted at full bucket, leaves debt.
        let first = rl.acquire(5_000);
        assert_eq!(first, Duration::ZERO);
        // The debt (4000 tokens at 1 MB/s = 4ms + refill to need) is
        // paid before the next acquire returns.
        assert!(!rl.try_acquire(1));
        let waited = rl.acquire(1_000);
        assert!(waited >= Duration::from_millis(3));
    }

    #[test]
    fn refill_restores_capacity_over_time() {
        let rl = RateLimiter::new(2_000_000, 2_000);
        assert!(rl.try_acquire(2_000));
        std::thread::sleep(Duration::from_millis(5));
        // 5ms at 2 MB/s refills ≥ 2000 tokens (capped at capacity).
        assert!(rl.try_acquire(2_000));
    }
}
