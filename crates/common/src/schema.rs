//! Table schemas, column groups and partitioning vocabulary (paper §3.1–3.2).
//!
//! LogBase keeps the relational model but stores each *column group* — a
//! set of columns frequently accessed together — in its own physical
//! partition. Tables are further split horizontally into key-range
//! *tablets*. This module defines the metadata for both dimensions; the
//! workload-driven algorithm that picks good column groups lives in the
//! core crate (`logbase::partition`).

use crate::error::{Error, Result};
use crate::types::RowKey;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a column group within a table (dense, assigned in schema
/// order).
pub type ColumnGroupId = u16;

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, unique within the table.
    pub name: String,
}

/// A named set of columns stored together (§3.2).
///
/// Every column group implicitly embeds the primary key, so a tuple can be
/// reconstructed by point lookups in each group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnGroup {
    /// Dense identifier within the table.
    pub id: ColumnGroupId,
    /// Group name (defaults to the concatenated column names).
    pub name: String,
    /// Member columns.
    pub columns: Vec<Column>,
}

/// A table schema: name plus its vertical partitioning into column groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, unique within the database.
    pub name: String,
    /// Column groups in id order.
    pub column_groups: Vec<ColumnGroup>,
}

impl TableSchema {
    /// Build a schema with a single default column group holding all
    /// columns — the layout used when no workload trace is available.
    pub fn single_group(table: impl Into<String>, columns: &[&str]) -> Self {
        let name = table.into();
        TableSchema {
            column_groups: vec![ColumnGroup {
                id: 0,
                name: "default".to_string(),
                columns: columns
                    .iter()
                    .map(|c| Column {
                        name: (*c).to_string(),
                    })
                    .collect(),
            }],
            name,
        }
    }

    /// Build a schema from explicit `(group name, columns)` pairs.
    pub fn with_groups(table: impl Into<String>, groups: &[(&str, &[&str])]) -> Self {
        TableSchema {
            name: table.into(),
            column_groups: groups
                .iter()
                .enumerate()
                .map(|(i, (gname, cols))| ColumnGroup {
                    id: i as ColumnGroupId,
                    name: (*gname).to_string(),
                    columns: cols
                        .iter()
                        .map(|c| Column {
                            name: (*c).to_string(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Look up a column group by name.
    pub fn group_by_name(&self, name: &str) -> Option<&ColumnGroup> {
        self.column_groups.iter().find(|g| g.name == name)
    }

    /// Look up the column group containing `column`.
    pub fn group_of_column(&self, column: &str) -> Option<&ColumnGroup> {
        self.column_groups
            .iter()
            .find(|g| g.columns.iter().any(|c| c.name == column))
    }

    /// Validate: group ids dense and in order, no column in two groups.
    pub fn validate(&self) -> Result<()> {
        let mut seen = std::collections::BTreeSet::new();
        for (i, g) in self.column_groups.iter().enumerate() {
            if g.id as usize != i {
                return Err(Error::Schema(format!(
                    "table {}: column group ids must be dense, got {} at position {i}",
                    self.name, g.id
                )));
            }
            for c in &g.columns {
                if !seen.insert(c.name.clone()) {
                    return Err(Error::Schema(format!(
                        "table {}: column {} appears in more than one group",
                        self.name, c.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Identifier of a tablet: table plus a dense index of its key range.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TabletId {
    /// Owning table.
    pub table: String,
    /// Index of the key range within the table's horizontal partitioning.
    pub range_index: u32,
}

impl fmt::Display for TabletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.table, self.range_index)
    }
}

/// A half-open key range `[start, end)`; `end == None` means unbounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound; empty means unbounded below.
    pub start: RowKey,
    /// Exclusive upper bound; `None` means unbounded above.
    pub end: Option<RowKey>,
}

impl KeyRange {
    /// The range covering the whole key space.
    pub fn all() -> Self {
        KeyRange {
            start: RowKey::new(),
            end: None,
        }
    }

    /// Bounded range `[start, end)`.
    pub fn new(start: impl Into<RowKey>, end: impl Into<RowKey>) -> Self {
        KeyRange {
            start: start.into(),
            end: Some(end.into()),
        }
    }

    /// True when `key` falls inside the range.
    pub fn contains(&self, key: &[u8]) -> bool {
        if key < &self.start[..] {
            return false;
        }
        match &self.end {
            Some(end) => key < &end[..],
            None => true,
        }
    }

    /// True when the range is empty (`end <= start`).
    pub fn is_empty(&self) -> bool {
        match &self.end {
            Some(end) => end[..] <= self.start[..],
            None => false,
        }
    }
}

/// A tablet: a key range of one table, the unit of assignment to servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabletDesc {
    /// Identity of the tablet.
    pub id: TabletId,
    /// Key range served.
    pub range: KeyRange,
}

/// Split the whole key space of `table` into `n` contiguous tablets using
/// the key distribution hint `max_key` (keys are big-endian u64 strings in
/// the benchmark workloads; arbitrary byte keys still route correctly, the
/// split points are just less balanced).
pub fn split_uniform(table: &str, n: u32, max_key: u64) -> Vec<TabletDesc> {
    assert!(n > 0, "cannot split a table into zero tablets");
    let stride = max_key / u64::from(n);
    let mut tablets = Vec::with_capacity(n as usize);
    for i in 0..n {
        let start = if i == 0 {
            RowKey::new()
        } else {
            RowKey::copy_from_slice(&(u64::from(i) * stride).to_be_bytes())
        };
        let end = if i == n - 1 {
            None
        } else {
            Some(RowKey::copy_from_slice(
                &(u64::from(i + 1) * stride).to_be_bytes(),
            ))
        };
        tablets.push(TabletDesc {
            id: TabletId {
                table: table.to_string(),
                range_index: i,
            },
            range: KeyRange { start, end },
        });
    }
    tablets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group_schema() {
        let s = TableSchema::single_group("users", &["name", "email"]);
        assert_eq!(s.column_groups.len(), 1);
        assert_eq!(s.group_by_name("default").unwrap().columns.len(), 2);
        s.validate().unwrap();
    }

    #[test]
    fn multi_group_lookup() {
        let s = TableSchema::with_groups(
            "item",
            &[("meta", &["title", "author"]), ("stock", &["qty", "price"])],
        );
        assert_eq!(s.group_of_column("qty").unwrap().name, "stock");
        assert_eq!(s.group_of_column("title").unwrap().id, 0);
        assert!(s.group_of_column("missing").is_none());
        s.validate().unwrap();
    }

    #[test]
    fn validate_rejects_duplicate_columns() {
        let s = TableSchema::with_groups("t", &[("a", &["x"]), ("b", &["x"])]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_sparse_ids() {
        let mut s = TableSchema::single_group("t", &["x"]);
        s.column_groups[0].id = 3;
        assert!(s.validate().is_err());
    }

    #[test]
    fn key_range_contains() {
        let r = KeyRange::new(&b"b"[..], &b"d"[..]);
        assert!(!r.contains(b"a"));
        assert!(r.contains(b"b"));
        assert!(r.contains(b"c"));
        assert!(!r.contains(b"d"));
        assert!(!r.is_empty());
        assert!(KeyRange::new(&b"d"[..], &b"d"[..]).is_empty());
        assert!(KeyRange::all().contains(b""));
        assert!(KeyRange::all().contains(b"\xff\xff"));
    }

    #[test]
    fn split_uniform_covers_key_space() {
        let tablets = split_uniform("t", 4, 1 << 32);
        assert_eq!(tablets.len(), 4);
        // Every u64 key must be covered by exactly one tablet.
        for key in [0u64, 1, 1 << 30, 1 << 31, (1 << 32) - 1, 1 << 33] {
            let kb = key.to_be_bytes();
            let n = tablets.iter().filter(|t| t.range.contains(&kb)).count();
            assert_eq!(n, 1, "key {key} covered by {n} tablets");
        }
        // Ranges are contiguous.
        for w in tablets.windows(2) {
            assert_eq!(w[0].range.end.as_ref().unwrap(), &w[1].range.start);
        }
        assert!(tablets.last().unwrap().range.end.is_none());
    }

    #[test]
    fn tablet_id_display() {
        let id = TabletId {
            table: "orders".into(),
            range_index: 2,
        };
        assert_eq!(id.to_string(), "orders/2");
    }
}
