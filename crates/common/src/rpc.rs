//! Binary RPC protocol for over-the-wire deployment.
//!
//! Every message — request or response — travels as one CRC-framed
//! payload ([`crate::codec::encode_frame`]) whose length prefix is
//! bounded by [`MAX_RPC_FRAME`]: a torn or hostile length prefix is
//! rejected *before* any allocation or blocking read it would imply.
//!
//! ```text
//! +----------+----------+======================================================+
//! | len: u32 | crc: u32 | req_id: u64 | deadline_ms: u32 | opcode: u8 | body … |
//! +----------+----------+======================================================+
//! ```
//!
//! `req_id` is a per-connection sequence number: clients pipeline many
//! requests on one connection and match responses by id, so delayed or
//! duplicated responses (both injected by the transport fault suite)
//! never pair with the wrong caller — a duplicate id is dropped.
//!
//! `deadline_ms` propagates the client's *remaining* per-op budget, in
//! milliseconds at send time (0 = no deadline). Shipping a relative
//! budget rather than an absolute wall-clock instant needs no clock
//! synchronization: the server stamps its own arrival instant when it
//! reads the frame and counts down from there. Transit time is not
//! charged, which errs in the safe direction — the server never drops a
//! request the client still considers live. Requests whose budget runs
//! out while queued server-side are dropped without dispatch and
//! answered with the retriable [`Error::Expired`], so the server never
//! burns cycles on work the client has already abandoned.
//!
//! The error taxonomy crosses the wire losslessly enough that
//! [`Error::is_retriable`] gives the same answer on both sides: the
//! client's retry loop must treat a remote `Fenced` exactly as fatal and
//! a remote `TabletMoved` exactly as retriable as their in-process
//! counterparts, or the two transports would diverge under faults.

use crate::codec::{
    self, decode_frame_bounded, encode_frame, get_bytes, get_u16, get_u32, get_u64, get_u8,
    put_bytes,
};
use crate::error::{Error, Result};
use crate::types::{RowKey, Timestamp, Value};
use bytes::{BufMut, Bytes, BytesMut};

/// Upper bound on one RPC frame's payload. Larger than any sane
/// request (values are capped far below), far smaller than the 4 GiB a
/// corrupt length prefix can announce.
pub const MAX_RPC_FRAME: usize = codec::MAX_FRAME_LEN;

/// One entry of the routing table as served to clients: the key range,
/// the owning member, and (for TCP transports) the member's address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteInfo {
    /// Inclusive start key of the range.
    pub start: RowKey,
    /// Exclusive end key (`None` = to the end of the key space).
    pub end: Option<RowKey>,
    /// Member index owning the range.
    pub member: u32,
    /// Transport address of the member (empty for in-process).
    pub addr: String,
}

/// A buffered transactional write shipped at commit (`None` = delete).
pub type TxnWrite = (String, u16, RowKey, Option<Value>);

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / connection-warmup probe.
    Ping,
    /// Single-record write.
    Put {
        table: String,
        cg: u16,
        key: RowKey,
        value: Value,
    },
    /// Latest-visible point read.
    Get { table: String, cg: u16, key: RowKey },
    /// Multiversion point read at a snapshot.
    GetAt {
        table: String,
        cg: u16,
        key: RowKey,
        at: Timestamp,
    },
    /// Durable delete.
    Delete { table: String, cg: u16, key: RowKey },
    /// Range scan (latest visible versions, key order).
    Scan {
        table: String,
        cg: u16,
        start: RowKey,
        end: Option<RowKey>,
        limit: u64,
    },
    /// Routing-table snapshot (served by every member).
    Routes,
    /// Begin a transaction anchored at `anchor`'s tablet.
    TxnBegin { anchor: RowKey },
    /// Transactional snapshot read inside transaction `txn`.
    TxnRead {
        txn: u64,
        table: String,
        cg: u16,
        key: RowKey,
    },
    /// Validate + commit transaction `txn` with the buffered writes.
    TxnCommit { txn: u64, writes: Vec<TxnWrite> },
    /// Abort transaction `txn`.
    TxnAbort { txn: u64 },
}

/// Admission priority class of a request under load shed.
///
/// Ordered so that `Low < Normal < High`; the admission controller
/// sheds `Low` first and grants `High` a headroom margin above the
/// base limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Fresh reads and scans: the first traffic dropped under overload
    /// (a shed read is cheap for the client to retry or abandon).
    Low,
    /// Writes and in-progress transaction steps.
    Normal,
    /// Transaction commits (work already invested on both sides),
    /// routing-table fetches, and liveness probes — the RPCs that
    /// recovery and failover depend on must not starve behind fresh
    /// load.
    High,
}

impl Request {
    /// The admission priority class this request belongs to.
    pub fn priority(&self) -> Priority {
        match self {
            Request::TxnCommit { .. }
            | Request::TxnAbort { .. }
            | Request::Routes
            | Request::Ping => Priority::High,
            Request::Put { .. }
            | Request::Delete { .. }
            | Request::TxnBegin { .. }
            | Request::TxnRead { .. } => Priority::Normal,
            Request::Get { .. } | Request::GetAt { .. } | Request::Scan { .. } => Priority::Low,
        }
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ping reply.
    Pong,
    /// Operation completed with no payload.
    Unit,
    /// A commit timestamp.
    Ts(Timestamp),
    /// A point-read result.
    Value(Option<Value>),
    /// Scan results.
    Scan(Vec<(RowKey, Timestamp, Value)>),
    /// The routing table.
    Routes(Vec<RouteInfo>),
    /// A transaction began.
    TxnBegun { txn: u64, snapshot: Timestamp },
    /// The operation failed; see [`WireError`].
    Err(WireError),
}

// ---------------------------------------------------------------------
// Error taxonomy over the wire
// ---------------------------------------------------------------------

/// An [`Error`] encoded for transport: a stable numeric code plus two
/// integer payloads and a message. Round-tripping preserves the
/// retriable / corruption / fatal classification exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    code: u8,
    a: u64,
    b: u64,
    msg: String,
}

const E_OTHER: u8 = 0;
const E_UNAVAILABLE: u8 = 1;
const E_BUSY: u8 = 2;
const E_TABLET_MOVED: u8 = 3;
const E_TABLET_NOT_SERVED: u8 = 4;
const E_FENCED: u8 = 5;
const E_TXN_CONFLICT: u8 = 6;
const E_TXN_ABORTED: u8 = 7;
const E_CORRUPTION: u8 = 8;
const E_CHECKSUM: u8 = 9;
const E_FILE_NOT_FOUND: u8 = 10;
const E_SCHEMA: u8 = 11;
const E_INVALID_ARGUMENT: u8 = 12;
const E_IO_TRANSIENT: u8 = 13;
const E_IO_FATAL: u8 = 14;
const E_NODE_DOWN: u8 = 15;
const E_INSUFFICIENT_REPLICAS: u8 = 16;
const E_DEADLINE: u8 = 17;
const E_FRAME_TOO_LARGE: u8 = 18;
const E_RECOVERY: u8 = 19;
const E_CRASH_POINT: u8 = 20;
const E_EXPIRED: u8 = 21;

impl WireError {
    /// `Busy` shed error for the server's hottest rejection path.
    /// Allocation-free: the detail string is empty (an empty `String`
    /// holds no heap buffer) and the retry-after hint rides in the
    /// integer payload.
    pub fn busy_shed(retry_after_micros: u64) -> WireError {
        WireError {
            code: E_BUSY,
            a: retry_after_micros,
            b: 0,
            msg: String::new(),
        }
    }

    /// Allocation-free drop notice for a request whose propagated
    /// deadline expired before dispatch; `lateness_micros` says by how
    /// much it missed.
    pub fn expired(lateness_micros: u64) -> WireError {
        WireError {
            code: E_EXPIRED,
            a: lateness_micros,
            b: 0,
            msg: String::new(),
        }
    }
}

impl From<&Error> for WireError {
    fn from(e: &Error) -> Self {
        let mk = |code, msg: String| WireError {
            code,
            a: 0,
            b: 0,
            msg,
        };
        match e {
            Error::Unavailable(m) => mk(E_UNAVAILABLE, m.clone()),
            Error::Busy {
                detail,
                retry_after_micros,
            } => WireError {
                code: E_BUSY,
                a: *retry_after_micros,
                b: 0,
                msg: detail.clone(),
            },
            Error::TabletMoved(m) => mk(E_TABLET_MOVED, m.clone()),
            Error::TabletNotServed(m) => mk(E_TABLET_NOT_SERVED, m.clone()),
            Error::Fenced {
                server,
                held,
                current,
            } => WireError {
                code: E_FENCED,
                a: *held,
                b: *current,
                msg: server.clone(),
            },
            Error::TxnConflict { detail } => mk(E_TXN_CONFLICT, detail.clone()),
            Error::TxnAborted(m) => mk(E_TXN_ABORTED, m.clone()),
            Error::Corruption(m) => mk(E_CORRUPTION, m.clone()),
            Error::ChecksumMismatch {
                context,
                expected,
                actual,
            } => WireError {
                code: E_CHECKSUM,
                a: u64::from(*expected),
                b: u64::from(*actual),
                msg: context.clone(),
            },
            Error::FileNotFound(m) => mk(E_FILE_NOT_FOUND, m.clone()),
            Error::Schema(m) => mk(E_SCHEMA, m.clone()),
            Error::InvalidArgument(m) => mk(E_INVALID_ARGUMENT, m.clone()),
            Error::Io(io) => {
                let code = if e.is_retriable() {
                    E_IO_TRANSIENT
                } else {
                    E_IO_FATAL
                };
                mk(code, io.to_string())
            }
            Error::NodeDown(m) => mk(E_NODE_DOWN, m.clone()),
            Error::InsufficientReplicas { wanted, available } => WireError {
                code: E_INSUFFICIENT_REPLICAS,
                a: *wanted as u64,
                b: *available as u64,
                msg: String::new(),
            },
            Error::DeadlineExceeded(m) => mk(E_DEADLINE, m.clone()),
            Error::Expired(m) => mk(E_EXPIRED, m.clone()),
            Error::FrameTooLarge { announced, max } => WireError {
                code: E_FRAME_TOO_LARGE,
                a: *announced,
                b: *max,
                msg: String::new(),
            },
            Error::Recovery(m) => mk(E_RECOVERY, m.clone()),
            Error::CrashPoint { site } => mk(E_CRASH_POINT, site.clone()),
            // Structured local-only variants flatten to their display
            // form; they are non-retriable on both sides.
            other => mk(E_OTHER, other.to_string()),
        }
    }
}

impl From<WireError> for Error {
    fn from(w: WireError) -> Self {
        match w.code {
            E_UNAVAILABLE => Error::Unavailable(w.msg),
            E_BUSY => Error::Busy {
                detail: w.msg,
                retry_after_micros: w.a,
            },
            E_TABLET_MOVED => Error::TabletMoved(w.msg),
            E_TABLET_NOT_SERVED => Error::TabletNotServed(w.msg),
            E_FENCED => Error::Fenced {
                server: w.msg,
                held: w.a,
                current: w.b,
            },
            E_TXN_CONFLICT => Error::TxnConflict { detail: w.msg },
            E_TXN_ABORTED => Error::TxnAborted(w.msg),
            E_CORRUPTION => Error::Corruption(w.msg),
            E_CHECKSUM => Error::ChecksumMismatch {
                context: w.msg,
                expected: w.a as u32,
                actual: w.b as u32,
            },
            E_FILE_NOT_FOUND => Error::FileNotFound(w.msg),
            E_SCHEMA => Error::Schema(w.msg),
            E_INVALID_ARGUMENT => Error::InvalidArgument(w.msg),
            E_IO_TRANSIENT => {
                Error::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, w.msg))
            }
            E_IO_FATAL => Error::Io(std::io::Error::other(w.msg)),
            E_NODE_DOWN => Error::NodeDown(w.msg),
            E_INSUFFICIENT_REPLICAS => Error::InsufficientReplicas {
                wanted: w.a as usize,
                available: w.b as usize,
            },
            E_DEADLINE => Error::DeadlineExceeded(w.msg),
            E_EXPIRED => Error::Expired(if w.msg.is_empty() && w.a > 0 {
                format!("{}us past the propagated deadline", w.a)
            } else {
                w.msg
            }),
            E_FRAME_TOO_LARGE => Error::FrameTooLarge {
                announced: w.a,
                max: w.b,
            },
            E_RECOVERY => Error::Recovery(w.msg),
            E_CRASH_POINT => Error::CrashPoint { site: w.msg },
            _ => Error::InvalidArgument(format!("remote error: {}", w.msg)),
        }
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

const OP_PING: u8 = 1;
const OP_PUT: u8 = 2;
const OP_GET: u8 = 3;
const OP_GET_AT: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_SCAN: u8 = 6;
const OP_ROUTES: u8 = 7;
const OP_TXN_BEGIN: u8 = 8;
const OP_TXN_READ: u8 = 9;
const OP_TXN_COMMIT: u8 = 10;
const OP_TXN_ABORT: u8 = 11;

const RE_PONG: u8 = 1;
const RE_UNIT: u8 = 2;
const RE_TS: u8 = 3;
const RE_VALUE: u8 = 4;
const RE_SCAN: u8 = 5;
const RE_ROUTES: u8 = 6;
const RE_TXN_BEGUN: u8 = 7;
const RE_ERR: u8 = 8;

fn put_opt_bytes(dst: &mut BytesMut, v: Option<&[u8]>) {
    match v {
        Some(b) => {
            dst.put_u8(1);
            put_bytes(dst, b);
        }
        None => dst.put_u8(0),
    }
}

fn get_opt_bytes(src: &mut Bytes, ctx: &str) -> Result<Option<Bytes>> {
    match get_u8(src, ctx)? {
        0 => Ok(None),
        1 => Ok(Some(get_bytes(src, ctx)?)),
        t => Err(Error::Corruption(format!("{ctx}: bad option tag {t}"))),
    }
}

fn get_string(src: &mut Bytes, ctx: &str) -> Result<String> {
    let b = get_bytes(src, ctx)?;
    String::from_utf8(b.to_vec()).map_err(|_| Error::Corruption(format!("{ctx}: non-utf8 string")))
}

/// Encode `(req_id, deadline, request)` as one bounded CRC frame
/// appended to `dst`. `deadline_ms` is the client's remaining per-op
/// budget in milliseconds at send time; 0 means no deadline.
pub fn encode_request(dst: &mut BytesMut, req_id: u64, deadline_ms: u32, req: &Request) -> usize {
    let mut body = BytesMut::with_capacity(64);
    body.put_u64_le(req_id);
    body.put_u32_le(deadline_ms);
    match req {
        Request::Ping => body.put_u8(OP_PING),
        Request::Put {
            table,
            cg,
            key,
            value,
        } => {
            body.put_u8(OP_PUT);
            put_bytes(&mut body, table.as_bytes());
            body.put_u16_le(*cg);
            put_bytes(&mut body, key);
            put_bytes(&mut body, value);
        }
        Request::Get { table, cg, key } => {
            body.put_u8(OP_GET);
            put_bytes(&mut body, table.as_bytes());
            body.put_u16_le(*cg);
            put_bytes(&mut body, key);
        }
        Request::GetAt { table, cg, key, at } => {
            body.put_u8(OP_GET_AT);
            put_bytes(&mut body, table.as_bytes());
            body.put_u16_le(*cg);
            put_bytes(&mut body, key);
            body.put_u64_le(at.0);
        }
        Request::Delete { table, cg, key } => {
            body.put_u8(OP_DELETE);
            put_bytes(&mut body, table.as_bytes());
            body.put_u16_le(*cg);
            put_bytes(&mut body, key);
        }
        Request::Scan {
            table,
            cg,
            start,
            end,
            limit,
        } => {
            body.put_u8(OP_SCAN);
            put_bytes(&mut body, table.as_bytes());
            body.put_u16_le(*cg);
            put_bytes(&mut body, start);
            put_opt_bytes(&mut body, end.as_deref());
            body.put_u64_le(*limit);
        }
        Request::Routes => body.put_u8(OP_ROUTES),
        Request::TxnBegin { anchor } => {
            body.put_u8(OP_TXN_BEGIN);
            put_bytes(&mut body, anchor);
        }
        Request::TxnRead {
            txn,
            table,
            cg,
            key,
        } => {
            body.put_u8(OP_TXN_READ);
            body.put_u64_le(*txn);
            put_bytes(&mut body, table.as_bytes());
            body.put_u16_le(*cg);
            put_bytes(&mut body, key);
        }
        Request::TxnCommit { txn, writes } => {
            body.put_u8(OP_TXN_COMMIT);
            body.put_u64_le(*txn);
            body.put_u32_le(writes.len() as u32);
            for (table, cg, key, value) in writes {
                put_bytes(&mut body, table.as_bytes());
                body.put_u16_le(*cg);
                put_bytes(&mut body, key);
                put_opt_bytes(&mut body, value.as_deref());
            }
        }
        Request::TxnAbort { txn } => {
            body.put_u8(OP_TXN_ABORT);
            body.put_u64_le(*txn);
        }
    }
    encode_frame(dst, &body)
}

/// Decode a request frame payload (the bytes inside the CRC frame)
/// into `(req_id, deadline_ms, request)`.
pub fn decode_request(mut payload: Bytes) -> Result<(u64, u32, Request)> {
    const CTX: &str = "rpc request";
    let req_id = get_u64(&mut payload, CTX)?;
    let deadline_ms = get_u32(&mut payload, CTX)?;
    let op = get_u8(&mut payload, CTX)?;
    let req = match op {
        OP_PING => Request::Ping,
        OP_PUT => Request::Put {
            table: get_string(&mut payload, CTX)?,
            cg: get_u16(&mut payload, CTX)?,
            key: get_bytes(&mut payload, CTX)?,
            value: get_bytes(&mut payload, CTX)?,
        },
        OP_GET => Request::Get {
            table: get_string(&mut payload, CTX)?,
            cg: get_u16(&mut payload, CTX)?,
            key: get_bytes(&mut payload, CTX)?,
        },
        OP_GET_AT => Request::GetAt {
            table: get_string(&mut payload, CTX)?,
            cg: get_u16(&mut payload, CTX)?,
            key: get_bytes(&mut payload, CTX)?,
            at: Timestamp(get_u64(&mut payload, CTX)?),
        },
        OP_DELETE => Request::Delete {
            table: get_string(&mut payload, CTX)?,
            cg: get_u16(&mut payload, CTX)?,
            key: get_bytes(&mut payload, CTX)?,
        },
        OP_SCAN => Request::Scan {
            table: get_string(&mut payload, CTX)?,
            cg: get_u16(&mut payload, CTX)?,
            start: get_bytes(&mut payload, CTX)?,
            end: get_opt_bytes(&mut payload, CTX)?,
            limit: get_u64(&mut payload, CTX)?,
        },
        OP_ROUTES => Request::Routes,
        OP_TXN_BEGIN => Request::TxnBegin {
            anchor: get_bytes(&mut payload, CTX)?,
        },
        OP_TXN_READ => Request::TxnRead {
            txn: get_u64(&mut payload, CTX)?,
            table: get_string(&mut payload, CTX)?,
            cg: get_u16(&mut payload, CTX)?,
            key: get_bytes(&mut payload, CTX)?,
        },
        OP_TXN_COMMIT => {
            let txn = get_u64(&mut payload, CTX)?;
            let n = get_u32(&mut payload, CTX)? as usize;
            // `n` is bounded by the frame size: each write costs ≥ 11
            // bytes on the wire, so a hostile count cannot force a
            // large allocation past the payload it arrived in.
            if n > payload.len() {
                return Err(Error::Corruption(format!(
                    "{CTX}: txn write count {n} exceeds remaining payload"
                )));
            }
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                writes.push((
                    get_string(&mut payload, CTX)?,
                    get_u16(&mut payload, CTX)?,
                    get_bytes(&mut payload, CTX)?,
                    get_opt_bytes(&mut payload, CTX)?,
                ));
            }
            Request::TxnCommit { txn, writes }
        }
        OP_TXN_ABORT => Request::TxnAbort {
            txn: get_u64(&mut payload, CTX)?,
        },
        other => return Err(Error::Corruption(format!("{CTX}: unknown opcode {other}"))),
    };
    Ok((req_id, deadline_ms, req))
}

/// Encode `(req_id, response)` as one bounded CRC frame appended to `dst`.
pub fn encode_response(dst: &mut BytesMut, req_id: u64, resp: &Response) -> usize {
    let mut body = BytesMut::with_capacity(64);
    encode_response_reusing(dst, &mut body, req_id, resp)
}

/// Like [`encode_response`] but serializing through a caller-owned
/// scratch buffer, so a hot path (the server's `Busy` shed response)
/// reaches steady-state zero allocation: `clear()` keeps both buffers'
/// capacity across calls.
pub fn encode_response_reusing(
    dst: &mut BytesMut,
    body: &mut BytesMut,
    req_id: u64,
    resp: &Response,
) -> usize {
    body.clear();
    body.put_u64_le(req_id);
    match resp {
        Response::Pong => body.put_u8(RE_PONG),
        Response::Unit => body.put_u8(RE_UNIT),
        Response::Ts(ts) => {
            body.put_u8(RE_TS);
            body.put_u64_le(ts.0);
        }
        Response::Value(v) => {
            body.put_u8(RE_VALUE);
            put_opt_bytes(body, v.as_deref());
        }
        Response::Scan(items) => {
            body.put_u8(RE_SCAN);
            body.put_u32_le(items.len() as u32);
            for (key, ts, value) in items {
                put_bytes(body, key);
                body.put_u64_le(ts.0);
                put_bytes(body, value);
            }
        }
        Response::Routes(routes) => {
            body.put_u8(RE_ROUTES);
            body.put_u32_le(routes.len() as u32);
            for r in routes {
                put_bytes(body, &r.start);
                put_opt_bytes(body, r.end.as_deref());
                body.put_u32_le(r.member);
                put_bytes(body, r.addr.as_bytes());
            }
        }
        Response::TxnBegun { txn, snapshot } => {
            body.put_u8(RE_TXN_BEGUN);
            body.put_u64_le(*txn);
            body.put_u64_le(snapshot.0);
        }
        Response::Err(w) => {
            body.put_u8(RE_ERR);
            body.put_u8(w.code);
            body.put_u64_le(w.a);
            body.put_u64_le(w.b);
            put_bytes(body, w.msg.as_bytes());
        }
    }
    encode_frame(dst, body)
}

/// Decode a response frame payload (the bytes inside the CRC frame).
pub fn decode_response(mut payload: Bytes) -> Result<(u64, Response)> {
    const CTX: &str = "rpc response";
    let req_id = get_u64(&mut payload, CTX)?;
    let tag = get_u8(&mut payload, CTX)?;
    let resp = match tag {
        RE_PONG => Response::Pong,
        RE_UNIT => Response::Unit,
        RE_TS => Response::Ts(Timestamp(get_u64(&mut payload, CTX)?)),
        RE_VALUE => Response::Value(get_opt_bytes(&mut payload, CTX)?),
        RE_SCAN => {
            let n = get_u32(&mut payload, CTX)? as usize;
            if n > payload.len() {
                return Err(Error::Corruption(format!(
                    "{CTX}: scan item count {n} exceeds remaining payload"
                )));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push((
                    get_bytes(&mut payload, CTX)?,
                    Timestamp(get_u64(&mut payload, CTX)?),
                    get_bytes(&mut payload, CTX)?,
                ));
            }
            Response::Scan(items)
        }
        RE_ROUTES => {
            let n = get_u32(&mut payload, CTX)? as usize;
            if n > payload.len() {
                return Err(Error::Corruption(format!(
                    "{CTX}: route count {n} exceeds remaining payload"
                )));
            }
            let mut routes = Vec::with_capacity(n);
            for _ in 0..n {
                routes.push(RouteInfo {
                    start: get_bytes(&mut payload, CTX)?,
                    end: get_opt_bytes(&mut payload, CTX)?,
                    member: get_u32(&mut payload, CTX)?,
                    addr: get_string(&mut payload, CTX)?,
                });
            }
            Response::Routes(routes)
        }
        RE_TXN_BEGUN => Response::TxnBegun {
            txn: get_u64(&mut payload, CTX)?,
            snapshot: Timestamp(get_u64(&mut payload, CTX)?),
        },
        RE_ERR => Response::Err(WireError {
            code: get_u8(&mut payload, CTX)?,
            a: get_u64(&mut payload, CTX)?,
            b: get_u64(&mut payload, CTX)?,
            msg: get_string(&mut payload, CTX)?,
        }),
        other => {
            return Err(Error::Corruption(format!(
                "{CTX}: unknown response tag {other}"
            )))
        }
    };
    Ok((req_id, resp))
}

impl Response {
    /// Wrap an error result as its wire response.
    pub fn from_err(e: &Error) -> Response {
        Response::Err(WireError::from(e))
    }
}

/// Read exactly one bounded frame from a blocking reader.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (peer closed),
/// a `Corruption` error on a torn frame (EOF mid-header or mid-payload),
/// [`Error::FrameTooLarge`] on an oversized length prefix — checked
/// *before* the payload buffer is allocated — and the CRC error from
/// [`decode_frame_bounded`] on payload corruption.
pub fn read_frame(
    r: &mut impl std::io::Read,
    max_len: usize,
    context: &str,
) -> Result<Option<Bytes>> {
    let mut header = [0u8; codec::FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::Corruption(format!(
                    "{context}: torn frame header ({filled} of {} bytes)",
                    header.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    if len > max_len {
        return Err(Error::FrameTooLarge {
            announced: len as u64,
            max: max_len as u64,
        });
    }
    let mut buf = vec![0u8; codec::FRAME_HEADER_LEN + len];
    buf[..codec::FRAME_HEADER_LEN].copy_from_slice(&header);
    let mut filled = codec::FRAME_HEADER_LEN;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(Error::Corruption(format!(
                    "{context}: torn frame payload ({} of {len} bytes)",
                    filled - codec::FRAME_HEADER_LEN
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Io(e)),
        }
    }
    let (payload, _) = decode_frame_bounded(&buf, max_len, context)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) -> Request {
        let mut buf = BytesMut::new();
        encode_request(&mut buf, 42, 1_500, &req);
        let (payload, consumed) = codec::decode_frame(&buf, "t").unwrap();
        assert_eq!(consumed, buf.len());
        let (id, deadline_ms, decoded) = decode_request(payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(deadline_ms, 1_500);
        decoded
    }

    fn round_trip_response(resp: Response) -> Response {
        let mut buf = BytesMut::new();
        encode_response(&mut buf, 7, &resp);
        let (payload, _) = codec::decode_frame(&buf, "t").unwrap();
        let (id, decoded) = decode_response(payload).unwrap();
        assert_eq!(id, 7);
        decoded
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Put {
                table: "t".into(),
                cg: 3,
                key: RowKey::from_static(b"k"),
                value: Value::from_static(b"v"),
            },
            Request::Get {
                table: "t".into(),
                cg: 0,
                key: RowKey::from_static(b"k"),
            },
            Request::GetAt {
                table: "t".into(),
                cg: 0,
                key: RowKey::from_static(b"k"),
                at: Timestamp(99),
            },
            Request::Delete {
                table: "t".into(),
                cg: 1,
                key: RowKey::from_static(b"gone"),
            },
            Request::Scan {
                table: "t".into(),
                cg: 0,
                start: RowKey::from_static(b"a"),
                end: Some(RowKey::from_static(b"z")),
                limit: 100,
            },
            Request::Routes,
            Request::TxnBegin {
                anchor: RowKey::from_static(b"k"),
            },
            Request::TxnRead {
                txn: 5,
                table: "t".into(),
                cg: 0,
                key: RowKey::from_static(b"k"),
            },
            Request::TxnCommit {
                txn: 5,
                writes: vec![
                    (
                        "t".into(),
                        0,
                        RowKey::from_static(b"a"),
                        Some(Value::from_static(b"1")),
                    ),
                    ("t".into(), 0, RowKey::from_static(b"b"), None),
                ],
            },
            Request::TxnAbort { txn: 5 },
        ];
        for req in reqs {
            assert_eq!(round_trip_request(req.clone()), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Pong,
            Response::Unit,
            Response::Ts(Timestamp(7)),
            Response::Value(None),
            Response::Value(Some(Value::from_static(b"v"))),
            Response::Scan(vec![(
                RowKey::from_static(b"k"),
                Timestamp(3),
                Value::from_static(b"v"),
            )]),
            Response::Routes(vec![RouteInfo {
                start: RowKey::from_static(b""),
                end: Some(RowKey::from_static(b"m")),
                member: 2,
                addr: "127.0.0.1:4300".into(),
            }]),
            Response::TxnBegun {
                txn: 9,
                snapshot: Timestamp(44),
            },
            Response::Err(WireError::from(&Error::TabletMoved("r3 → srv-2".into()))),
        ];
        for resp in resps {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn error_classification_survives_the_wire() {
        let errors = vec![
            Error::Unavailable("gap".into()),
            Error::busy("queue full"),
            Error::Busy {
                detail: String::new(),
                retry_after_micros: 1_200,
            },
            Error::Expired("budget ran out in the server queue".into()),
            Error::TabletMoved("moved".into()),
            Error::TabletNotServed("nope".into()),
            Error::Fenced {
                server: "srv-1".into(),
                held: 3,
                current: 7,
            },
            Error::TxnConflict {
                detail: "cell changed".into(),
            },
            Error::TxnAborted("explicit".into()),
            Error::Corruption("bad".into()),
            Error::ChecksumMismatch {
                context: "seg-1".into(),
                expected: 1,
                actual: 2,
            },
            Error::FileNotFound("f".into()),
            Error::Schema("s".into()),
            Error::InvalidArgument("arg".into()),
            Error::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "x")),
            Error::Io(std::io::Error::other("disk gone")),
            Error::NodeDown("dn-3".into()),
            Error::InsufficientReplicas {
                wanted: 3,
                available: 1,
            },
            Error::DeadlineExceeded("late".into()),
            Error::FrameTooLarge {
                announced: 100,
                max: 10,
            },
            Error::Recovery("meta".into()),
            Error::CrashPoint {
                site: "compaction.x".into(),
            },
        ];
        for e in errors {
            let decoded = Error::from(WireError::from(&e));
            assert_eq!(
                e.is_retriable(),
                decoded.is_retriable(),
                "retriability diverged for {e}: decoded as {decoded}"
            );
            assert_eq!(
                e.is_corruption(),
                decoded.is_corruption(),
                "corruption class diverged for {e}"
            );
        }
        // The fenced epoch pair survives exactly.
        let fenced = Error::from(WireError::from(&Error::Fenced {
            server: "srv-9".into(),
            held: 11,
            current: 12,
        }));
        assert!(
            matches!(fenced, Error::Fenced { ref server, held: 11, current: 12 } if server == "srv-9")
        );
    }

    #[test]
    fn busy_retry_after_hint_survives_the_wire() {
        let hinted = Error::Busy {
            detail: "shed".into(),
            retry_after_micros: 3_000,
        };
        let decoded = Error::from(WireError::from(&hinted));
        assert_eq!(
            decoded.retry_after(),
            Some(std::time::Duration::from_micros(3_000))
        );
        // The allocation-free shed template decodes the same way.
        let shed = Error::from(WireError::busy_shed(3_000));
        assert_eq!(
            shed.retry_after(),
            Some(std::time::Duration::from_micros(3_000))
        );
        assert!(shed.is_retriable());
        // And the expired template stays retriable with its lateness.
        let expired = Error::from(WireError::expired(250));
        assert!(expired.is_retriable());
        assert!(expired.to_string().contains("250us"));
    }

    #[test]
    fn zero_deadline_means_none() {
        let mut buf = BytesMut::new();
        encode_request(&mut buf, 9, 0, &Request::Ping);
        let (payload, _) = codec::decode_frame(&buf, "t").unwrap();
        let (_, deadline_ms, _) = decode_request(payload).unwrap();
        assert_eq!(deadline_ms, 0);
    }

    #[test]
    fn priority_classes_order_commits_over_fresh_reads() {
        assert_eq!(
            Request::TxnCommit {
                txn: 1,
                writes: vec![]
            }
            .priority(),
            Priority::High
        );
        assert_eq!(Request::Routes.priority(), Priority::High);
        assert_eq!(
            Request::Put {
                table: "t".into(),
                cg: 0,
                key: RowKey::from_static(b"k"),
                value: Value::from_static(b"v"),
            }
            .priority(),
            Priority::Normal
        );
        assert_eq!(
            Request::Get {
                table: "t".into(),
                cg: 0,
                key: RowKey::from_static(b"k"),
            }
            .priority(),
            Priority::Low
        );
        assert!(Priority::Low < Priority::Normal && Priority::Normal < Priority::High);
    }

    #[test]
    fn read_frame_handles_eof_torn_and_oversized_input() {
        let mut buf = BytesMut::new();
        encode_request(&mut buf, 1, 0, &Request::Ping);
        let bytes = buf.freeze();

        // Clean decode.
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        let payload = read_frame(&mut cursor, MAX_RPC_FRAME, "t")
            .unwrap()
            .unwrap();
        assert_eq!(decode_request(payload).unwrap().0, 1);
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor, MAX_RPC_FRAME, "t")
            .unwrap()
            .is_none());

        // Torn header.
        let mut cursor = std::io::Cursor::new(bytes[..4].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, MAX_RPC_FRAME, "t").unwrap_err(),
            Error::Corruption(_)
        ));

        // Torn payload.
        let mut cursor = std::io::Cursor::new(bytes[..bytes.len() - 2].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, MAX_RPC_FRAME, "t").unwrap_err(),
            Error::Corruption(_)
        ));

        // Oversized length prefix: rejected before allocation.
        let mut hostile = bytes.to_vec();
        hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(hostile);
        assert!(matches!(
            read_frame(&mut cursor, MAX_RPC_FRAME, "t").unwrap_err(),
            Error::FrameTooLarge { .. }
        ));
    }
}
