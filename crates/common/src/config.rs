//! Shared configuration constants and helpers.
//!
//! Defaults follow the paper's experimental setup (§4.1): 64 MB log
//! segments / DFS chunks, 3-way replication, 40% of heap for in-memory
//! structures, 20% for caches, 1 KB records.

/// Default DFS chunk size and log segment size (64 MB, §3.4).
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024 * 1024;

/// Default DFS replication factor (§3.4).
pub const DEFAULT_REPLICATION: usize = 3;

/// Default record payload size used by the benchmarks (1 KB, §4.1).
pub const DEFAULT_RECORD_BYTES: usize = 1024;

/// Key domain of the YCSB-style benchmark (max key 2·10⁹, §4.1).
pub const YCSB_MAX_KEY: u64 = 2_000_000_000;

/// Approximate in-memory size of one index entry (24 bytes, §3.5: 16-byte
/// composite key + 8-byte pointer).
pub const INDEX_ENTRY_BYTES: usize = 24;

/// The machine's available parallelism (≥ 1). Default for everything
/// that sizes itself to the core count: cache shard counts, scan worker
/// pools, benchmark thread sweeps.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Format a byte count with binary units for reports.
pub fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Format an operations-per-second rate for reports.
pub fn human_rate(ops: f64) -> String {
    if ops >= 1_000_000.0 {
        format!("{:.2}M ops/s", ops / 1_000_000.0)
    } else if ops >= 1_000.0 {
        format!("{:.1}K ops/s", ops / 1_000.0)
    } else {
        format!("{ops:.1} ops/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(64 * 1024 * 1024), "64.0 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }

    #[test]
    fn human_rate_units() {
        assert_eq!(human_rate(12.0), "12.0 ops/s");
        assert_eq!(human_rate(45_000.0), "45.0K ops/s");
        assert_eq!(human_rate(2_500_000.0), "2.50M ops/s");
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(DEFAULT_SEGMENT_BYTES, 67_108_864);
        assert_eq!(DEFAULT_REPLICATION, 3);
        assert_eq!(INDEX_ENTRY_BYTES, 24);
    }
}
