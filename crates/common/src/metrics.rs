//! Cheap atomic instrumentation counters.
//!
//! The benchmark harness reports *shapes* (who does more seeks, who writes
//! data twice), so every substrate increments a shared [`Metrics`] sink.
//! Counters are relaxed atomics — they are statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared handle to a metrics sink.
pub type MetricsHandle = Arc<Metrics>;

/// Atomic counters covering the I/O-relevant events in the stack.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Bytes appended sequentially (log segments, SSTable flushes).
    pub seq_bytes_written: AtomicU64,
    /// Bytes read by positional (random) reads.
    pub rand_bytes_read: AtomicU64,
    /// Bytes read by sequential scans.
    pub seq_bytes_read: AtomicU64,
    /// Positional read operations — a proxy for disk seeks.
    pub seeks: AtomicU64,
    /// DFS append calls (each is a replicated pipeline write).
    pub dfs_appends: AtomicU64,
    /// DFS positional-read calls.
    pub dfs_reads: AtomicU64,
    /// Read-cache / block-cache hits.
    pub cache_hits: AtomicU64,
    /// Read-cache / block-cache misses.
    pub cache_misses: AtomicU64,
    /// Records written through the public API.
    pub records_written: AtomicU64,
    /// Records read through the public API.
    pub records_read: AtomicU64,
    /// Memtable / index-spill flushes (the WAL+Data double-write events).
    pub flushes: AtomicU64,
    /// Compaction jobs completed.
    pub compactions: AtomicU64,
    /// Transactions committed.
    pub txn_commits: AtomicU64,
    /// Transactions aborted (validation conflicts + explicit aborts).
    pub txn_aborts: AtomicU64,
    /// DFS pipeline/read attempts retried after a transient failure.
    pub dfs_retries: AtomicU64,
    /// Reads that hit a corrupt replica and recovered from another one.
    pub corrupt_reads_recovered: AtomicU64,
    /// Repair passes triggered (background or explicit) that found work.
    pub repairs_triggered: AtomicU64,
    /// Replicas recreated by re-replication repair.
    pub replicas_repaired: AtomicU64,
    /// Heartbeat sessions expired by the registry's lease clock.
    pub lease_expirations: AtomicU64,
    /// Tablets moved to a survivor by master-driven failover.
    pub tablets_reassigned: AtomicU64,
    /// Log bytes re-scanned while rebuilding a dead server's tablets.
    pub failover_log_bytes_redone: AtomicU64,
    /// Writes rejected because the issuer held a stale fencing epoch.
    pub fenced_writes_rejected: AtomicU64,
    /// Orphan segment files (sorted or log) deleted by startup GC.
    pub orphan_segments_gced: AtomicU64,
    /// Partial checkpoint directories (no `meta.json`) removed by GC.
    pub partial_checkpoints_removed: AtomicU64,
    /// Named crash points that fired (simulated process deaths).
    pub crash_sites_hit: AtomicU64,
    /// Interrupted maintenance jobs rolled forward from their manifest
    /// at recovery (the committed-compaction resume path).
    pub maintenance_resumed: AtomicU64,
    /// RPC requests dispatched by the client transport (all attempts).
    pub rpc_requests: AtomicU64,
    /// RPC attempts retried after a retriable failure.
    pub rpc_retries: AtomicU64,
    /// RPC attempts abandoned on a per-request deadline.
    pub rpc_timeouts: AtomicU64,
    /// Connections/requests shed by server admission control (`Busy`).
    pub connections_shed: AtomicU64,
    /// Client routing-cache entries invalidated on `TabletMoved`.
    pub routing_cache_invalidations: AtomicU64,
    /// Tightest (minimum) live admission limit across the server's
    /// members (a gauge, not a monotonic count: refreshed whenever any
    /// member's adaptive limiter moves its limit).
    pub admission_limit: AtomicU64,
    /// Requests dropped because their propagated deadline had already
    /// expired before dispatch (doomed work the server skipped).
    pub requests_expired: AtomicU64,
    /// Requests shed at a priority-reduced threshold while the base
    /// admission limit still had room (low-priority traffic displaced
    /// to protect commits and maintenance RPCs).
    pub requests_shed_by_priority: AtomicU64,
    /// Client retries suppressed because the token-bucket retry budget
    /// was empty (storm prevention kicked in).
    pub retry_budget_exhausted: AtomicU64,
    /// Group-commit batches persisted by the log writer (each is one or
    /// more replicated DFS appends; compare with `wal_batched_entries`
    /// for the realized batch width).
    pub wal_batches_committed: AtomicU64,
    /// Log entries folded into committed group-commit batches.
    pub wal_batched_entries: AtomicU64,
    /// Bytes the per-batch log compression removed from the wire
    /// (raw framed size minus compressed framed size, summed).
    pub wal_compression_saved_bytes: AtomicU64,
    /// Batches split across a segment boundary mid-encode so sealed
    /// segments honor `segment_bytes`.
    pub wal_mid_batch_rotations: AtomicU64,
    /// Times the group-commit committer thread woke up to open a batch.
    /// Stays flat while the log is idle (the committer blocks on its
    /// channel rather than polling).
    pub wal_committer_wakeups: AtomicU64,
    /// Bytes compaction and log GC scanned out of input segments.
    pub compaction_bytes_read: AtomicU64,
    /// Bytes compaction and log GC rewrote into sorted segments — the
    /// background write traffic that write amplification measures.
    pub compaction_bytes_written: AtomicU64,
    /// Large values the key/value split left in their log segment
    /// instead of rewriting (§3.6's "log as data" premise).
    pub values_separated: AtomicU64,
    /// Mostly-dead log segments the GC pass reclaimed.
    pub log_gc_segments_reclaimed: AtomicU64,
    /// Scheduler ticks that ran a policy-chosen merge or GC pass.
    pub compaction_sched_runs: AtomicU64,
    /// Times the maintenance token bucket made background I/O wait.
    pub compaction_throttle_waits: AtomicU64,
}

impl Metrics {
    /// New zeroed sink behind an [`Arc`].
    pub fn new_handle() -> MetricsHandle {
        Arc::new(Metrics::default())
    }

    /// Add to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Read a counter.
    #[inline]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot every counter into a plain struct for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            seq_bytes_written: Self::get(&self.seq_bytes_written),
            rand_bytes_read: Self::get(&self.rand_bytes_read),
            seq_bytes_read: Self::get(&self.seq_bytes_read),
            seeks: Self::get(&self.seeks),
            dfs_appends: Self::get(&self.dfs_appends),
            dfs_reads: Self::get(&self.dfs_reads),
            cache_hits: Self::get(&self.cache_hits),
            cache_misses: Self::get(&self.cache_misses),
            records_written: Self::get(&self.records_written),
            records_read: Self::get(&self.records_read),
            flushes: Self::get(&self.flushes),
            compactions: Self::get(&self.compactions),
            txn_commits: Self::get(&self.txn_commits),
            txn_aborts: Self::get(&self.txn_aborts),
            dfs_retries: Self::get(&self.dfs_retries),
            corrupt_reads_recovered: Self::get(&self.corrupt_reads_recovered),
            repairs_triggered: Self::get(&self.repairs_triggered),
            replicas_repaired: Self::get(&self.replicas_repaired),
            lease_expirations: Self::get(&self.lease_expirations),
            tablets_reassigned: Self::get(&self.tablets_reassigned),
            failover_log_bytes_redone: Self::get(&self.failover_log_bytes_redone),
            fenced_writes_rejected: Self::get(&self.fenced_writes_rejected),
            orphan_segments_gced: Self::get(&self.orphan_segments_gced),
            partial_checkpoints_removed: Self::get(&self.partial_checkpoints_removed),
            crash_sites_hit: Self::get(&self.crash_sites_hit),
            maintenance_resumed: Self::get(&self.maintenance_resumed),
            rpc_requests: Self::get(&self.rpc_requests),
            rpc_retries: Self::get(&self.rpc_retries),
            rpc_timeouts: Self::get(&self.rpc_timeouts),
            connections_shed: Self::get(&self.connections_shed),
            routing_cache_invalidations: Self::get(&self.routing_cache_invalidations),
            admission_limit: Self::get(&self.admission_limit),
            requests_expired: Self::get(&self.requests_expired),
            requests_shed_by_priority: Self::get(&self.requests_shed_by_priority),
            retry_budget_exhausted: Self::get(&self.retry_budget_exhausted),
            wal_batches_committed: Self::get(&self.wal_batches_committed),
            wal_batched_entries: Self::get(&self.wal_batched_entries),
            wal_compression_saved_bytes: Self::get(&self.wal_compression_saved_bytes),
            wal_mid_batch_rotations: Self::get(&self.wal_mid_batch_rotations),
            wal_committer_wakeups: Self::get(&self.wal_committer_wakeups),
            compaction_bytes_read: Self::get(&self.compaction_bytes_read),
            compaction_bytes_written: Self::get(&self.compaction_bytes_written),
            values_separated: Self::get(&self.values_separated),
            log_gc_segments_reclaimed: Self::get(&self.log_gc_segments_reclaimed),
            compaction_sched_runs: Self::get(&self.compaction_sched_runs),
            compaction_throttle_waits: Self::get(&self.compaction_throttle_waits),
        }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        for c in [
            &self.seq_bytes_written,
            &self.rand_bytes_read,
            &self.seq_bytes_read,
            &self.seeks,
            &self.dfs_appends,
            &self.dfs_reads,
            &self.cache_hits,
            &self.cache_misses,
            &self.records_written,
            &self.records_read,
            &self.flushes,
            &self.compactions,
            &self.txn_commits,
            &self.txn_aborts,
            &self.dfs_retries,
            &self.corrupt_reads_recovered,
            &self.repairs_triggered,
            &self.replicas_repaired,
            &self.lease_expirations,
            &self.tablets_reassigned,
            &self.failover_log_bytes_redone,
            &self.fenced_writes_rejected,
            &self.orphan_segments_gced,
            &self.partial_checkpoints_removed,
            &self.crash_sites_hit,
            &self.maintenance_resumed,
            &self.rpc_requests,
            &self.rpc_retries,
            &self.rpc_timeouts,
            &self.connections_shed,
            &self.routing_cache_invalidations,
            &self.admission_limit,
            &self.requests_expired,
            &self.requests_shed_by_priority,
            &self.retry_budget_exhausted,
            &self.wal_batches_committed,
            &self.wal_batched_entries,
            &self.wal_compression_saved_bytes,
            &self.wal_mid_batch_rotations,
            &self.wal_committer_wakeups,
            &self.compaction_bytes_read,
            &self.compaction_bytes_written,
            &self.values_separated,
            &self.log_gc_segments_reclaimed,
            &self.compaction_sched_runs,
            &self.compaction_throttle_waits,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub seq_bytes_written: u64,
    pub rand_bytes_read: u64,
    pub seq_bytes_read: u64,
    pub seeks: u64,
    pub dfs_appends: u64,
    pub dfs_reads: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub records_written: u64,
    pub records_read: u64,
    pub flushes: u64,
    pub compactions: u64,
    pub txn_commits: u64,
    pub txn_aborts: u64,
    pub dfs_retries: u64,
    pub corrupt_reads_recovered: u64,
    pub repairs_triggered: u64,
    pub replicas_repaired: u64,
    pub lease_expirations: u64,
    pub tablets_reassigned: u64,
    pub failover_log_bytes_redone: u64,
    pub fenced_writes_rejected: u64,
    pub orphan_segments_gced: u64,
    pub partial_checkpoints_removed: u64,
    pub crash_sites_hit: u64,
    pub maintenance_resumed: u64,
    pub rpc_requests: u64,
    pub rpc_retries: u64,
    pub rpc_timeouts: u64,
    pub connections_shed: u64,
    pub routing_cache_invalidations: u64,
    pub admission_limit: u64,
    pub requests_expired: u64,
    pub requests_shed_by_priority: u64,
    pub retry_budget_exhausted: u64,
    pub wal_batches_committed: u64,
    pub wal_batched_entries: u64,
    pub wal_compression_saved_bytes: u64,
    pub wal_mid_batch_rotations: u64,
    pub wal_committer_wakeups: u64,
    pub compaction_bytes_read: u64,
    pub compaction_bytes_written: u64,
    pub values_separated: u64,
    pub log_gc_segments_reclaimed: u64,
    pub compaction_sched_runs: u64,
    pub compaction_throttle_waits: u64,
}

impl MetricsSnapshot {
    /// Cache hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Difference `self - earlier`, counter-wise (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            seq_bytes_written: self
                .seq_bytes_written
                .saturating_sub(earlier.seq_bytes_written),
            rand_bytes_read: self.rand_bytes_read.saturating_sub(earlier.rand_bytes_read),
            seq_bytes_read: self.seq_bytes_read.saturating_sub(earlier.seq_bytes_read),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            dfs_appends: self.dfs_appends.saturating_sub(earlier.dfs_appends),
            dfs_reads: self.dfs_reads.saturating_sub(earlier.dfs_reads),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            records_written: self.records_written.saturating_sub(earlier.records_written),
            records_read: self.records_read.saturating_sub(earlier.records_read),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            txn_commits: self.txn_commits.saturating_sub(earlier.txn_commits),
            txn_aborts: self.txn_aborts.saturating_sub(earlier.txn_aborts),
            dfs_retries: self.dfs_retries.saturating_sub(earlier.dfs_retries),
            corrupt_reads_recovered: self
                .corrupt_reads_recovered
                .saturating_sub(earlier.corrupt_reads_recovered),
            repairs_triggered: self
                .repairs_triggered
                .saturating_sub(earlier.repairs_triggered),
            replicas_repaired: self
                .replicas_repaired
                .saturating_sub(earlier.replicas_repaired),
            lease_expirations: self
                .lease_expirations
                .saturating_sub(earlier.lease_expirations),
            tablets_reassigned: self
                .tablets_reassigned
                .saturating_sub(earlier.tablets_reassigned),
            failover_log_bytes_redone: self
                .failover_log_bytes_redone
                .saturating_sub(earlier.failover_log_bytes_redone),
            fenced_writes_rejected: self
                .fenced_writes_rejected
                .saturating_sub(earlier.fenced_writes_rejected),
            orphan_segments_gced: self
                .orphan_segments_gced
                .saturating_sub(earlier.orphan_segments_gced),
            partial_checkpoints_removed: self
                .partial_checkpoints_removed
                .saturating_sub(earlier.partial_checkpoints_removed),
            crash_sites_hit: self.crash_sites_hit.saturating_sub(earlier.crash_sites_hit),
            maintenance_resumed: self
                .maintenance_resumed
                .saturating_sub(earlier.maintenance_resumed),
            rpc_requests: self.rpc_requests.saturating_sub(earlier.rpc_requests),
            rpc_retries: self.rpc_retries.saturating_sub(earlier.rpc_retries),
            rpc_timeouts: self.rpc_timeouts.saturating_sub(earlier.rpc_timeouts),
            connections_shed: self
                .connections_shed
                .saturating_sub(earlier.connections_shed),
            routing_cache_invalidations: self
                .routing_cache_invalidations
                .saturating_sub(earlier.routing_cache_invalidations),
            // A gauge, not a counter: the later observation stands on
            // its own rather than as a difference.
            admission_limit: self.admission_limit,
            requests_expired: self
                .requests_expired
                .saturating_sub(earlier.requests_expired),
            requests_shed_by_priority: self
                .requests_shed_by_priority
                .saturating_sub(earlier.requests_shed_by_priority),
            retry_budget_exhausted: self
                .retry_budget_exhausted
                .saturating_sub(earlier.retry_budget_exhausted),
            wal_batches_committed: self
                .wal_batches_committed
                .saturating_sub(earlier.wal_batches_committed),
            wal_batched_entries: self
                .wal_batched_entries
                .saturating_sub(earlier.wal_batched_entries),
            wal_compression_saved_bytes: self
                .wal_compression_saved_bytes
                .saturating_sub(earlier.wal_compression_saved_bytes),
            wal_mid_batch_rotations: self
                .wal_mid_batch_rotations
                .saturating_sub(earlier.wal_mid_batch_rotations),
            wal_committer_wakeups: self
                .wal_committer_wakeups
                .saturating_sub(earlier.wal_committer_wakeups),
            compaction_bytes_read: self
                .compaction_bytes_read
                .saturating_sub(earlier.compaction_bytes_read),
            compaction_bytes_written: self
                .compaction_bytes_written
                .saturating_sub(earlier.compaction_bytes_written),
            values_separated: self
                .values_separated
                .saturating_sub(earlier.values_separated),
            log_gc_segments_reclaimed: self
                .log_gc_segments_reclaimed
                .saturating_sub(earlier.log_gc_segments_reclaimed),
            compaction_sched_runs: self
                .compaction_sched_runs
                .saturating_sub(earlier.compaction_sched_runs),
            compaction_throttle_waits: self
                .compaction_throttle_waits
                .saturating_sub(earlier.compaction_throttle_waits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = Metrics::new_handle();
        Metrics::add(&m.seq_bytes_written, 100);
        Metrics::incr(&m.seeks);
        Metrics::incr(&m.seeks);
        let s = m.snapshot();
        assert_eq!(s.seq_bytes_written, 100);
        assert_eq!(s.seeks, 2);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn hit_ratio() {
        let mut s = MetricsSnapshot::default();
        assert_eq!(s.cache_hit_ratio(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn delta_since_is_counterwise() {
        let m = Metrics::new_handle();
        Metrics::add(&m.records_written, 5);
        let before = m.snapshot();
        Metrics::add(&m.records_written, 7);
        Metrics::incr(&m.txn_commits);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.records_written, 7);
        assert_eq!(d.txn_commits, 1);
        assert_eq!(d.seeks, 0);
    }

    #[test]
    fn failover_counters_round_trip_through_snapshot() {
        let m = Metrics::new_handle();
        Metrics::incr(&m.lease_expirations);
        Metrics::add(&m.tablets_reassigned, 3);
        Metrics::add(&m.failover_log_bytes_redone, 4096);
        Metrics::add(&m.fenced_writes_rejected, 2);
        let s = m.snapshot();
        assert_eq!(s.lease_expirations, 1);
        assert_eq!(s.tablets_reassigned, 3);
        assert_eq!(s.failover_log_bytes_redone, 4096);
        assert_eq!(s.fenced_writes_rejected, 2);
        let d = s.delta_since(&MetricsSnapshot::default());
        assert_eq!(d.fenced_writes_rejected, 2);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn gc_counters_round_trip_through_snapshot() {
        let m = Metrics::new_handle();
        Metrics::add(&m.orphan_segments_gced, 4);
        Metrics::incr(&m.partial_checkpoints_removed);
        Metrics::add(&m.crash_sites_hit, 2);
        Metrics::incr(&m.maintenance_resumed);
        let s = m.snapshot();
        assert_eq!(s.orphan_segments_gced, 4);
        assert_eq!(s.partial_checkpoints_removed, 1);
        assert_eq!(s.crash_sites_hit, 2);
        assert_eq!(s.maintenance_resumed, 1);
        let d = s.delta_since(&MetricsSnapshot::default());
        assert_eq!(d.orphan_segments_gced, 4);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn rpc_counters_round_trip_through_snapshot() {
        let m = Metrics::new_handle();
        Metrics::add(&m.rpc_requests, 10);
        Metrics::add(&m.rpc_retries, 3);
        Metrics::incr(&m.rpc_timeouts);
        Metrics::add(&m.connections_shed, 2);
        Metrics::incr(&m.routing_cache_invalidations);
        let s = m.snapshot();
        assert_eq!(s.rpc_requests, 10);
        assert_eq!(s.rpc_retries, 3);
        assert_eq!(s.rpc_timeouts, 1);
        assert_eq!(s.connections_shed, 2);
        assert_eq!(s.routing_cache_invalidations, 1);
        let d = s.delta_since(&MetricsSnapshot::default());
        assert_eq!(d.rpc_retries, 3);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn overload_counters_round_trip_through_snapshot() {
        let m = Metrics::new_handle();
        m.admission_limit.store(48, Ordering::Relaxed);
        Metrics::add(&m.requests_expired, 5);
        Metrics::incr(&m.requests_shed_by_priority);
        Metrics::add(&m.retry_budget_exhausted, 2);
        let s = m.snapshot();
        assert_eq!(s.admission_limit, 48);
        assert_eq!(s.requests_expired, 5);
        assert_eq!(s.requests_shed_by_priority, 1);
        assert_eq!(s.retry_budget_exhausted, 2);
        let d = s.delta_since(&MetricsSnapshot::default());
        // The limit is a gauge: the later observation wins the delta.
        assert_eq!(d.admission_limit, 48);
        assert_eq!(d.requests_expired, 5);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn wal_counters_round_trip_through_snapshot() {
        let m = Metrics::new_handle();
        Metrics::incr(&m.wal_batches_committed);
        Metrics::add(&m.wal_batched_entries, 8);
        Metrics::add(&m.wal_compression_saved_bytes, 512);
        Metrics::incr(&m.wal_mid_batch_rotations);
        Metrics::add(&m.wal_committer_wakeups, 3);
        let s = m.snapshot();
        assert_eq!(s.wal_batches_committed, 1);
        assert_eq!(s.wal_batched_entries, 8);
        assert_eq!(s.wal_compression_saved_bytes, 512);
        assert_eq!(s.wal_mid_batch_rotations, 1);
        assert_eq!(s.wal_committer_wakeups, 3);
        let d = s.delta_since(&MetricsSnapshot::default());
        assert_eq!(d.wal_batched_entries, 8);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = Metrics::new_handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        Metrics::incr(&m.records_written);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().records_written, 4000);
    }
}
