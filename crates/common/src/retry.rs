//! Retry policy: exponential backoff with deterministic jitter.
//!
//! The DFS replication pipeline and read path retry transient failures
//! (dead data nodes mid-restart, injected I/O faults) instead of bubbling
//! them to the tablet server. Retry decisions key off
//! [`Error::is_retriable`]; backoff delays are derived from a seed so a
//! seeded test replays the exact same sleep schedule.

use crate::{Error, Result};
use std::time::Duration;

/// Exponential-backoff retry schedule.
///
/// Attempt `n` (0-based) sleeps `base_delay * 2^n`, capped at
/// `max_delay`, stretched by a deterministic jitter factor in
/// `[1, 1 + jitter]`. The jitter for a given `(seed, attempt)` pair is a
/// pure function, so two runs with the same seed produce identical
/// schedules — the determinism contract the fault-injection tests rely
/// on.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `1` disables retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound any single delay is clamped to.
    pub max_delay: Duration,
    /// Fractional jitter added on top of the exponential delay (`0.25`
    /// stretches delays by up to 25%).
    pub jitter: f64,
    /// Seed the jitter sequence is derived from.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            jitter: 0.25,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Policy with `max_attempts` attempts and default delays.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Policy that retries `max_attempts` times without sleeping — unit
    /// tests use this to keep fault-injection runs fast.
    pub fn no_delay(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Builder-style seed override (ties the jitter stream to a test's
    /// master seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The delay to sleep after failed attempt `attempt` (0-based).
    /// Deterministic in `(self, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        if self.jitter <= 0.0 || exp.is_zero() {
            return exp;
        }
        // SplitMix64 over (seed, attempt) — a pure function, no shared
        // RNG state, so concurrent callers stay deterministic.
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        exp.mul_f64(1.0 + self.jitter * unit)
    }

    /// Run `op` until it succeeds, fails with a non-retriable error, or
    /// exhausts the attempt budget. `op` receives the 0-based attempt
    /// number so callers can count retries.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retriable() && attempt + 1 < self.max_attempts => {
                    let delay = self.backoff(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Like [`RetryPolicy::run`] but maps an exhausted budget to the
    /// supplied context (callers distinguish "gave up" from "failed").
    pub fn run_ctx<T>(&self, context: &str, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        self.run(&mut op).map_err(|e| {
            if e.is_retriable() {
                Error::Unavailable(format!("{context}: retries exhausted: {e}"))
            } else {
                e
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let p = RetryPolicy::new(5);
        let calls = AtomicU32::new(0);
        let out = p
            .run(|_| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(42)
            })
            .unwrap();
        assert_eq!(out, 42);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn retries_transient_errors_then_succeeds() {
        let p = RetryPolicy::no_delay(5);
        let out = p
            .run(|attempt| {
                if attempt < 3 {
                    Err(Error::NodeDown("dn-0".into()))
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(out, 3);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let p = RetryPolicy::no_delay(3);
        let calls = AtomicU32::new(0);
        let err = p
            .run::<()>(|_| {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(Error::Unavailable("still down".into()))
            })
            .unwrap_err();
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert!(err.is_retriable());
    }

    #[test]
    fn non_retriable_errors_fail_fast() {
        let p = RetryPolicy::no_delay(5);
        let calls = AtomicU32::new(0);
        let err = p
            .run::<()>(|_| {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(Error::Corruption("bad bytes".into()))
            })
            .unwrap_err();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(err.is_corruption());
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(8),
            jitter: 0.5,
            seed: 99,
        };
        let q = p.clone();
        for attempt in 0..8 {
            let a = p.backoff(attempt);
            let b = q.backoff(attempt);
            assert_eq!(a, b, "same (seed, attempt) must give the same delay");
            let floor = Duration::from_millis((1u64 << attempt).min(8));
            assert!(a >= floor);
            assert!(a <= floor.mul_f64(1.5));
        }
        // Different seeds give different jitter somewhere in the schedule.
        let r = RetryPolicy {
            seed: 100,
            ..p.clone()
        };
        assert!((0..8).any(|i| r.backoff(i) != p.backoff(i)));
    }

    #[test]
    fn run_ctx_labels_exhausted_budgets() {
        let p = RetryPolicy::no_delay(2);
        let err = p
            .run_ctx::<()>("pipeline", |_| Err(Error::NodeDown("dn-3".into())))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("pipeline"), "missing context: {msg}");
        assert!(msg.contains("retries exhausted"), "missing label: {msg}");
    }
}
