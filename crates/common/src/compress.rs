//! Vendored LZ4-style block codec for per-batch log compression.
//!
//! The workspace builds hermetically (no registry), so the codec is
//! implemented here rather than pulled in as a dependency. The format is
//! the classic LZ4 block layout — token-prefixed sequences of literals
//! and 16-bit-offset matches — produced by a greedy single-pass encoder
//! over a small position hash table. It is self-consistent (this decoder
//! reads exactly what this encoder writes), bounds-checked everywhere,
//! and never panics on hostile input.
//!
//! ```text
//! sequence := token | [lit-ext]* | literals | offset(u16 LE) | [match-ext]*
//! token    := (literal_len.min(15) << 4) | (match_len - 4).min(15)
//! ```
//!
//! Length nibbles of 15 extend with 255-valued continuation bytes (plus a
//! final byte < 255), exactly like LZ4. The final sequence of a block is
//! literals-only: the token's match nibble is unused and the block ends
//! after the literal run.

use crate::error::{Error, Result};

/// Minimum match length the encoder emits (LZ4's MINMATCH).
const MIN_MATCH: usize = 4;
/// Maximum match offset representable in the 16-bit offset field.
const MAX_OFFSET: usize = 0xFFFF;
/// Position hash-table size (power of two).
const HASH_SIZE: usize = 1 << 13;

/// Supported batch-compression codecs, selected in `LogConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Entries are framed raw (the seed behavior).
    #[default]
    None,
    /// Entries are compressed with the vendored LZ4-style block codec.
    Lz4,
}

impl Compression {
    /// Whether this codec actually compresses.
    pub fn is_enabled(self) -> bool {
        self != Compression::None
    }
}

#[inline]
fn read_u32(src: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]])
}

#[inline]
fn hash(v: u32) -> usize {
    // Fibonacci hashing on the 4-byte window; top bits select the bucket.
    (v.wrapping_mul(2_654_435_761) >> (32 - 13)) as usize & (HASH_SIZE - 1)
}

fn put_len(dst: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        dst.push(255);
        len -= 255;
    }
    dst.push(len as u8);
}

/// Compress `src` into `dst` (cleared first). Returns the compressed
/// length. The output of an incompressible input can exceed the input
/// length by the literal-run framing overhead — callers compare sizes
/// and keep the raw bytes when compression does not pay.
pub fn lz4_compress(src: &[u8], dst: &mut Vec<u8>) -> usize {
    dst.clear();
    dst.reserve(src.len() / 2 + 16);
    let mut table = [0u32; HASH_SIZE]; // position + 1; 0 = empty
    let mut i = 0usize;
    let mut lit_start = 0usize;
    // Stop the match search early enough that every match has room for
    // the 4-byte comparison window.
    while i + MIN_MATCH <= src.len() {
        let window = read_u32(src, i);
        let slot = hash(window);
        let cand = table[slot] as usize;
        table[slot] = (i + 1) as u32;
        if cand > 0 {
            let m = cand - 1;
            if i - m <= MAX_OFFSET && read_u32(src, m) == window {
                // Extend the match forward as far as it goes.
                let mut len = MIN_MATCH;
                while i + len < src.len() && src[m + len] == src[i + len] {
                    len += 1;
                }
                let literals = &src[lit_start..i];
                let lit_nibble = literals.len().min(15);
                let match_nibble = (len - MIN_MATCH).min(15);
                dst.push(((lit_nibble as u8) << 4) | match_nibble as u8);
                if lit_nibble == 15 {
                    put_len(dst, literals.len() - 15);
                }
                dst.extend_from_slice(literals);
                dst.extend_from_slice(&((i - m) as u16).to_le_bytes());
                if match_nibble == 15 {
                    put_len(dst, len - MIN_MATCH - 15);
                }
                i += len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    // Trailing literals-only sequence (always present, possibly empty,
    // so the decoder can rely on at least one token per block).
    let literals = &src[lit_start..];
    let lit_nibble = literals.len().min(15);
    dst.push((lit_nibble as u8) << 4);
    if lit_nibble == 15 {
        put_len(dst, literals.len() - 15);
    }
    dst.extend_from_slice(literals);
    dst.len()
}

fn get_len(src: &[u8], pos: &mut usize, base: usize, context: &str) -> Result<usize> {
    let mut len = base;
    if base == 15 {
        loop {
            let b = *src
                .get(*pos)
                .ok_or_else(|| Error::Corruption(format!("{context}: truncated length run")))?;
            *pos += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Decompress a block produced by [`lz4_compress`] into exactly
/// `raw_len` bytes. Every structural violation — truncated runs,
/// out-of-range offsets, output over- or under-run — is a
/// [`Error::Corruption`]; the decoder never reads or writes out of
/// bounds and never panics.
pub fn lz4_decompress(src: &[u8], raw_len: usize, context: &str) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    loop {
        let token = *src
            .get(pos)
            .ok_or_else(|| Error::Corruption(format!("{context}: truncated token")))?;
        pos += 1;
        let lit_len = get_len(src, &mut pos, (token >> 4) as usize, context)?;
        let lit_end = pos
            .checked_add(lit_len)
            .ok_or_else(|| Error::Corruption(format!("{context}: literal length overflow")))?;
        if lit_end > src.len() {
            return Err(Error::Corruption(format!(
                "{context}: literal run past end of block"
            )));
        }
        out.extend_from_slice(&src[pos..lit_end]);
        pos = lit_end;
        if pos == src.len() {
            break; // final literals-only sequence
        }
        if pos + 2 > src.len() {
            return Err(Error::Corruption(format!(
                "{context}: truncated match offset"
            )));
        }
        let offset = u16::from_le_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(Error::Corruption(format!(
                "{context}: match offset {offset} outside {} decoded bytes",
                out.len()
            )));
        }
        let match_len = get_len(src, &mut pos, (token & 0x0F) as usize, context)? + MIN_MATCH;
        if out.len() + match_len > raw_len {
            return Err(Error::Corruption(format!(
                "{context}: decoded length exceeds announced {raw_len}"
            )));
        }
        // Byte-wise copy: matches may overlap their own output (RLE).
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
        if out.len() > raw_len {
            return Err(Error::Corruption(format!(
                "{context}: decoded length exceeds announced {raw_len}"
            )));
        }
    }
    if out.len() != raw_len {
        return Err(Error::Corruption(format!(
            "{context}: decoded {} bytes, announced {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(src: &[u8]) -> Vec<u8> {
        let mut dst = Vec::new();
        lz4_compress(src, &mut dst);
        lz4_decompress(&dst, src.len(), "test").unwrap()
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"abc"), b"abc");
    }

    #[test]
    fn repetitive_input_compresses() {
        let src: Vec<u8> = b"log-entry-payload-".repeat(64);
        let mut dst = Vec::new();
        let n = lz4_compress(&src, &mut dst);
        assert!(n < src.len() / 4, "{n} bytes for {} raw", src.len());
        assert_eq!(lz4_decompress(&dst, src.len(), "t").unwrap(), src);
    }

    #[test]
    fn long_runs_exercise_length_extensions() {
        // >15 literals and >19-byte matches force both extension paths.
        let mut src: Vec<u8> = (0u8..=255).collect(); // incompressible literals
        src.extend(std::iter::repeat_n(7u8, 1000)); // one giant match
        assert_eq!(round_trip(&src), src);
    }

    #[test]
    fn decompress_rejects_wrong_raw_len() {
        let src = b"abcdabcdabcdabcd".to_vec();
        let mut dst = Vec::new();
        lz4_compress(&src, &mut dst);
        assert!(lz4_decompress(&dst, src.len() + 1, "t").is_err());
        assert!(lz4_decompress(&dst, src.len().saturating_sub(1), "t").is_err());
    }

    #[test]
    fn decompress_rejects_bad_offset() {
        // Token: 0 literals, match nibble 0 (len 4), offset 9 with only
        // 0 bytes decoded so far.
        let block = [0x00u8, 9, 0, 0];
        assert!(lz4_decompress(&block, 4, "t").is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(src in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(round_trip(&src), src);
        }

        #[test]
        fn prop_structured_round_trip(
            chunk in proptest::collection::vec(any::<u8>(), 1..32),
            reps in 1usize..64,
            tail in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut src = chunk.repeat(reps);
            src.extend(tail);
            prop_assert_eq!(round_trip(&src), src);
        }

        #[test]
        fn prop_decompress_never_panics_on_garbage(
            block in proptest::collection::vec(any::<u8>(), 0..256),
            raw_len in 0usize..1024,
        ) {
            let _ = lz4_decompress(&block, raw_len, "garbage");
        }
    }
}
