//! Shared foundation types for the LogBase workspace.
//!
//! This crate defines the vocabulary used by every other crate in the
//! reproduction of *LogBase: A Scalable Log-structured Database System in
//! the Cloud* (VLDB 2012):
//!
//! - [`Timestamp`] and [`Lsn`] — the two monotonic counters the paper uses
//!   (commit timestamps for versioning, log sequence numbers for recovery).
//! - [`LogPtr`] — the `(file number, offset, length)` triple an in-memory
//!   index entry points at (§3.5 of the paper).
//! - [`Record`] and [`RecordMeta`] — a versioned cell of a column group.
//! - [`schema`] — tables, column groups and the vertical-partitioning
//!   vocabulary of §3.2.
//! - [`codec`] — CRC-framed length-prefixed encoding used by the log and by
//!   SSTable blocks.
//! - [`metrics`] — cheap atomic counters used by the benchmark harness to
//!   report I/O shapes (seeks, sequential bytes, cache hits).

pub mod cache;
pub mod codec;
pub mod compress;
pub mod config;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod rate;
pub mod retry;
pub mod rpc;
pub mod schema;
pub mod types;

pub use error::{Error, Result};
pub use rate::RateLimiter;
pub use retry::RetryPolicy;
pub use types::{LogPtr, Lsn, Record, RecordMeta, RowKey, Timestamp, Value};
