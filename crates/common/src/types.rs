//! Core value types: timestamps, LSNs, log pointers and records.

use bytes::Bytes;
use std::fmt;

/// A commit timestamp / version number.
///
/// The paper (§3.5) composes index keys as `(primary key, timestamp)`;
/// timestamps are issued by the cluster-wide timestamp authority so that
/// committed update transactions are globally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest timestamp; no real write carries it.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest timestamp; used as an exclusive upper bound in reads.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Next timestamp (saturating).
    #[must_use]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// Previous timestamp (saturating).
    #[must_use]
    pub fn prev(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// Log sequence number.
///
/// LSNs order log records within one tablet server's log instance and are
/// the recovery cursor: a checkpoint records the LSN up to which index
/// effects are persisted, and redo replays records with larger LSNs (§3.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// LSN zero: the log is empty / recovery starts at the beginning.
    pub const ZERO: Lsn = Lsn(0);

    /// Next LSN (saturating).
    #[must_use]
    pub fn next(self) -> Lsn {
        Lsn(self.0.saturating_add(1))
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl From<u64> for Lsn {
    fn from(v: u64) -> Self {
        Lsn(v)
    }
}

/// Pointer from an index entry into the log repository.
///
/// Mirrors the paper's `Ptr` (§3.5): "the file number, the offset in the
/// file, the record's size". Segments are identified by a dense `u32`
/// sequence number assigned by the log writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogPtr {
    /// Log segment (file) number.
    pub segment: u32,
    /// Byte offset of the framed record within the segment.
    pub offset: u64,
    /// Length in bytes of the framed record.
    pub len: u32,
}

impl LogPtr {
    /// Construct a pointer.
    pub fn new(segment: u32, offset: u64, len: u32) -> Self {
        LogPtr {
            segment,
            offset,
            len,
        }
    }
}

impl fmt::Display for LogPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg:{}+{}#{}", self.segment, self.offset, self.len)
    }
}

/// A record's primary key. Cheaply cloneable byte string.
pub type RowKey = Bytes;

/// A record's value. Cheaply cloneable byte string.
pub type Value = Bytes;

/// Metadata identifying one version of one cell (row × column group).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecordMeta {
    /// Primary key of the row.
    pub key: RowKey,
    /// Column group the value belongs to (id into the table schema).
    pub column_group: u16,
    /// Version: the commit timestamp of the write.
    pub timestamp: Timestamp,
}

/// One versioned value of a row's column group.
///
/// `value == None` encodes an *invalidated log entry* — the tombstone the
/// paper writes on `Delete` (§3.6.3) so the deletion survives recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Identity and version of the record.
    pub meta: RecordMeta,
    /// The payload; `None` is a tombstone.
    pub value: Option<Value>,
}

impl Record {
    /// Build a live record.
    pub fn put(
        key: impl Into<RowKey>,
        column_group: u16,
        ts: Timestamp,
        value: impl Into<Value>,
    ) -> Self {
        Record {
            meta: RecordMeta {
                key: key.into(),
                column_group,
                timestamp: ts,
            },
            value: Some(value.into()),
        }
    }

    /// Build a tombstone (invalidated entry).
    pub fn tombstone(key: impl Into<RowKey>, column_group: u16, ts: Timestamp) -> Self {
        Record {
            meta: RecordMeta {
                key: key.into(),
                column_group,
                timestamp: ts,
            },
            value: None,
        }
    }

    /// True when this version deletes the record.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Payload size in bytes (0 for tombstones).
    pub fn value_len(&self) -> usize {
        self.value.as_ref().map_or(0, Bytes::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_arithmetic() {
        let a = Timestamp(5);
        assert!(a < a.next());
        assert_eq!(a.next().prev(), a);
        assert_eq!(Timestamp::ZERO.prev(), Timestamp::ZERO);
        assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
    }

    #[test]
    fn lsn_is_ordered() {
        assert!(Lsn::ZERO < Lsn(1));
        assert_eq!(Lsn(7).next(), Lsn(8));
    }

    #[test]
    fn log_ptr_display() {
        let p = LogPtr::new(3, 4096, 128);
        assert_eq!(p.to_string(), "seg:3+4096#128");
    }

    #[test]
    fn record_constructors() {
        let r = Record::put(&b"user1"[..], 0, Timestamp(9), &b"v"[..]);
        assert!(!r.is_tombstone());
        assert_eq!(r.value_len(), 1);
        let t = Record::tombstone(&b"user1"[..], 0, Timestamp(10));
        assert!(t.is_tombstone());
        assert_eq!(t.value_len(), 0);
        assert!(t.meta.timestamp > r.meta.timestamp);
    }
}
