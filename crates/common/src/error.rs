//! Workspace-wide error type.
//!
//! A single error enum keeps the crates' `Result` signatures uniform and
//! lets the cluster layer propagate storage errors from any substrate
//! without boxing. Variants are grouped by the subsystem that raises them.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the LogBase storage stack.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (disk-backed DFS data nodes).
    Io(std::io::Error),
    /// A frame or block failed its CRC32 check — torn or corrupt write.
    ChecksumMismatch {
        /// Where the corruption was detected (file/segment name).
        context: String,
        /// CRC stored alongside the payload.
        expected: u32,
        /// CRC recomputed over the payload.
        actual: u32,
    },
    /// Malformed on-disk or in-log data that is not a CRC failure.
    Corruption(String),
    /// Named DFS file does not exist.
    FileNotFound(String),
    /// Attempted to create a DFS file that already exists.
    FileExists(String),
    /// Read past the end of a file or segment.
    OutOfBounds {
        /// File being read.
        file: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        size: u64,
    },
    /// Not enough live data nodes to satisfy the replication factor.
    InsufficientReplicas {
        /// Replicas required.
        wanted: usize,
        /// Live nodes available.
        available: usize,
    },
    /// The addressed data node is stopped (failure injection).
    NodeDown(String),
    /// Table/tablet/column-group level schema errors.
    Schema(String),
    /// No tablet server currently owns the requested key.
    TabletNotServed(String),
    /// The tablet was reassigned to another server; re-resolve the route
    /// and retry there.
    TabletMoved(String),
    /// Write rejected because the issuer's lease epoch is stale — the
    /// server was declared dead and its tablets fenced off. Permanently
    /// fatal for the old session: only re-registering (with a fresh,
    /// higher epoch) clears it.
    Fenced {
        /// Server whose write was rejected.
        server: String,
        /// Epoch the zombie still holds.
        held: u64,
        /// Current epoch for the server's tablets.
        current: u64,
    },
    /// Transaction aborted by validation (first-committer-wins conflict).
    TxnConflict {
        /// Human-readable description of the conflicting key.
        detail: String,
    },
    /// Transaction aborted explicitly or by an internal invariant.
    TxnAborted(String),
    /// Operation attempted on a server that is shut down or recovering.
    Unavailable(String),
    /// Server shed the request under load (admission control rejected
    /// it). Retriable after backoff — unlike `Unavailable`, the server
    /// is healthy, just momentarily saturated. `retry_after` is the
    /// server's suggested backoff in microseconds (0 = no hint); clients
    /// honor it so shed traffic returns after the congestion window, not
    /// inside it.
    Busy {
        /// Human-readable shed reason (may be empty on the hot path —
        /// the shed response is allocation-free).
        detail: String,
        /// Server-suggested retry delay in microseconds; 0 means the
        /// server offered no hint.
        retry_after_micros: u64,
    },
    /// A wire frame announced a length above the transport's bound —
    /// either corruption of the length prefix or a hostile peer. The
    /// connection must be dropped; the frame can never be read.
    FrameTooLarge {
        /// Announced payload length.
        announced: u64,
        /// The transport's maximum frame size.
        max: u64,
    },
    /// The caller's per-operation deadline elapsed before the operation
    /// (including retries) completed. Not retriable: the retry budget
    /// *is* the deadline.
    DeadlineExceeded(String),
    /// The server observed that the request's propagated deadline had
    /// already expired before dispatch and dropped it without doing the
    /// work. Retriable on the wire (another attempt with a fresh budget
    /// can succeed), though a client whose own deadline has passed will
    /// surface [`Error::DeadlineExceeded`] instead of retrying.
    Expired(String),
    /// A named crash point fired: the process is simulating a crash at
    /// this exact site. The error must propagate to the top of the
    /// maintenance call without any cleanup, mimicking a process that
    /// died mid-operation; tests then drop the server and recover from
    /// DFS state alone.
    CrashPoint {
        /// The registered site name, e.g. `compaction.after_sorted_write`.
        site: String,
    },
    /// Checkpoint or recovery metadata is inconsistent.
    Recovery(String),
    /// Invalid argument supplied by a caller.
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::ChecksumMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {context}: stored {expected:#010x}, computed {actual:#010x}"
            ),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::FileNotFound(name) => write!(f, "file not found: {name}"),
            Error::FileExists(name) => write!(f, "file already exists: {name}"),
            Error::OutOfBounds {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "read out of bounds: {file} offset {offset} len {len} but size is {size}"
            ),
            Error::InsufficientReplicas { wanted, available } => write!(
                f,
                "insufficient replicas: wanted {wanted}, only {available} live data nodes"
            ),
            Error::NodeDown(node) => write!(f, "data node down: {node}"),
            Error::Schema(msg) => write!(f, "schema error: {msg}"),
            Error::TabletNotServed(key) => write!(f, "no tablet serves key: {key}"),
            Error::TabletMoved(detail) => write!(f, "tablet moved: {detail}"),
            Error::Fenced {
                server,
                held,
                current,
            } => write!(
                f,
                "fenced: {server} holds stale epoch {held} (current {current})"
            ),
            Error::TxnConflict { detail } => write!(f, "transaction conflict: {detail}"),
            Error::TxnAborted(msg) => write!(f, "transaction aborted: {msg}"),
            Error::Unavailable(msg) => write!(f, "service unavailable: {msg}"),
            Error::Busy {
                detail,
                retry_after_micros,
            } => {
                write!(f, "server busy (load shed): {detail}")?;
                if *retry_after_micros > 0 {
                    write!(f, " [retry after {retry_after_micros}us]")?;
                }
                Ok(())
            }
            Error::FrameTooLarge { announced, max } => write!(
                f,
                "frame too large: announced {announced} bytes exceeds the {max}-byte bound"
            ),
            Error::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            Error::Expired(msg) => write!(f, "request expired before dispatch: {msg}"),
            Error::CrashPoint { site } => write!(f, "injected crash at {site}"),
            Error::Recovery(msg) => write!(f, "recovery error: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// A [`Error::Busy`] with no retry-after hint.
    pub fn busy(detail: impl Into<String>) -> Self {
        Error::Busy {
            detail: detail.into(),
            retry_after_micros: 0,
        }
    }

    /// The server's suggested retry delay, when the error carries one.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            Error::Busy {
                retry_after_micros, ..
            } if *retry_after_micros > 0 => {
                Some(std::time::Duration::from_micros(*retry_after_micros))
            }
            _ => None,
        }
    }

    /// True when retrying the operation against a different replica or
    /// after re-election could succeed (transient cluster conditions).
    /// `Io` errors count only for the transient kinds the fault injector
    /// and flaky transports produce; a hard disk error stays fatal.
    pub fn is_retriable(&self) -> bool {
        match self {
            Error::NodeDown(_)
            | Error::Unavailable(_)
            | Error::Busy { .. }
            | Error::Expired(_)
            | Error::InsufficientReplicas { .. }
            | Error::TabletMoved(_) => true,
            // A fenced session can never succeed by retrying: its epoch
            // only grows staler. The zombie must re-register instead.
            Error::Fenced { .. } => false,
            // A fired crash point simulates process death: nothing may
            // retry past it, or the "crash" would not be a crash.
            Error::CrashPoint { .. } => false,
            Error::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// True when the error indicates on-disk corruption rather than a
    /// logical or transient failure.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            Error::ChecksumMismatch { .. } | Error::Corruption(_) | Error::FrameTooLarge { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = Error::ChecksumMismatch {
            context: "segment-000001".to_string(),
            expected: 0xdead_beef,
            actual: 0x1234_5678,
        };
        let s = e.to_string();
        assert!(s.contains("segment-000001"));
        assert!(s.contains("0xdeadbeef"));
    }

    #[test]
    fn io_error_is_source() {
        let e = Error::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retriable_classification() {
        assert!(Error::NodeDown("dn-1".into()).is_retriable());
        assert!(Error::Unavailable("recovering".into()).is_retriable());
        assert!(!Error::Corruption("bad".into()).is_retriable());
        assert!(Error::Corruption("bad".into()).is_corruption());
        assert!(!Error::FileNotFound("x".into()).is_corruption());
    }

    #[test]
    fn tablet_moved_is_retriable_but_fenced_never_is() {
        assert!(Error::TabletMoved("range 3 now on srv-2".into()).is_retriable());
        let fenced = Error::Fenced {
            server: "srv-1".into(),
            held: 4,
            current: 7,
        };
        assert!(!fenced.is_retriable());
        assert!(!fenced.is_corruption());
        let s = fenced.to_string();
        assert!(s.contains("srv-1") && s.contains('4') && s.contains('7'));
    }

    #[test]
    fn crash_point_is_neither_retriable_nor_corruption() {
        let e = Error::CrashPoint {
            site: "compaction.after_sorted_write".into(),
        };
        assert!(!e.is_retriable());
        assert!(!e.is_corruption());
        assert!(e.to_string().contains("compaction.after_sorted_write"));
    }

    #[test]
    fn busy_is_retriable_but_deadline_and_oversized_frames_are_not() {
        assert!(Error::busy("accept queue full").is_retriable());
        let deadline = Error::DeadlineExceeded("put: 250ms elapsed".into());
        assert!(!deadline.is_retriable());
        assert!(deadline.to_string().contains("250ms"));
        let oversized = Error::FrameTooLarge {
            announced: 1 << 40,
            max: 1 << 24,
        };
        assert!(!oversized.is_retriable());
        // A bogus length prefix is corruption of the stream: the frame
        // can never be read and the connection must be dropped.
        assert!(oversized.is_corruption());
        assert!(oversized.to_string().contains("bound"));
    }

    #[test]
    fn busy_carries_an_optional_retry_after_hint() {
        assert_eq!(Error::busy("shed").retry_after(), None);
        let hinted = Error::Busy {
            detail: String::new(),
            retry_after_micros: 2_500,
        };
        assert_eq!(
            hinted.retry_after(),
            Some(std::time::Duration::from_micros(2_500))
        );
        assert!(hinted.is_retriable());
        assert!(hinted.to_string().contains("2500us"));
    }

    #[test]
    fn expired_is_retriable_on_the_wire() {
        let e = Error::Expired("deadline passed 3ms before dispatch".into());
        assert!(e.is_retriable());
        assert!(!e.is_corruption());
        assert!(e.to_string().contains("before dispatch"));
    }

    #[test]
    fn io_errors_are_retriable_only_when_transient() {
        let transient = Error::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected fault",
        ));
        assert!(transient.is_retriable());
        let hard = Error::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "disk gone",
        ));
        assert!(!hard.is_retriable());
    }
}
