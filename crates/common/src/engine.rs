//! The storage-engine abstraction shared by LogBase and the baselines.
//!
//! The paper's evaluation (§4) runs identical workloads against LogBase,
//! an HBase-model WAL+Data engine, and LRS (a disk-based log-structured
//! record store). [`StorageEngine`] is the common surface the benchmark
//! harness and the cluster layer drive, mirroring the paper's Data Access
//! Manager operations (§3.3): `Insert`, `Delete`, `Update`, `Get`, and
//! `Scan`.

use crate::error::Result;
use crate::schema::KeyRange;
use crate::types::{RowKey, Timestamp, Value};

/// One record returned by a scan: `(key, version, value)`.
pub type ScanItem = (RowKey, Timestamp, Value);

/// Uniform single-server storage API.
///
/// Implementations are internally synchronized (`&self` methods,
/// `Send + Sync`) because benchmark clients drive them from many threads.
pub trait StorageEngine: Send + Sync {
    /// Insert or update `key` in column group `cg` with `value`,
    /// returning the commit timestamp assigned to the write.
    fn put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp>;

    /// Latest visible value of `key` (`None` when absent or deleted).
    fn get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>>;

    /// Value of `key` visible at timestamp `at` (multiversion read).
    fn get_at(&self, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>>;

    /// Delete `key` (durably — survives restart).
    fn delete(&self, cg: u16, key: &[u8]) -> Result<()>;

    /// Range scan: latest visible version of up to `limit` keys in
    /// `range`, in key order.
    fn range_scan(&self, cg: u16, range: &KeyRange, limit: usize) -> Result<Vec<ScanItem>>;

    /// Full scan of the column group, in no particular order. Returns
    /// the number of live records visited.
    fn full_scan(&self, cg: u16) -> Result<u64>;

    /// Force buffered state to durable storage (flush memtables /
    /// checkpoint indexes). Used between benchmark phases.
    fn sync(&self) -> Result<()>;

    /// Engine name for reports.
    fn engine_name(&self) -> &'static str;
}
