//! Log readers: point reads by pointer, sequential segment scans.

use crate::entry::LogEntry;
use crate::{parse_segment_name, segment_name};
use logbase_common::codec::{self, FRAME_HEADER_LEN};
use logbase_common::{Error, LogPtr, Result};
use logbase_dfs::{Dfs, DfsFileReader};

/// Read the single entry a pointer addresses — the long-tail read path:
/// one positional DFS read (one disk seek) fetches exactly the record.
pub fn read_entry(dfs: &Dfs, prefix: &str, ptr: LogPtr) -> Result<LogEntry> {
    read_entry_in(dfs, &segment_name(prefix, ptr.segment), ptr)
}

/// Read one entry out of an explicitly named segment file (used when a
/// segment directory maps pointer segment ids to sorted-segment files).
pub fn read_entry_in(dfs: &Dfs, name: &str, ptr: LogPtr) -> Result<LogEntry> {
    let framed = dfs.read(name, ptr.offset, u64::from(ptr.len))?;
    let (payload, consumed) = codec::decode_frame(&framed, name)?;
    if consumed != ptr.len as usize {
        return Err(Error::Corruption(format!(
            "{name}: pointer length {} does not match frame length {consumed}",
            ptr.len
        )));
    }
    LogEntry::decode(payload)
}

/// Decode entries out of a pre-fetched byte window of a segment file.
///
/// `window_start` is the file offset the window begins at; `ptr` must lie
/// entirely inside the window. Scans that coalesce adjacent pointers into
/// one DFS read use this to decode each record out of the shared buffer.
pub fn decode_entry_in_window(
    window: &bytes::Bytes,
    window_start: u64,
    ptr: LogPtr,
    context: &str,
) -> Result<LogEntry> {
    let start = (ptr.offset - window_start) as usize;
    let end = start + ptr.len as usize;
    if ptr.offset < window_start || end > window.len() {
        return Err(Error::Corruption(format!(
            "{context}: pointer {ptr} outside fetched window"
        )));
    }
    let (payload, consumed) = codec::decode_frame(&window[start..end], context)?;
    if consumed != ptr.len as usize {
        return Err(Error::Corruption(format!(
            "{context}: pointer length {} does not match frame length {consumed}",
            ptr.len
        )));
    }
    LogEntry::decode(payload)
}

/// Position of a scanned entry within the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogCursor {
    /// Segment the entry lives in.
    pub segment: u32,
    /// Pointer to the entry's frame.
    pub ptr: LogPtr,
}

/// Streaming scanner over one segment.
pub struct SegmentScanner {
    reader: DfsFileReader,
    segment: u32,
    name: String,
    pos: u64,
}

impl SegmentScanner {
    /// Open a scanner at `start_offset` within segment `segment`.
    pub fn open(dfs: &Dfs, prefix: &str, segment: u32, start_offset: u64) -> Result<Self> {
        let name = segment_name(prefix, segment);
        let mut reader = dfs.open_reader(&name)?;
        reader.seek(start_offset);
        Ok(SegmentScanner {
            reader,
            segment,
            name,
            pos: start_offset,
        })
    }

    /// Next entry, or `None` at end of segment.
    ///
    /// A truncated trailing frame (torn write at the moment of a crash)
    /// ends the scan cleanly — exactly the ARIES-style tolerance the
    /// recovery path needs; a CRC mismatch inside the segment is an error.
    pub fn next_entry(&mut self) -> Result<Option<(LogPtr, LogEntry)>> {
        let remaining = self.reader.remaining();
        if remaining < FRAME_HEADER_LEN as u64 {
            return Ok(None);
        }
        let header = self.reader.read_exact(FRAME_HEADER_LEN as u64)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
        if remaining < FRAME_HEADER_LEN as u64 + len {
            // Torn tail: treat as end of log.
            return Ok(None);
        }
        let payload = self.reader.read_exact(len)?;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let actual = crc32fast_hash(&payload);
        if actual != crc {
            return Err(Error::ChecksumMismatch {
                context: self.name.clone(),
                expected: crc,
                actual,
            });
        }
        let total = FRAME_HEADER_LEN as u64 + len;
        let ptr = LogPtr::new(self.segment, self.pos, total as u32);
        self.pos += total;
        let entry = LogEntry::decode(payload)?;
        Ok(Some((ptr, entry)))
    }
}

fn crc32fast_hash(data: &[u8]) -> u32 {
    // Wrapper kept local so the wal crate owns its hashing choice.
    let mut h = crc32fast::Hasher::new();
    h.update(data);
    h.finalize()
}

/// Scan every segment of a log from `(start_segment, start_offset)` to the
/// tail, invoking `f` for each entry. This is the recovery/redo walk
/// (§3.8) and the compaction input scan (§3.6.5).
pub fn scan_log<F>(
    dfs: &Dfs,
    prefix: &str,
    start_segment: u32,
    start_offset: u64,
    mut f: F,
) -> Result<u64>
where
    F: FnMut(LogPtr, LogEntry) -> Result<()>,
{
    let mut segments: Vec<u32> = dfs
        .list(&format!("{prefix}/segment-"))
        .into_iter()
        .filter_map(|n| parse_segment_name(prefix, &n))
        .filter(|s| *s >= start_segment)
        .collect();
    segments.sort_unstable();
    let mut count = 0u64;
    for seg in segments {
        let offset = if seg == start_segment {
            start_offset
        } else {
            0
        };
        let mut scanner = SegmentScanner::open(dfs, prefix, seg, offset)?;
        while let Some((ptr, entry)) = scanner.next_entry()? {
            f(ptr, entry)?;
            count += 1;
        }
    }
    Ok(count)
}

/// Crash-tolerant variant of [`scan_log`] used by recovery (§3.8).
///
/// A crash mid-append can leave a torn frame — a length field, payload or
/// CRC that was only partially written — at the tail of the segment that
/// was open at the time. Strict [`scan_log`] reports a CRC-bad frame as
/// corruption; this variant treats it ARIES-style as the end of **that
/// segment's** replay: every frame before it is replayed, the garbage
/// tail is skipped, and the scan continues with the next segment. (The
/// writer seals a torn segment and rotates on reopen, so valid entries
/// can legitimately live in segments *after* the torn one.) Callbacks'
/// own errors still abort the scan.
pub fn scan_log_tolerant<F>(
    dfs: &Dfs,
    prefix: &str,
    start_segment: u32,
    start_offset: u64,
    mut f: F,
) -> Result<u64>
where
    F: FnMut(LogPtr, LogEntry) -> Result<()>,
{
    let mut segments: Vec<u32> = dfs
        .list(&format!("{prefix}/segment-"))
        .into_iter()
        .filter_map(|n| parse_segment_name(prefix, &n))
        .filter(|s| *s >= start_segment)
        .collect();
    segments.sort_unstable();
    let mut count = 0u64;
    for seg in segments {
        let offset = if seg == start_segment {
            start_offset
        } else {
            0
        };
        let mut scanner = SegmentScanner::open(dfs, prefix, seg, offset)?;
        loop {
            match scanner.next_entry() {
                Ok(Some((ptr, entry))) => {
                    f(ptr, entry)?;
                    count += 1;
                }
                Ok(None) => break,
                // Torn tail: everything before it replayed; move on.
                Err(e) if e.is_corruption() => break,
                Err(e) => return Err(e),
            }
        }
    }
    Ok(count)
}

/// Length of the valid frame prefix of a segment: the byte offset just
/// past the last frame that is complete, CRC-clean and decodable. The
/// writer uses this on reopen to detect a torn tail left by a crash.
pub fn valid_prefix_len(dfs: &Dfs, name: &str) -> Result<u64> {
    let mut reader = dfs.open_reader(name)?;
    let mut valid_end = 0u64;
    loop {
        let remaining = reader.remaining();
        if remaining < FRAME_HEADER_LEN as u64 {
            break;
        }
        let header = reader.read_exact(FRAME_HEADER_LEN as u64)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
        if remaining < FRAME_HEADER_LEN as u64 + len {
            break;
        }
        let payload = reader.read_exact(len)?;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if crc32fast_hash(&payload) != crc || LogEntry::decode(payload).is_err() {
            break;
        }
        valid_end += FRAME_HEADER_LEN as u64 + len;
    }
    Ok(valid_end)
}

/// Scan one whole segment, invoking `f` per entry (parallel full-table
/// scans fan out with one call per segment, §3.6.4).
pub fn scan_segment<F>(dfs: &Dfs, prefix: &str, segment: u32, mut f: F) -> Result<u64>
where
    F: FnMut(LogPtr, LogEntry) -> Result<()>,
{
    let mut scanner = SegmentScanner::open(dfs, prefix, segment, 0)?;
    let mut count = 0u64;
    while let Some((ptr, entry)) = scanner.next_entry()? {
        f(ptr, entry)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{LogConfig, LogWriter};
    use crate::LogEntryKind;
    use logbase_common::{Record, Timestamp};
    use logbase_dfs::DfsConfig;

    fn put_kind(key: &str, ts: u64) -> LogEntryKind {
        LogEntryKind::Write {
            txn_id: 0,
            tablet: 0,
            record: Record::put(key.as_bytes().to_vec(), 0, Timestamp(ts), vec![7u8; 32]),
        }
    }

    fn setup(segment_bytes: u64, n: u64) -> (Dfs, Vec<(logbase_common::Lsn, LogPtr)>) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(
            dfs.clone(),
            LogConfig::new("srv/log").with_segment_bytes(segment_bytes),
        )
        .unwrap();
        let mut pos = Vec::new();
        for i in 0..n {
            pos.push(w.append("t", put_kind(&format!("key-{i:04}"), i)).unwrap());
        }
        (dfs, pos)
    }

    #[test]
    fn point_read_by_pointer() {
        let (dfs, pos) = setup(1 << 20, 10);
        let entry = read_entry(&dfs, "srv/log", pos[7].1).unwrap();
        assert_eq!(entry.lsn, pos[7].0);
        let (rec, _, _) = entry.as_write().unwrap();
        assert_eq!(&rec.meta.key[..], b"key-0007");
    }

    #[test]
    fn point_read_rejects_mismatched_length() {
        let (dfs, pos) = setup(1 << 20, 3);
        let mut bad = pos[1].1;
        bad.len += 8; // covers part of the next frame
        assert!(read_entry(&dfs, "srv/log", bad).is_err());
    }

    #[test]
    fn scan_visits_all_entries_across_segments() {
        let (dfs, pos) = setup(128, 50); // many small segments
        let mut seen = Vec::new();
        let n = scan_log(&dfs, "srv/log", 0, 0, |ptr, e| {
            seen.push((ptr, e.lsn));
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 50);
        assert_eq!(seen.len(), 50);
        for (i, (ptr, lsn)) in seen.iter().enumerate() {
            assert_eq!(*lsn, pos[i].0);
            assert_eq!(*ptr, pos[i].1);
        }
    }

    #[test]
    fn scan_from_midpoint() {
        let (dfs, pos) = setup(1 << 20, 20);
        let start = pos[12].1;
        let mut lsns = Vec::new();
        scan_log(&dfs, "srv/log", start.segment, start.offset, |_, e| {
            lsns.push(e.lsn.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(lsns, (13..=20).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_ends_scan_cleanly() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(dfs.clone(), LogConfig::new("srv/log")).unwrap();
        w.append("t", put_kind("a", 1)).unwrap();
        let (_, p2) = w.append("t", put_kind("b", 2)).unwrap();
        // Simulate a torn write: append a frame header that promises more
        // bytes than the segment holds.
        let fake_len: u32 = 1000;
        let mut torn = fake_len.to_le_bytes().to_vec();
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(b"partial");
        dfs.append(&segment_name("srv/log", 0), &torn).unwrap();

        let mut lsns = Vec::new();
        scan_log(&dfs, "srv/log", 0, 0, |_, e| {
            lsns.push(e.lsn.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(lsns, vec![1, 2]);
        // The intact entries still point-read fine.
        assert!(read_entry(&dfs, "srv/log", p2).is_ok());
    }

    #[test]
    fn corrupted_interior_frame_is_an_error() {
        let dfs = Dfs::new(DfsConfig::in_memory(1, 1));
        dfs.create("raw/segment-000000").unwrap();
        // Hand-craft a frame with a wrong CRC.
        let mut buf = bytes::BytesMut::new();
        logbase_common::codec::encode_frame(&mut buf, b"not a log entry");
        let mut bytes = buf.to_vec();
        bytes[4] ^= 0xff; // corrupt stored CRC
        dfs.append("raw/segment-000000", &bytes).unwrap();
        let err = scan_log(&dfs, "raw", 0, 0, |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, Error::ChecksumMismatch { .. }));
    }

    #[test]
    fn tolerant_scan_skips_torn_segment_tail_but_replays_later_segments() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(
            dfs.clone(),
            LogConfig::new("srv/log").with_segment_bytes(1 << 20),
        )
        .unwrap();
        w.append("t", put_kind("a", 1)).unwrap();
        // Complete frame, valid CRC, but garbage payload — the shape a
        // torn multi-frame batch write leaves behind.
        let mut buf = bytes::BytesMut::new();
        logbase_common::codec::encode_frame(&mut buf, b"not a log entry");
        dfs.append(&segment_name("srv/log", 0), &buf).unwrap();
        // Reopen-style rotation: the torn segment is sealed, writing
        // continues in a fresh one.
        w.rotate().unwrap();
        w.append("t", put_kind("b", 2)).unwrap();

        // Strict scan fails on the garbage frame...
        assert!(scan_log(&dfs, "srv/log", 0, 0, |_, _| Ok(())).is_err());
        // ...the tolerant scan replays everything around it.
        let mut lsns = Vec::new();
        let n = scan_log_tolerant(&dfs, "srv/log", 0, 0, |_, e| {
            lsns.push(e.lsn.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(lsns, vec![1, 2]);
    }

    #[test]
    fn valid_prefix_len_stops_at_first_bad_frame() {
        let (dfs, pos) = setup(1 << 20, 3);
        let name = segment_name("srv/log", 0);
        let clean = dfs.len(&name).unwrap();
        assert_eq!(valid_prefix_len(&dfs, &name).unwrap(), clean);
        // A half-written frame extends the file but not the valid prefix.
        dfs.append(&name, &[99u8, 0, 0, 0, 1, 2]).unwrap();
        assert_eq!(valid_prefix_len(&dfs, &name).unwrap(), clean);
        assert!(dfs.len(&name).unwrap() > clean);
        let _ = pos;
    }

    #[test]
    fn scan_single_segment() {
        let (dfs, _) = setup(1 << 20, 8);
        let n = scan_segment(&dfs, "srv/log", 0, |_, _| Ok(())).unwrap();
        assert_eq!(n, 8);
    }

    #[test]
    fn scan_empty_log_prefix() {
        let dfs = Dfs::new(DfsConfig::in_memory(1, 1));
        let n = scan_log(&dfs, "nothing/here", 0, 0, |_, _| Ok(())).unwrap();
        assert_eq!(n, 0);
    }
}
