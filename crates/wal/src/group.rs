//! Cross-thread group commit.
//!
//! §3.7.2: "LogBase further embeds an optimization technique that
//! processes commit and log records in batches, instead of individual log
//! writes, in order to reduce the log persistence cost and therefore
//! improve write throughput."
//!
//! [`GroupCommitLog`] runs a committer thread that drains a channel of
//! pending appends and persists them with one [`LogWriter::append_batch`]
//! call per drain. Callers block until their entry is durable and get its
//! `(Lsn, LogPtr)` back.
//!
//! The batch window is adaptive rather than count-only: a batch closes
//! when it reaches [`GroupCommitConfig::max_batch`] entries, when its
//! encoded size reaches [`GroupCommitConfig::max_batch_bytes`], when the
//! linger deadline [`GroupCommitConfig::max_batch_window`] expires, or —
//! the common case under light load — as soon as no producer is in
//! flight, so a lone writer never pays the window as latency. While the
//! log is idle the committer blocks on its channel and performs no work
//! at all (no polling wakeups, no DFS traffic).

use crate::entry;
use crate::writer::LogWriter;
use crate::LogEntryKind;
use crossbeam::channel::{bounded, Receiver, Sender};
use logbase_common::codec::FRAME_HEADER_LEN;
use logbase_common::metrics::Metrics;
use logbase_common::{Error, LogPtr, Lsn, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Group-commit tuning knobs.
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Maximum entries folded into one log write.
    pub max_batch: usize,
    /// Encoded-bytes budget for one batch: the window closes as soon as
    /// the pending frames would exceed this, keeping a batch at roughly
    /// one DFS block write regardless of entry size.
    pub max_batch_bytes: usize,
    /// Upper bound on how long a batch lingers open waiting for more
    /// entries once it has its first. `Duration::ZERO` disables the
    /// linger entirely, reducing the policy to the count-only drain
    /// (the ablation baseline in `bench_write`).
    pub max_batch_window: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 128,
            max_batch_bytes: 256 * 1024,
            max_batch_window: Duration::from_micros(200),
        }
    }
}

struct Pending {
    table: String,
    kind: LogEntryKind,
    /// Framed encoded size, computed by the producer so the committer can
    /// close the batch on a byte budget without encoding anything.
    size_hint: usize,
    done: Sender<Result<(Lsn, LogPtr)>>,
}

impl Pending {
    fn new(table: String, kind: LogEntryKind, done: Sender<Result<(Lsn, LogPtr)>>) -> Self {
        let size_hint = FRAME_HEADER_LEN + entry::encoded_len(&table, &kind);
        Pending {
            table,
            kind,
            size_hint,
            done,
        }
    }
}

/// Batching front end over a [`LogWriter`].
pub struct GroupCommitLog {
    writer: Arc<LogWriter>,
    tx: Sender<Pending>,
    /// Producers that have claimed a slot (incremented *before* the
    /// channel send) but whose entry the committer has not yet drained.
    /// The committer commits immediately when this hits zero: nobody is
    /// racing toward the channel, so lingering would be pure latency.
    inflight: Arc<AtomicUsize>,
    committer: Option<JoinHandle<()>>,
}

impl GroupCommitLog {
    /// Wrap `writer` with a committer thread.
    pub fn new(writer: Arc<LogWriter>, config: GroupCommitConfig) -> Self {
        let (tx, rx) = bounded::<Pending>(config.max_batch.max(1) * 4);
        let inflight = Arc::new(AtomicUsize::new(0));
        let committer_writer = Arc::clone(&writer);
        let committer_inflight = Arc::clone(&inflight);
        let committer = std::thread::Builder::new()
            .name("logbase-group-commit".to_string())
            .spawn(move || committer_loop(&committer_writer, &rx, &committer_inflight, &config))
            .expect("spawn group-commit thread");
        GroupCommitLog {
            writer,
            tx,
            inflight,
            committer: Some(committer),
        }
    }

    /// The wrapped writer (for direct, non-batched appends such as
    /// checkpoint markers).
    pub fn writer(&self) -> &Arc<LogWriter> {
        &self.writer
    }

    /// Submit one entry and block until it is durable.
    pub fn append(&self, table: &str, kind: LogEntryKind) -> Result<(Lsn, LogPtr)> {
        let (done_tx, done_rx) = bounded(1);
        self.inflight.fetch_add(1, Ordering::SeqCst);
        let sent = self.tx.send(Pending::new(table.to_string(), kind, done_tx));
        if sent.is_err() {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(Error::Unavailable("group commit thread stopped".into()));
        }
        done_rx
            .recv()
            .map_err(|_| Error::Unavailable("group commit thread dropped request".into()))?
    }

    /// Submit several entries as one unit and block until all are durable.
    /// Used by the transaction manager to persist a transaction's writes
    /// plus its commit record together.
    pub fn append_all(&self, entries: Vec<(String, LogEntryKind)>) -> Result<Vec<(Lsn, LogPtr)>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let n = entries.len();
        let (done_tx, done_rx) = bounded(n);
        // Claim all n slots up front so the committer keeps its batch
        // open until the whole unit is in the channel.
        self.inflight.fetch_add(n, Ordering::SeqCst);
        for (sent, (table, kind)) in entries.into_iter().enumerate() {
            if self
                .tx
                .send(Pending::new(table, kind, done_tx.clone()))
                .is_err()
            {
                self.inflight.fetch_sub(n - sent, Ordering::SeqCst);
                return Err(Error::Unavailable("group commit thread stopped".into()));
            }
        }
        drop(done_tx);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(
                done_rx.recv().map_err(|_| {
                    Error::Unavailable("group commit thread dropped request".into())
                })??,
            );
        }
        Ok(out)
    }
}

impl Drop for GroupCommitLog {
    fn drop(&mut self) {
        // Closing the channel stops the committer after it drains.
        let (tx, _) = bounded(0);
        let old_tx = std::mem::replace(&mut self.tx, tx);
        drop(old_tx);
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

/// Drain one adaptive batch from `rx`, starting with `first`.
///
/// The batch closes on whichever bound trips first: entry count, byte
/// budget, or linger deadline — or early, once the channel is empty, no
/// producer is in flight, *and* the batch has reached `expect` entries.
///
/// `expect` is the size of the previous batch: the committer's estimate
/// of how many producers are cycling against the log (each blocks on
/// its `done` channel, so the cohort that just committed re-arrives
/// almost together). Lingering until the cohort is back is what fills
/// batches; a lone writer has `expect == 1` and never lingers at all.
fn drain_batch(
    first: Pending,
    rx: &Receiver<Pending>,
    inflight: &AtomicUsize,
    config: &GroupCommitConfig,
    expect: usize,
) -> Vec<Pending> {
    inflight.fetch_sub(1, Ordering::SeqCst);
    let mut bytes = first.size_hint;
    let mut batch = vec![first];
    let deadline = Instant::now() + config.max_batch_window;
    loop {
        if batch.len() >= config.max_batch || bytes >= config.max_batch_bytes {
            break;
        }
        match rx.try_recv() {
            Ok(p) => {
                inflight.fetch_sub(1, Ordering::SeqCst);
                bytes += p.size_hint;
                batch.push(p);
                continue;
            }
            Err(crossbeam::channel::TryRecvError::Empty) => {}
            Err(crossbeam::channel::TryRecvError::Disconnected) => break,
        }
        if config.max_batch_window.is_zero() {
            break;
        }
        // Channel empty. Commit now unless there is a concrete reason to
        // expect more arrivals before the deadline: a producer that has
        // claimed a slot and is racing toward the channel, or members of
        // the previous cohort that have not re-arrived yet.
        if inflight.load(Ordering::SeqCst) == 0 && batch.len() >= expect {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(p) => {
                inflight.fetch_sub(1, Ordering::SeqCst);
                bytes += p.size_hint;
                batch.push(p);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }
    batch
}

fn committer_loop(
    writer: &LogWriter,
    rx: &Receiver<Pending>,
    inflight: &AtomicUsize,
    config: &GroupCommitConfig,
) {
    // Self-clocking cohort estimate: how many producers the previous
    // batch served (they all re-arrive together, being blocked on their
    // `done` channels until the commit).
    let mut expect = 1usize;
    loop {
        // Block for the first entry of the batch: an idle log costs no
        // wakeups and no DFS traffic.
        let first = match rx.recv() {
            Ok(p) => p,
            Err(_) => return,
        };
        Metrics::incr(&writer.metrics().wal_committer_wakeups);
        let batch = drain_batch(first, rx, inflight, config, expect);
        expect = batch.len();

        // Hand the entries to the writer by value — the committer clones
        // nothing; `Pending` carries ownership end-to-end.
        let mut entries = Vec::with_capacity(batch.len());
        let mut dones = Vec::with_capacity(batch.len());
        for p in batch {
            entries.push((p.table, p.kind));
            dones.push(p.done);
        }
        // A panic inside the append must not take the committer down with
        // waiters still blocked on their `done` channels — convert it into
        // an error for every member of the batch and keep serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            writer.append_batch(&entries)
        }));
        match outcome {
            Ok(Ok(positions)) => {
                for (done, pos) in dones.into_iter().zip(positions) {
                    let _ = done.send(Ok(pos));
                }
            }
            // A fenced batch must stay `Fenced` for every waiter: folding
            // it into the retriable `Unavailable` would send zombie
            // clients into a retry loop that can never succeed.
            Ok(Err(Error::Fenced {
                server,
                held,
                current,
            })) => {
                for done in dones {
                    let _ = done.send(Err(Error::Fenced {
                        server: server.clone(),
                        held,
                        current,
                    }));
                }
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                for done in dones {
                    let _ = done.send(Err(Error::Unavailable(format!(
                        "group commit failed: {msg}"
                    ))));
                }
            }
            Err(_) => {
                for done in dones {
                    let _ = done.send(Err(Error::Unavailable(
                        "group commit committer panicked".into(),
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::LogConfig;
    use logbase_common::{Record, Timestamp};
    use logbase_dfs::{Dfs, DfsConfig};

    fn put_kind(key: &str, ts: u64) -> LogEntryKind {
        LogEntryKind::Write {
            txn_id: 0,
            tablet: 0,
            record: Record::put(key.as_bytes().to_vec(), 0, Timestamp(ts), vec![1u8; 8]),
        }
    }

    fn group_log() -> (Dfs, GroupCommitLog) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = Arc::new(LogWriter::create(dfs.clone(), LogConfig::new("srv/log")).unwrap());
        (dfs, GroupCommitLog::new(w, GroupCommitConfig::default()))
    }

    #[test]
    fn single_append_round_trips() {
        let (dfs, log) = group_log();
        let (lsn, ptr) = log.append("t", put_kind("a", 1)).unwrap();
        assert_eq!(lsn, Lsn(1));
        let entry = crate::read_entry(&dfs, "srv/log", ptr).unwrap();
        assert_eq!(entry.lsn, lsn);
    }

    #[test]
    fn concurrent_appends_all_get_unique_lsns() {
        let (_dfs, log) = group_log();
        let log = Arc::new(log);
        let mut lsns = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let log = Arc::clone(&log);
                    s.spawn(move || {
                        (0..25)
                            .map(|i| log.append("t", put_kind(&format!("{t}-{i}"), i)).unwrap().0)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                lsns.extend(h.join().unwrap());
            }
        });
        lsns.sort_unstable();
        lsns.dedup();
        assert_eq!(lsns.len(), 200);
    }

    #[test]
    fn batching_reduces_dfs_appends() {
        let (dfs, log) = group_log();
        let log = Arc::new(log);
        let before = dfs.metrics().snapshot().dfs_appends;
        std::thread::scope(|s| {
            for t in 0..8 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..25 {
                        log.append("t", put_kind(&format!("{t}-{i}"), i)).unwrap();
                    }
                });
            }
        });
        let appends = dfs.metrics().snapshot().dfs_appends - before;
        // 200 entries must take far fewer than 200 log writes.
        assert!(
            appends < 200,
            "group commit did not batch: {appends} appends for 200 entries"
        );
    }

    /// Regression (ISSUE 9): the committer used to wake every
    /// `poll_interval` (1 ms) even with nothing to commit. An idle log
    /// must cost nothing: no committer wakeups, no DFS operations.
    #[test]
    fn idle_log_performs_no_dfs_operations_and_no_wakeups() {
        let (dfs, log) = group_log();
        log.append("t", put_kind("warm", 1)).unwrap();
        // Give the committer time to finish the warm-up batch and park.
        std::thread::sleep(Duration::from_millis(20));
        let before = dfs.metrics().snapshot();
        std::thread::sleep(Duration::from_millis(120));
        let after = dfs.metrics().snapshot();
        assert_eq!(
            after.wal_committer_wakeups, before.wal_committer_wakeups,
            "idle committer woke up"
        );
        assert_eq!(after.dfs_appends, before.dfs_appends);
        assert_eq!(after.dfs_reads, before.dfs_reads);
        drop(log);
    }

    /// The byte budget closes a batch even when the entry count is far
    /// below `max_batch`.
    #[test]
    fn byte_budget_closes_batches_early() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = Arc::new(LogWriter::create(dfs.clone(), LogConfig::new("srv/log")).unwrap());
        let log = Arc::new(GroupCommitLog::new(
            w,
            GroupCommitConfig {
                max_batch: 1024,
                max_batch_bytes: 4 * 1024,
                max_batch_window: Duration::from_millis(50),
            },
        ));
        // 64 entries of ~1 KiB from 8 threads: the byte budget (4 KiB)
        // forces multiple batches despite the generous count and window.
        let before = dfs.metrics().snapshot();
        std::thread::scope(|s| {
            for t in 0..8 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..8 {
                        let kind = LogEntryKind::Write {
                            txn_id: 0,
                            tablet: 0,
                            record: Record::put(
                                format!("{t}-{i}").into_bytes(),
                                0,
                                Timestamp(i),
                                vec![0u8; 1024],
                            ),
                        };
                        log.append("t", kind).unwrap();
                    }
                });
            }
        });
        let d = dfs.metrics().snapshot().delta_since(&before);
        assert_eq!(d.wal_batched_entries, 64);
        assert!(
            d.wal_batches_committed >= 8,
            "byte budget ignored: {} batches for 64 KiB of entries",
            d.wal_batches_committed
        );
    }

    #[test]
    fn append_all_returns_positions_in_order_of_durability() {
        let (dfs, log) = group_log();
        let entries: Vec<_> = (0..5)
            .map(|i| ("t".to_string(), put_kind(&format!("k{i}"), i)))
            .collect();
        let pos = log.append_all(entries).unwrap();
        assert_eq!(pos.len(), 5);
        // All durable: each pointer resolves.
        for (_, ptr) in &pos {
            assert!(crate::read_entry(&dfs, "srv/log", *ptr).is_ok());
        }
    }

    #[test]
    fn dead_dfs_fails_every_waiter_without_hanging() {
        use logbase_common::retry::RetryPolicy;
        // Disk-backed nodes so blocks survive the full-cluster restart.
        let dir = tempfile::tempdir().unwrap();
        let dfs =
            Dfs::new(DfsConfig::on_disk(dir.path(), 3, 2).with_retry(RetryPolicy::no_delay(2)));
        let w = Arc::new(LogWriter::create(dfs.clone(), LogConfig::new("srv/log")).unwrap());
        let log = Arc::new(GroupCommitLog::new(w, GroupCommitConfig::default()));
        log.append("t", put_kind("a", 1)).unwrap();
        for id in 0..3 {
            dfs.kill_node(id);
        }
        // Every waiter must get an Err back — none may block forever on a
        // batch the committer can no longer persist.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let log = Arc::clone(&log);
                    s.spawn(move || log.append("t", put_kind(&format!("x{t}"), t)))
                })
                .collect();
            for h in handles {
                assert!(h.join().unwrap().is_err());
            }
        });
        // The committer survived: once the nodes return, appends succeed.
        for id in 0..3 {
            dfs.restart_node(id);
        }
        log.append("t", put_kind("back", 9)).unwrap();
    }

    #[test]
    fn fenced_batches_surface_fenced_not_unavailable() {
        let (_dfs, log) = group_log();
        log.append("t", put_kind("a", 1)).unwrap();
        log.writer().set_gate(Arc::new(|| {
            Err(Error::Fenced {
                server: "srv".into(),
                held: 3,
                current: 5,
            })
        }));
        let err = log.append("t", put_kind("b", 2)).unwrap_err();
        assert!(!err.is_retriable(), "Fenced must never be retried");
        match err {
            Error::Fenced {
                server,
                held,
                current,
            } => {
                assert_eq!(server, "srv");
                assert_eq!((held, current), (3, 5));
            }
            other => panic!("expected Fenced, got {other}"),
        }
    }

    #[test]
    fn drop_stops_committer_thread() {
        let (_dfs, log) = group_log();
        log.append("t", put_kind("a", 1)).unwrap();
        drop(log); // must not hang
    }
}
