//! Cross-thread group commit.
//!
//! §3.7.2: "LogBase further embeds an optimization technique that
//! processes commit and log records in batches, instead of individual log
//! writes, in order to reduce the log persistence cost and therefore
//! improve write throughput."
//!
//! [`GroupCommitLog`] runs a committer thread that drains a channel of
//! pending appends and persists them with one [`LogWriter::append_batch`]
//! call per drain. Callers block until their entry is durable and get its
//! `(Lsn, LogPtr)` back.

use crate::writer::LogWriter;
use crate::LogEntryKind;
use crossbeam::channel::{bounded, Receiver, Sender};
use logbase_common::{Error, LogPtr, Lsn, Result};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Group-commit tuning knobs.
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Maximum entries folded into one log write.
    pub max_batch: usize,
    /// How long the committer waits for the first entry of a batch.
    pub poll_interval: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 128,
            poll_interval: Duration::from_millis(1),
        }
    }
}

struct Pending {
    table: String,
    kind: LogEntryKind,
    done: Sender<Result<(Lsn, LogPtr)>>,
}

/// Batching front end over a [`LogWriter`].
pub struct GroupCommitLog {
    writer: Arc<LogWriter>,
    tx: Sender<Pending>,
    committer: Option<JoinHandle<()>>,
}

impl GroupCommitLog {
    /// Wrap `writer` with a committer thread.
    pub fn new(writer: Arc<LogWriter>, config: GroupCommitConfig) -> Self {
        let (tx, rx) = bounded::<Pending>(config.max_batch * 4);
        let committer_writer = Arc::clone(&writer);
        let committer = std::thread::Builder::new()
            .name("logbase-group-commit".to_string())
            .spawn(move || committer_loop(&committer_writer, &rx, &config))
            .expect("spawn group-commit thread");
        GroupCommitLog {
            writer,
            tx,
            committer: Some(committer),
        }
    }

    /// The wrapped writer (for direct, non-batched appends such as
    /// checkpoint markers).
    pub fn writer(&self) -> &Arc<LogWriter> {
        &self.writer
    }

    /// Submit one entry and block until it is durable.
    pub fn append(&self, table: &str, kind: LogEntryKind) -> Result<(Lsn, LogPtr)> {
        let (done_tx, done_rx) = bounded(1);
        self.tx
            .send(Pending {
                table: table.to_string(),
                kind,
                done: done_tx,
            })
            .map_err(|_| Error::Unavailable("group commit thread stopped".into()))?;
        done_rx
            .recv()
            .map_err(|_| Error::Unavailable("group commit thread dropped request".into()))?
    }

    /// Submit several entries as one unit and block until all are durable.
    /// Used by the transaction manager to persist a transaction's writes
    /// plus its commit record together.
    pub fn append_all(&self, entries: Vec<(String, LogEntryKind)>) -> Result<Vec<(Lsn, LogPtr)>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let (done_tx, done_rx) = bounded(entries.len());
        let n = entries.len();
        for (table, kind) in entries {
            self.tx
                .send(Pending {
                    table,
                    kind,
                    done: done_tx.clone(),
                })
                .map_err(|_| Error::Unavailable("group commit thread stopped".into()))?;
        }
        drop(done_tx);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(
                done_rx.recv().map_err(|_| {
                    Error::Unavailable("group commit thread dropped request".into())
                })??,
            );
        }
        Ok(out)
    }
}

impl Drop for GroupCommitLog {
    fn drop(&mut self) {
        // Closing the channel stops the committer after it drains.
        let (tx, _) = bounded(0);
        let old_tx = std::mem::replace(&mut self.tx, tx);
        drop(old_tx);
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

fn committer_loop(writer: &LogWriter, rx: &Receiver<Pending>, config: &GroupCommitConfig) {
    loop {
        // Block for the first entry of the batch.
        let first = match rx.recv_timeout(config.poll_interval) {
            Ok(p) => p,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        while batch.len() < config.max_batch {
            match rx.try_recv() {
                Ok(p) => batch.push(p),
                Err(_) => break,
            }
        }
        let entries: Vec<(String, LogEntryKind)> = batch
            .iter()
            .map(|p| (p.table.clone(), p.kind.clone()))
            .collect();
        // A panic inside the append must not take the committer down with
        // waiters still blocked on their `done` channels — convert it into
        // an error for every member of the batch and keep serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            writer.append_batch(&entries)
        }));
        match outcome {
            Ok(Ok(positions)) => {
                for (p, pos) in batch.into_iter().zip(positions) {
                    let _ = p.done.send(Ok(pos));
                }
            }
            // A fenced batch must stay `Fenced` for every waiter: folding
            // it into the retriable `Unavailable` would send zombie
            // clients into a retry loop that can never succeed.
            Ok(Err(Error::Fenced {
                server,
                held,
                current,
            })) => {
                for p in batch {
                    let _ = p.done.send(Err(Error::Fenced {
                        server: server.clone(),
                        held,
                        current,
                    }));
                }
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                for p in batch {
                    let _ = p.done.send(Err(Error::Unavailable(format!(
                        "group commit failed: {msg}"
                    ))));
                }
            }
            Err(_) => {
                for p in batch {
                    let _ = p.done.send(Err(Error::Unavailable(
                        "group commit committer panicked".into(),
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::LogConfig;
    use logbase_common::{Record, Timestamp};
    use logbase_dfs::{Dfs, DfsConfig};

    fn put_kind(key: &str, ts: u64) -> LogEntryKind {
        LogEntryKind::Write {
            txn_id: 0,
            tablet: 0,
            record: Record::put(key.as_bytes().to_vec(), 0, Timestamp(ts), vec![1u8; 8]),
        }
    }

    fn group_log() -> (Dfs, GroupCommitLog) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = Arc::new(LogWriter::create(dfs.clone(), LogConfig::new("srv/log")).unwrap());
        (dfs, GroupCommitLog::new(w, GroupCommitConfig::default()))
    }

    #[test]
    fn single_append_round_trips() {
        let (dfs, log) = group_log();
        let (lsn, ptr) = log.append("t", put_kind("a", 1)).unwrap();
        assert_eq!(lsn, Lsn(1));
        let entry = crate::read_entry(&dfs, "srv/log", ptr).unwrap();
        assert_eq!(entry.lsn, lsn);
    }

    #[test]
    fn concurrent_appends_all_get_unique_lsns() {
        let (_dfs, log) = group_log();
        let log = Arc::new(log);
        let mut lsns = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let log = Arc::clone(&log);
                    s.spawn(move || {
                        (0..25)
                            .map(|i| log.append("t", put_kind(&format!("{t}-{i}"), i)).unwrap().0)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                lsns.extend(h.join().unwrap());
            }
        });
        lsns.sort_unstable();
        lsns.dedup();
        assert_eq!(lsns.len(), 200);
    }

    #[test]
    fn batching_reduces_dfs_appends() {
        let (dfs, log) = group_log();
        let log = Arc::new(log);
        let before = dfs.metrics().snapshot().dfs_appends;
        std::thread::scope(|s| {
            for t in 0..8 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..25 {
                        log.append("t", put_kind(&format!("{t}-{i}"), i)).unwrap();
                    }
                });
            }
        });
        let appends = dfs.metrics().snapshot().dfs_appends - before;
        // 200 entries must take far fewer than 200 log writes.
        assert!(
            appends < 200,
            "group commit did not batch: {appends} appends for 200 entries"
        );
    }

    #[test]
    fn append_all_returns_positions_in_order_of_durability() {
        let (dfs, log) = group_log();
        let entries: Vec<_> = (0..5)
            .map(|i| ("t".to_string(), put_kind(&format!("k{i}"), i)))
            .collect();
        let pos = log.append_all(entries).unwrap();
        assert_eq!(pos.len(), 5);
        // All durable: each pointer resolves.
        for (_, ptr) in &pos {
            assert!(crate::read_entry(&dfs, "srv/log", *ptr).is_ok());
        }
    }

    #[test]
    fn dead_dfs_fails_every_waiter_without_hanging() {
        use logbase_common::retry::RetryPolicy;
        // Disk-backed nodes so blocks survive the full-cluster restart.
        let dir = tempfile::tempdir().unwrap();
        let dfs =
            Dfs::new(DfsConfig::on_disk(dir.path(), 3, 2).with_retry(RetryPolicy::no_delay(2)));
        let w = Arc::new(LogWriter::create(dfs.clone(), LogConfig::new("srv/log")).unwrap());
        let log = Arc::new(GroupCommitLog::new(w, GroupCommitConfig::default()));
        log.append("t", put_kind("a", 1)).unwrap();
        for id in 0..3 {
            dfs.kill_node(id);
        }
        // Every waiter must get an Err back — none may block forever on a
        // batch the committer can no longer persist.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let log = Arc::clone(&log);
                    s.spawn(move || log.append("t", put_kind(&format!("x{t}"), t)))
                })
                .collect();
            for h in handles {
                assert!(h.join().unwrap().is_err());
            }
        });
        // The committer survived: once the nodes return, appends succeed.
        for id in 0..3 {
            dfs.restart_node(id);
        }
        log.append("t", put_kind("back", 9)).unwrap();
    }

    #[test]
    fn fenced_batches_surface_fenced_not_unavailable() {
        let (_dfs, log) = group_log();
        log.append("t", put_kind("a", 1)).unwrap();
        log.writer().set_gate(Arc::new(|| {
            Err(Error::Fenced {
                server: "srv".into(),
                held: 3,
                current: 5,
            })
        }));
        let err = log.append("t", put_kind("b", 2)).unwrap_err();
        assert!(!err.is_retriable(), "Fenced must never be retried");
        match err {
            Error::Fenced {
                server,
                held,
                current,
            } => {
                assert_eq!(server, "srv");
                assert_eq!((held, current), (3, 5));
            }
            other => panic!("expected Fenced, got {other}"),
        }
    }

    #[test]
    fn drop_stops_committer_thread() {
        let (_dfs, log) = group_log();
        log.append("t", put_kind("a", 1)).unwrap();
        drop(log); // must not hang
    }
}
