//! The log repository (paper §3.4): LogBase's *only* data store.
//!
//! Each tablet server owns **one log instance** — "an infinite sequential
//! repository which contains contiguous segments", each segment a
//! sequential DFS file (64 MB default). A log record is
//! `<LogKey, Data>`:
//!
//! - `LogKey` — log sequence number (LSN), table name, tablet info;
//! - `Data` — `<RowKey, Value>` where `RowKey` concatenates the record's
//!   primary key, the updated column group and the write timestamp, and
//!   `Value` is the payload (`null` for the *invalidated log entries*
//!   written by deletes, §3.6.3).
//!
//! Entries are CRC-framed; [`LogWriter::append_batch`] persists a batch
//! in a single replicated DFS append (the paper's group-commit
//! optimization, §3.7.2), returning the `(Lsn, LogPtr)` of every entry so
//! the caller can update its in-memory indexes. [`GroupCommitLog`] adds a
//! cross-thread batching front end. [`scan_log`] replays segments for
//! recovery and compaction.

mod entry;
mod group;
mod reader;
mod writer;

pub use entry::{encode_parts_into, encoded_len, LogEntry, LogEntryKind};
pub use group::{GroupCommitConfig, GroupCommitLog};
pub use logbase_common::compress::Compression;
pub use reader::{
    decode_entry_in_window, read_entry, read_entry_in, scan_log, scan_log_tolerant, scan_segment,
    valid_prefix_len, LogCursor, SegmentScanner,
};
pub use writer::{LogConfig, LogWriter, WriteGate, MIN_COMPRESS_BYTES};

/// Name of the `i`-th log segment under `prefix`.
pub fn segment_name(prefix: &str, seq: u32) -> String {
    format!("{prefix}/segment-{seq:06}")
}

/// Parse a segment sequence number out of a name produced by
/// [`segment_name`]. Returns `None` for foreign files.
pub fn parse_segment_name(prefix: &str, name: &str) -> Option<u32> {
    let rest = name.strip_prefix(prefix)?.strip_prefix("/segment-")?;
    rest.parse().ok()
}

/// Enumerate the log segments under `prefix` as `(seq, name, bytes)`,
/// ordered by sequence number. Foreign files under the prefix are
/// skipped. The compaction scheduler uses this to size its candidate
/// stack without opening any segment.
pub fn list_segments(dfs: &logbase_dfs::Dfs, prefix: &str) -> Vec<(u32, String, u64)> {
    let mut out: Vec<(u32, String, u64)> = dfs
        .list(&format!("{prefix}/segment-"))
        .into_iter()
        .filter_map(|name| {
            let seq = parse_segment_name(prefix, &name)?;
            let bytes = dfs.len(&name).ok()?;
            Some((seq, name, bytes))
        })
        .collect();
    out.sort_unstable_by_key(|(seq, _, _)| *seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_name_round_trip() {
        let n = segment_name("srv-0/log", 42);
        assert_eq!(n, "srv-0/log/segment-000042");
        assert_eq!(parse_segment_name("srv-0/log", &n), Some(42));
        assert_eq!(parse_segment_name("srv-1/log", &n), None);
        assert_eq!(
            parse_segment_name("srv-0/log", "srv-0/log/index-000001"),
            None
        );
    }

    #[test]
    fn list_segments_orders_and_sizes() {
        let dfs = logbase_dfs::Dfs::new(logbase_dfs::DfsConfig::in_memory(3, 2));
        for (seq, bytes) in [(2u32, 10usize), (0, 4), (1, 7)] {
            let name = segment_name("srv/log", seq);
            dfs.create(&name).unwrap();
            dfs.append(&name, &vec![0u8; bytes]).unwrap();
        }
        dfs.create("srv/log/other").unwrap();
        let got = list_segments(&dfs, "srv/log");
        assert_eq!(
            got,
            vec![
                (0, segment_name("srv/log", 0), 4),
                (1, segment_name("srv/log", 1), 7),
                (2, segment_name("srv/log", 2), 10),
            ]
        );
    }
}
