//! Log writer: framed appends with segment rotation.
//!
//! The batch encoder is the hot path of the whole system (the log *is*
//! the database), so it is built around three properties:
//!
//! - **No per-entry allocation.** Entries are encoded straight into a
//!   recycled [`BytesMut`] owned by the writer ([`codec::encode_frame_with`]
//!   backfills each frame header in place), and the compression scratch
//!   buffers are recycled the same way.
//! - **Sealed segments honor `segment_bytes`.** A batch that would
//!   overflow the open segment is split mid-encode: each split chunk is
//!   flushed to its own segment with a rotation in between, so no sealed
//!   segment overshoots the cap by more than a single oversized entry.
//! - **Failed appends burn no LSNs.** `next_lsn` is committed to writer
//!   state only for entries whose bytes actually reached the DFS; a batch
//!   that fails before any chunk lands rolls back completely, keeping the
//!   LSN sequence dense across retries.

use crate::entry::{self, COMPRESSED_MARKER};
use crate::segment_name;
use bytes::BytesMut;
use logbase_common::codec;
use logbase_common::compress::{lz4_compress, Compression};
use logbase_common::config::DEFAULT_SEGMENT_BYTES;
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::{LogPtr, Lsn, Result};
use logbase_dfs::{crash_point, Dfs};
use parking_lot::{Mutex, RwLock};
use std::ops::Range;
use std::sync::Arc;

/// Pre-append admission check. Installed by the owning tablet server to
/// carry its fencing token: a gate that returns `Error::Fenced` stops a
/// zombie's appends before they reach the DFS.
pub type WriteGate = Arc<dyn Fn() -> Result<()> + Send + Sync>;

/// Payloads below this length are framed raw even when compression is
/// on: the marker + raw-length preamble plus codec overhead cannot pay
/// for itself on tiny entries.
pub const MIN_COMPRESS_BYTES: usize = 64;

/// Recycled encode buffers above this capacity are dropped instead of
/// pooled, so one giant batch does not pin its high-water mark forever.
const MAX_POOLED_BUF: usize = 4 * 1024 * 1024;

/// Log writer configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// DFS name prefix for this log instance, e.g. `"srv-3/log"`.
    pub prefix: String,
    /// Segment rotation threshold in bytes (paper default 64 MB).
    pub segment_bytes: u64,
    /// Per-batch entry compression codec ([`Compression::None`] frames
    /// entries raw). Compressed and raw frames coexist in one log, so
    /// the flag can change across reopens without migration.
    pub compression: Compression,
    /// Recycle the writer's encode/compression buffers across batches
    /// (on by default; the off position exists for the buffer-reuse
    /// ablation in `bench_write`).
    pub pool_buffers: bool,
}

impl LogConfig {
    /// Config with the paper's default segment size.
    pub fn new(prefix: impl Into<String>) -> Self {
        LogConfig {
            prefix: prefix.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            compression: Compression::None,
            pool_buffers: true,
        }
    }

    /// Builder-style segment-size override.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Builder-style batch-compression override.
    #[must_use]
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Builder-style buffer-pooling override (ablations only).
    #[must_use]
    pub fn with_buffer_pooling(mut self, pool: bool) -> Self {
        self.pool_buffers = pool;
        self
    }
}

struct WriterState {
    /// Sequence number of the open segment.
    segment: u32,
    /// Bytes already in the open segment.
    segment_len: u64,
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Recycled batch encode buffer (framed bytes headed for the DFS).
    encode_buf: BytesMut,
    /// Recycled raw-payload scratch (compression staging).
    payload_buf: BytesMut,
    /// Recycled compressed-block scratch.
    lz4_buf: Vec<u8>,
}

impl WriterState {
    fn new(segment: u32, segment_len: u64, next_lsn: Lsn) -> Self {
        WriterState {
            segment,
            segment_len,
            next_lsn,
            encode_buf: BytesMut::new(),
            payload_buf: BytesMut::new(),
            lz4_buf: Vec::new(),
        }
    }
}

/// One flush unit of a batch: a contiguous frame range bound for one
/// segment. Batches that fit the open segment have exactly one chunk.
struct Chunk {
    entries: Range<usize>,
    bytes: Range<usize>,
    segment: u32,
    base_offset: u64,
}

/// Appends framed [`LogEntry`](crate::LogEntry)s to the segmented log.
///
/// One writer exists per tablet server (the paper's single-log-instance
/// design choice, §3.4). The writer assigns LSNs, so entries handed to
/// [`LogWriter::append_batch`] carry their final LSN in the result.
pub struct LogWriter {
    dfs: Dfs,
    metrics: MetricsHandle,
    config: LogConfig,
    state: Mutex<WriterState>,
    gate: RwLock<Option<WriteGate>>,
}

impl LogWriter {
    /// Create a fresh log (starts at segment 0, LSN 1).
    pub fn create(dfs: Dfs, config: LogConfig) -> Result<Self> {
        dfs.create(&segment_name(&config.prefix, 0))?;
        let metrics = Arc::clone(dfs.metrics());
        Ok(LogWriter {
            dfs,
            metrics,
            config,
            state: Mutex::new(WriterState::new(0, 0, Lsn(1))),
            gate: RwLock::new(None),
        })
    }

    /// Re-open an existing log after recovery: continue at `next_lsn`
    /// after the last segment found under the prefix.
    ///
    /// If a crash left a torn frame at the tail of the last segment, the
    /// damaged segment is sealed as-is and writing resumes in a fresh
    /// segment — new appends must never land *after* garbage bytes, or
    /// every later scan would stop at the tear and miss them.
    pub fn reopen(dfs: Dfs, config: LogConfig, next_lsn: Lsn) -> Result<Self> {
        let last = dfs
            .list(&format!("{}/segment-", config.prefix))
            .into_iter()
            .filter_map(|n| crate::parse_segment_name(&config.prefix, &n))
            .max();
        let (segment, segment_len) = match last {
            Some(seq) => {
                let name = segment_name(&config.prefix, seq);
                let raw_len = dfs.len(&name)?;
                let valid_len = crate::reader::valid_prefix_len(&dfs, &name)?;
                if valid_len < raw_len {
                    // Torn tail: retire the damaged segment, start clean.
                    let _ = dfs.seal(&name);
                    dfs.create(&segment_name(&config.prefix, seq + 1))?;
                    (seq + 1, 0)
                } else {
                    (seq, raw_len)
                }
            }
            None => {
                dfs.create(&segment_name(&config.prefix, 0))?;
                (0, 0)
            }
        };
        let metrics = Arc::clone(dfs.metrics());
        Ok(LogWriter {
            dfs,
            metrics,
            config,
            state: Mutex::new(WriterState::new(segment, segment_len, next_lsn)),
            gate: RwLock::new(None),
        })
    }

    /// Install (or replace) the pre-append admission gate. The gate runs
    /// under the writer lock at the head of every
    /// [`append_batch`](Self::append_batch), so after a gate starts
    /// failing no further batch enters the log. An append already past
    /// its gate check when the lease expires can still land — that
    /// residual window is closed at the read side: failover rebuilds only
    /// replay entries up to the rebuild's scan point, and clients never
    /// route to the fenced server again.
    pub fn set_gate(&self, gate: WriteGate) {
        *self.gate.write() = Some(gate);
    }

    /// The DFS prefix of this log instance.
    pub fn prefix(&self) -> &str {
        &self.config.prefix
    }

    /// The shared metrics sink of the backing DFS.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Sequence number of the currently open segment.
    pub fn current_segment(&self) -> u32 {
        self.state.lock().segment
    }

    /// The LSN the next appended entry will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.state.lock().next_lsn
    }

    /// Current append position `(segment, offset)` — everything before
    /// it is durable. Checkpoints record this as the redo start.
    pub fn position(&self) -> (u32, u64) {
        let s = self.state.lock();
        (s.segment, s.segment_len)
    }

    /// Set the next LSN (recovery: after redo determines the highest LSN
    /// in the log, the writer resumes after it).
    pub fn set_next_lsn(&self, lsn: Lsn) {
        self.state.lock().next_lsn = lsn;
    }

    /// Seal the open segment and start a new one (compaction snapshots
    /// the sealed prefix of the log this way). Returns the sequence
    /// number of the new open segment.
    pub fn rotate(&self) -> Result<u32> {
        let mut state = self.state.lock();
        self.rotate_locked(&mut state)?;
        Ok(state.segment)
    }

    fn rotate_locked(&self, state: &mut WriterState) -> Result<()> {
        let old = segment_name(&self.config.prefix, state.segment);
        self.dfs.seal(&old)?;
        state.segment += 1;
        state.segment_len = 0;
        self.dfs
            .create(&segment_name(&self.config.prefix, state.segment))?;
        Ok(())
    }

    /// Append one entry; see [`LogWriter::append_batch`].
    pub fn append(&self, table: &str, kind: crate::LogEntryKind) -> Result<(Lsn, LogPtr)> {
        let mut out = self.append_batch(&[(table.to_string(), kind)])?;
        Ok(out.pop().expect("batch of one yields one position"))
    }

    /// Append a batch of entries (group commit). A batch that fits the
    /// open segment is **one replicated DFS write**; a batch that would
    /// overflow it is split across segment rotations so sealed segments
    /// honor `segment_bytes`. Returns the `(Lsn, LogPtr)` assigned to
    /// each entry, in order. The call returns only after the bytes are
    /// replicated, so a returned position implies durability
    /// (Guarantee 1).
    ///
    /// On error, `next_lsn` keeps only the LSNs of entries whose chunk
    /// reached the DFS before the failure (none, in the common
    /// single-chunk case): unacked durable entries keep their LSNs
    /// burned — they are already in the log — while everything else is
    /// rolled back so a retry reuses the sequence densely.
    pub fn append_batch(
        &self,
        entries: &[(String, crate::LogEntryKind)],
    ) -> Result<Vec<(Lsn, LogPtr)>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let mut state = self.state.lock();

        // Admission check under the writer lock, before any state
        // mutation: a fenced writer contributes nothing to the log.
        if let Some(gate) = self.gate.read().clone() {
            gate()?;
        }

        // Take the recycled buffers out of the state (fresh ones when
        // pooling is ablated away); they are returned on every exit path.
        let mut buf = std::mem::take(&mut state.encode_buf);
        let mut payload = std::mem::take(&mut state.payload_buf);
        let mut lz4 = std::mem::take(&mut state.lz4_buf);
        buf.clear();

        let result = self.encode_and_flush(&mut state, entries, &mut buf, &mut payload, &mut lz4);

        if self.config.pool_buffers && buf.capacity() <= MAX_POOLED_BUF {
            state.encode_buf = buf;
        }
        if self.config.pool_buffers && payload.capacity() <= MAX_POOLED_BUF {
            state.payload_buf = payload;
        }
        if self.config.pool_buffers && lz4.capacity() <= MAX_POOLED_BUF {
            state.lz4_buf = lz4;
        }
        result
    }

    /// Encode `entries` into `buf`, split into per-segment chunks, and
    /// flush each chunk with rotations in between. Commits LSN and
    /// segment state exactly as far as the DFS accepted bytes.
    fn encode_and_flush(
        &self,
        state: &mut WriterState,
        entries: &[(String, crate::LogEntryKind)],
        buf: &mut BytesMut,
        payload: &mut BytesMut,
        lz4: &mut Vec<u8>,
    ) -> Result<Vec<(Lsn, LogPtr)>> {
        let lsn0 = state.next_lsn;
        let compress = self.config.compression.is_enabled();
        let mut saved_bytes = 0u64;

        // Pass 1: encode every frame into `buf`, recording frame lengths.
        // LSNs are assigned here but *not* committed to writer state.
        let mut frame_lens = Vec::with_capacity(entries.len());
        for (i, (table, kind)) in entries.iter().enumerate() {
            let lsn = Lsn(lsn0.0 + i as u64);
            let framed = if compress {
                payload.clear();
                entry::encode_parts_into(payload, lsn, table, kind);
                if payload.len() >= MIN_COMPRESS_BYTES {
                    let compressed_len = lz4_compress(payload, lz4);
                    // Marker + raw-length preamble must still win.
                    if compressed_len + 5 < payload.len() {
                        saved_bytes += (payload.len() - compressed_len - 5) as u64;
                        codec::encode_frame_with(buf, |dst| {
                            dst.extend_from_slice(&[COMPRESSED_MARKER]);
                            dst.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                            dst.extend_from_slice(lz4);
                        })
                    } else {
                        codec::encode_frame(buf, payload)
                    }
                } else {
                    codec::encode_frame(buf, payload)
                }
            } else {
                codec::encode_frame_with(buf, |dst| entry::encode_parts_into(dst, lsn, table, kind))
            };
            frame_lens.push(framed);
        }

        // Pass 2 (plan): split the frame sequence into chunks so no
        // segment is pushed past `segment_bytes` by a frame that could
        // have started a fresh one. An entry bigger than a whole segment
        // gets a segment of its own — the one unavoidable overshoot.
        let mut chunks: Vec<Chunk> = Vec::with_capacity(1);
        let mut seg = state.segment;
        let mut seg_len = state.segment_len;
        let mut positions = Vec::with_capacity(entries.len());
        let mut byte_pos = 0usize;
        let mut open: Option<Chunk> = None;
        for (i, &flen) in frame_lens.iter().enumerate() {
            if seg_len > 0 && seg_len + flen as u64 > self.config.segment_bytes {
                if let Some(c) = open.take() {
                    chunks.push(c);
                }
                seg += 1;
                seg_len = 0;
            }
            let chunk = open.get_or_insert(Chunk {
                entries: i..i,
                bytes: byte_pos..byte_pos,
                segment: seg,
                base_offset: seg_len,
            });
            positions.push((
                Lsn(lsn0.0 + i as u64),
                LogPtr::new(seg, seg_len, flen as u32),
            ));
            chunk.entries.end = i + 1;
            chunk.bytes.end = byte_pos + flen;
            seg_len += flen as u64;
            byte_pos += flen;
        }
        if let Some(c) = open.take() {
            chunks.push(c);
        }

        // Pass 3 (apply): flush chunk by chunk, rotating between chunks.
        // Writer state advances only as far as the DFS confirmed, so an
        // error burns exactly the LSNs that are durable in the log.
        let rotations = chunks.len().saturating_sub(1);
        let mut flush = || -> Result<()> {
            for chunk in &chunks {
                while state.segment < chunk.segment {
                    self.rotate_locked(state)?;
                }
                crash_point!(self.dfs, "wal.append_batch.chunk");
                let name = segment_name(&self.config.prefix, chunk.segment);
                let off = self
                    .dfs
                    .append(&name, &buf[chunk.bytes.start..chunk.bytes.end])?;
                debug_assert_eq!(off, chunk.base_offset, "append landed at planned offset");
                state.segment_len = chunk.base_offset + (chunk.bytes.len() as u64);
                state.next_lsn = Lsn(lsn0.0 + chunk.entries.end as u64);
            }
            Ok(())
        };
        flush()?;

        Metrics::incr(&self.metrics.wal_batches_committed);
        Metrics::add(&self.metrics.wal_batched_entries, entries.len() as u64);
        Metrics::add(&self.metrics.wal_compression_saved_bytes, saved_bytes);
        Metrics::add(&self.metrics.wal_mid_batch_rotations, rotations as u64);
        Ok(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogEntryKind;
    use logbase_common::{Record, Timestamp};
    use logbase_dfs::DfsConfig;

    fn writer(segment_bytes: u64) -> (Dfs, LogWriter) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_segment_bytes(segment_bytes),
        )
        .unwrap();
        (dfs, w)
    }

    fn put_kind(key: &str, ts: u64) -> LogEntryKind {
        LogEntryKind::Write {
            txn_id: 0,
            tablet: 0,
            record: Record::put(key.as_bytes().to_vec(), 0, Timestamp(ts), vec![0u8; 16]),
        }
    }

    fn put_kind_sized(key: &str, ts: u64, value_bytes: usize) -> LogEntryKind {
        LogEntryKind::Write {
            txn_id: 0,
            tablet: 0,
            record: Record::put(
                key.as_bytes().to_vec(),
                0,
                Timestamp(ts),
                vec![0x5au8; value_bytes],
            ),
        }
    }

    #[test]
    fn lsns_are_dense_and_increasing() {
        let (_dfs, w) = writer(1 << 20);
        let a = w.append("t", put_kind("a", 1)).unwrap();
        let b = w.append("t", put_kind("b", 2)).unwrap();
        assert_eq!(a.0, Lsn(1));
        assert_eq!(b.0, Lsn(2));
        assert!(b.1.offset > a.1.offset);
    }

    #[test]
    fn batch_is_one_dfs_append() {
        let (dfs, w) = writer(1 << 20);
        let before = dfs.metrics().snapshot().dfs_appends;
        let batch: Vec<_> = (0..10)
            .map(|i| ("t".to_string(), put_kind(&format!("k{i}"), i)))
            .collect();
        let pos = w.append_batch(&batch).unwrap();
        assert_eq!(pos.len(), 10);
        assert_eq!(dfs.metrics().snapshot().dfs_appends - before, 1);
        // Positions are contiguous.
        for win in pos.windows(2) {
            assert_eq!(win[0].1.offset + u64::from(win[0].1.len), win[1].1.offset);
        }
    }

    #[test]
    fn rotation_seals_and_creates_segments() {
        let (dfs, w) = writer(64); // tiny segments force rotation
        for i in 0..20 {
            w.append("t", put_kind(&format!("key-{i}"), i)).unwrap();
        }
        assert!(w.current_segment() >= 2);
        let segs = dfs.list("srv-0/log/segment-");
        assert_eq!(segs.len() as u32, w.current_segment() + 1);
        // All but the open segment are sealed.
        for s in &segs[..segs.len() - 1] {
            assert!(dfs.append(s, b"x").is_err(), "{s} should be sealed");
        }
    }

    /// Regression (ISSUE 9): one batch bigger than a whole segment used
    /// to land in a single segment, overshooting `segment_bytes` without
    /// bound. The batch must now be split across rotations mid-encode.
    #[test]
    fn oversized_batch_is_split_so_sealed_segments_honor_the_cap() {
        let segment_bytes = 512u64;
        let (dfs, w) = writer(segment_bytes);
        // ~80 bytes per frame, 40 entries ≈ 6x the segment cap.
        let batch: Vec<_> = (0..40)
            .map(|i| ("t".to_string(), put_kind_sized(&format!("k{i:02}"), i, 24)))
            .collect();
        let before = dfs.metrics().snapshot();
        let pos = w.append_batch(&batch).unwrap();
        let after = dfs.metrics().snapshot();
        assert!(
            w.current_segment() >= 4,
            "batch was not split: still in segment {}",
            w.current_segment()
        );
        assert_eq!(
            after.wal_mid_batch_rotations - before.wal_mid_batch_rotations,
            { u64::from(w.current_segment()) }
        );
        // Every sealed segment respects the cap (no frame is larger than
        // a segment here, so no overshoot is excusable).
        let segs = dfs.list("srv-0/log/segment-");
        for s in &segs[..segs.len() - 1] {
            let len = dfs.len(s).unwrap();
            assert!(
                len <= segment_bytes,
                "sealed segment {s} holds {len} bytes > cap {segment_bytes}"
            );
        }
        // Every pointer resolves and the scan sees everything in order.
        for (lsn, ptr) in &pos {
            let e = crate::read_entry(&dfs, "srv-0/log", *ptr).unwrap();
            assert_eq!(e.lsn, *lsn);
        }
        let mut lsns = Vec::new();
        crate::scan_log(&dfs, "srv-0/log", 0, 0, |_, e| {
            lsns.push(e.lsn.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(lsns, (1..=40).collect::<Vec<_>>());
    }

    /// An entry larger than `segment_bytes` still lands (in a segment of
    /// its own); neighbors are not dragged past the cap with it.
    #[test]
    fn entry_larger_than_segment_gets_its_own_segment() {
        let (dfs, w) = writer(256);
        let batch = vec![
            ("t".to_string(), put_kind_sized("small-a", 1, 16)),
            ("t".to_string(), put_kind_sized("huge", 2, 600)),
            ("t".to_string(), put_kind_sized("small-b", 3, 16)),
        ];
        let pos = w.append_batch(&batch).unwrap();
        assert_eq!(pos.len(), 3);
        // The huge entry is alone in its segment.
        assert_ne!(pos[0].1.segment, pos[1].1.segment);
        assert_ne!(pos[1].1.segment, pos[2].1.segment);
        for (lsn, ptr) in &pos {
            assert_eq!(
                crate::read_entry(&dfs, "srv-0/log", *ptr).unwrap().lsn,
                *lsn
            );
        }
    }

    /// Regression (ISSUE 9): a failed append used to advance `next_lsn`
    /// anyway, burning the whole batch's LSNs and leaving a recovery gap.
    /// A batch that never reached the DFS must roll its LSNs back so a
    /// retry keeps the sequence dense.
    #[test]
    fn failed_append_rolls_lsns_back_for_dense_retry() {
        use logbase_common::retry::RetryPolicy;
        let dir = tempfile::tempdir().unwrap();
        let dfs =
            Dfs::new(DfsConfig::on_disk(dir.path(), 3, 2).with_retry(RetryPolicy::no_delay(2)));
        let w = LogWriter::create(dfs.clone(), LogConfig::new("srv-0/log")).unwrap();
        w.append("t", put_kind("before", 1)).unwrap();
        assert_eq!(w.next_lsn(), Lsn(2));

        // Transient total outage: the batch append must fail...
        for id in 0..3 {
            dfs.kill_node(id);
        }
        let batch: Vec<_> = (0..5)
            .map(|i| ("t".to_string(), put_kind(&format!("k{i}"), i)))
            .collect();
        assert!(w.append_batch(&batch).is_err());
        // ...and burn nothing.
        assert_eq!(w.next_lsn(), Lsn(2), "failed batch burned LSNs");

        // The outage clears; the retry gets the same dense LSNs.
        for id in 0..3 {
            dfs.restart_node(id);
        }
        let pos = w.append_batch(&batch).unwrap();
        assert_eq!(
            pos.iter().map(|(l, _)| l.0).collect::<Vec<_>>(),
            vec![2, 3, 4, 5, 6]
        );
        // Dense LSNs and resolvable pointers across the whole log.
        let mut lsns = Vec::new();
        crate::scan_log(&dfs, "srv-0/log", 0, 0, |_, e| {
            lsns.push(e.lsn.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(lsns, vec![1, 2, 3, 4, 5, 6]);
        for (lsn, ptr) in &pos {
            assert_eq!(
                crate::read_entry(&dfs, "srv-0/log", *ptr).unwrap().lsn,
                *lsn
            );
        }
    }

    #[test]
    fn compressed_batches_round_trip_and_save_bytes() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_compression(Compression::Lz4),
        )
        .unwrap();
        let batch: Vec<_> = (0..20)
            .map(|i| {
                (
                    "t".to_string(),
                    put_kind_sized(&format!("key-{i:03}"), i, 400),
                )
            })
            .collect();
        let before = dfs.metrics().snapshot();
        let pos = w.append_batch(&batch).unwrap();
        let after = dfs.metrics().snapshot();
        assert!(
            after.wal_compression_saved_bytes > before.wal_compression_saved_bytes,
            "repetitive 400-byte values did not compress"
        );
        // Point reads and scans decode transparently.
        for (i, (lsn, ptr)) in pos.iter().enumerate() {
            let e = crate::read_entry(&dfs, "srv-0/log", *ptr).unwrap();
            assert_eq!(e.lsn, *lsn);
            let (rec, _, _) = e.as_write().unwrap();
            assert_eq!(rec.meta.key, format!("key-{i:03}").as_bytes());
            assert_eq!(rec.value_len(), 400);
        }
        let n = crate::scan_log(&dfs, "srv-0/log", 0, 0, |_, _| Ok(())).unwrap();
        assert_eq!(n, 20);
    }

    #[test]
    fn tiny_entries_stay_raw_under_compression() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_compression(Compression::Lz4),
        )
        .unwrap();
        let before = dfs.metrics().snapshot().wal_compression_saved_bytes;
        // Key+value too small to clear MIN_COMPRESS_BYTES.
        w.append("t", put_kind_sized("k", 1, 4)).unwrap();
        assert_eq!(dfs.metrics().snapshot().wal_compression_saved_bytes, before);
    }

    #[test]
    fn buffer_pooling_off_still_round_trips() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_buffer_pooling(false),
        )
        .unwrap();
        for i in 0..10 {
            w.append("t", put_kind(&format!("k{i}"), i)).unwrap();
        }
        let n = crate::scan_log(&dfs, "srv-0/log", 0, 0, |_, _| Ok(())).unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn reopen_continues_numbering() {
        let (dfs, w) = writer(64);
        for i in 0..10 {
            w.append("t", put_kind(&format!("key-{i}"), i)).unwrap();
        }
        let seg = w.current_segment();
        let next = w.next_lsn();
        drop(w);
        let w2 = LogWriter::reopen(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_segment_bytes(64),
            next,
        )
        .unwrap();
        assert_eq!(w2.current_segment(), seg);
        let (lsn, _) = w2.append("t", put_kind("after", 100)).unwrap();
        assert_eq!(lsn, next);
    }

    #[test]
    fn reopen_on_empty_prefix_creates_segment_zero() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::reopen(dfs, LogConfig::new("fresh/log"), Lsn(1)).unwrap();
        assert_eq!(w.current_segment(), 0);
        w.append("t", put_kind("x", 1)).unwrap();
    }

    #[test]
    fn reopen_after_torn_tail_rotates_to_fresh_segment() {
        let (dfs, w) = writer(1 << 20);
        w.append("t", put_kind("a", 1)).unwrap();
        let (_, p2) = w.append("t", put_kind("b", 2)).unwrap();
        let next = w.next_lsn();
        let seg = w.current_segment();
        drop(w);
        // Crash mid-append: half a frame lands at the segment tail.
        let torn = [200u8, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, b'p', b'a', b'r'];
        dfs.append(&segment_name("srv-0/log", seg), &torn).unwrap();

        let w2 = LogWriter::reopen(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_segment_bytes(1 << 20),
            next,
        )
        .unwrap();
        // The damaged segment is retired; writing resumed in a new one.
        assert_eq!(w2.current_segment(), seg + 1);
        let (lsn, ptr) = w2.append("t", put_kind("c", 3)).unwrap();
        assert_eq!(lsn, next);
        assert_eq!(ptr.segment, seg + 1);
        // Pre-crash entries and the post-crash entry all replay; the torn
        // frame is skipped.
        let mut lsns = Vec::new();
        crate::reader::scan_log_tolerant(&dfs, "srv-0/log", 0, 0, |_, e| {
            lsns.push(e.lsn.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(lsns, vec![1, 2, 3]);
        // Point reads of pre-crash entries still work.
        assert!(crate::reader::read_entry(&dfs, "srv-0/log", p2).is_ok());
    }

    #[test]
    fn failing_gate_rejects_appends_without_touching_the_log() {
        use logbase_common::Error;
        let (dfs, w) = writer(1 << 20);
        w.append("t", put_kind("a", 1)).unwrap();
        let before = dfs.metrics().snapshot().dfs_appends;
        w.set_gate(Arc::new(|| {
            Err(Error::Fenced {
                server: "srv-0".into(),
                held: 1,
                current: 2,
            })
        }));
        let err = w.append("t", put_kind("b", 2)).unwrap_err();
        assert!(matches!(err, Error::Fenced { .. }));
        assert_eq!(dfs.metrics().snapshot().dfs_appends, before);
        assert_eq!(w.next_lsn(), Lsn(2), "rejected batch must not burn LSNs");
        // Replacing the gate with a passing one re-admits writes.
        w.set_gate(Arc::new(|| Ok(())));
        w.append("t", put_kind("c", 3)).unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (dfs, w) = writer(1 << 20);
        let before = dfs.metrics().snapshot().dfs_appends;
        assert!(w.append_batch(&[]).unwrap().is_empty());
        assert_eq!(dfs.metrics().snapshot().dfs_appends, before);
    }
}
