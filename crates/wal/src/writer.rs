//! Log writer: framed appends with segment rotation.

use crate::entry::LogEntry;
use crate::segment_name;
use bytes::BytesMut;
use logbase_common::codec;
use logbase_common::config::DEFAULT_SEGMENT_BYTES;
use logbase_common::{LogPtr, Lsn, Result};
use logbase_dfs::Dfs;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Pre-append admission check. Installed by the owning tablet server to
/// carry its fencing token: a gate that returns `Error::Fenced` stops a
/// zombie's appends before they reach the DFS.
pub type WriteGate = Arc<dyn Fn() -> Result<()> + Send + Sync>;

/// Log writer configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// DFS name prefix for this log instance, e.g. `"srv-3/log"`.
    pub prefix: String,
    /// Segment rotation threshold in bytes (paper default 64 MB).
    pub segment_bytes: u64,
}

impl LogConfig {
    /// Config with the paper's default segment size.
    pub fn new(prefix: impl Into<String>) -> Self {
        LogConfig {
            prefix: prefix.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }

    /// Builder-style segment-size override.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }
}

struct WriterState {
    /// Sequence number of the open segment.
    segment: u32,
    /// Bytes already in the open segment.
    segment_len: u64,
    /// Next LSN to assign.
    next_lsn: Lsn,
}

/// Appends framed [`LogEntry`]s to the segmented log.
///
/// One writer exists per tablet server (the paper's single-log-instance
/// design choice, §3.4). The writer assigns LSNs, so entries handed to
/// [`LogWriter::append_batch`] carry their final LSN in the result.
pub struct LogWriter {
    dfs: Dfs,
    config: LogConfig,
    state: Mutex<WriterState>,
    gate: RwLock<Option<WriteGate>>,
}

impl LogWriter {
    /// Create a fresh log (starts at segment 0, LSN 1).
    pub fn create(dfs: Dfs, config: LogConfig) -> Result<Self> {
        dfs.create(&segment_name(&config.prefix, 0))?;
        Ok(LogWriter {
            dfs,
            config,
            state: Mutex::new(WriterState {
                segment: 0,
                segment_len: 0,
                next_lsn: Lsn(1),
            }),
            gate: RwLock::new(None),
        })
    }

    /// Re-open an existing log after recovery: continue at `next_lsn`
    /// after the last segment found under the prefix.
    ///
    /// If a crash left a torn frame at the tail of the last segment, the
    /// damaged segment is sealed as-is and writing resumes in a fresh
    /// segment — new appends must never land *after* garbage bytes, or
    /// every later scan would stop at the tear and miss them.
    pub fn reopen(dfs: Dfs, config: LogConfig, next_lsn: Lsn) -> Result<Self> {
        let last = dfs
            .list(&format!("{}/segment-", config.prefix))
            .into_iter()
            .filter_map(|n| crate::parse_segment_name(&config.prefix, &n))
            .max();
        let (segment, segment_len) = match last {
            Some(seq) => {
                let name = segment_name(&config.prefix, seq);
                let raw_len = dfs.len(&name)?;
                let valid_len = crate::reader::valid_prefix_len(&dfs, &name)?;
                if valid_len < raw_len {
                    // Torn tail: retire the damaged segment, start clean.
                    let _ = dfs.seal(&name);
                    dfs.create(&segment_name(&config.prefix, seq + 1))?;
                    (seq + 1, 0)
                } else {
                    (seq, raw_len)
                }
            }
            None => {
                dfs.create(&segment_name(&config.prefix, 0))?;
                (0, 0)
            }
        };
        Ok(LogWriter {
            dfs,
            config,
            state: Mutex::new(WriterState {
                segment,
                segment_len,
                next_lsn,
            }),
            gate: RwLock::new(None),
        })
    }

    /// Install (or replace) the pre-append admission gate. The gate runs
    /// under the writer lock at the head of every
    /// [`append_batch`](Self::append_batch), so after a gate starts
    /// failing no further batch enters the log. An append already past
    /// its gate check when the lease expires can still land — that
    /// residual window is closed at the read side: failover rebuilds only
    /// replay entries up to the rebuild's scan point, and clients never
    /// route to the fenced server again.
    pub fn set_gate(&self, gate: WriteGate) {
        *self.gate.write() = Some(gate);
    }

    /// The DFS prefix of this log instance.
    pub fn prefix(&self) -> &str {
        &self.config.prefix
    }

    /// Sequence number of the currently open segment.
    pub fn current_segment(&self) -> u32 {
        self.state.lock().segment
    }

    /// The LSN the next appended entry will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.state.lock().next_lsn
    }

    /// Current append position `(segment, offset)` — everything before
    /// it is durable. Checkpoints record this as the redo start.
    pub fn position(&self) -> (u32, u64) {
        let s = self.state.lock();
        (s.segment, s.segment_len)
    }

    /// Set the next LSN (recovery: after redo determines the highest LSN
    /// in the log, the writer resumes after it).
    pub fn set_next_lsn(&self, lsn: Lsn) {
        self.state.lock().next_lsn = lsn;
    }

    /// Seal the open segment and start a new one (compaction snapshots
    /// the sealed prefix of the log this way). Returns the sequence
    /// number of the new open segment.
    pub fn rotate(&self) -> Result<u32> {
        let mut state = self.state.lock();
        let old = segment_name(&self.config.prefix, state.segment);
        self.dfs.seal(&old)?;
        state.segment += 1;
        state.segment_len = 0;
        self.dfs
            .create(&segment_name(&self.config.prefix, state.segment))?;
        Ok(state.segment)
    }

    /// Append one entry; see [`LogWriter::append_batch`].
    pub fn append(&self, table: &str, kind: crate::LogEntryKind) -> Result<(Lsn, LogPtr)> {
        let mut out = self.append_batch(&[(table.to_string(), kind)])?;
        Ok(out.pop().expect("batch of one yields one position"))
    }

    /// Append a batch of entries in **one replicated DFS write** (group
    /// commit). Returns the `(Lsn, LogPtr)` assigned to each entry, in
    /// order. The call returns only after the bytes are replicated, so
    /// a returned position implies durability (Guarantee 1).
    pub fn append_batch(
        &self,
        entries: &[(String, crate::LogEntryKind)],
    ) -> Result<Vec<(Lsn, LogPtr)>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let mut state = self.state.lock();

        // Admission check under the writer lock, before any state
        // mutation: a fenced writer contributes nothing to the log.
        if let Some(gate) = self.gate.read().clone() {
            gate()?;
        }

        // Rotate before the batch if the open segment is full.
        if state.segment_len >= self.config.segment_bytes {
            let old = segment_name(&self.config.prefix, state.segment);
            self.dfs.seal(&old)?;
            state.segment += 1;
            state.segment_len = 0;
            self.dfs
                .create(&segment_name(&self.config.prefix, state.segment))?;
        }

        let mut buf = BytesMut::new();
        let mut positions = Vec::with_capacity(entries.len());
        let base_offset = state.segment_len;
        for (table, kind) in entries {
            let lsn = state.next_lsn;
            state.next_lsn = state.next_lsn.next();
            let entry = LogEntry {
                lsn,
                table: table.clone(),
                kind: kind.clone(),
            };
            let start = buf.len() as u64;
            let framed = codec::encode_frame(&mut buf, &entry.encode());
            positions.push((
                lsn,
                LogPtr::new(state.segment, base_offset + start, framed as u32),
            ));
        }
        let name = segment_name(&self.config.prefix, state.segment);
        let off = self.dfs.append(&name, &buf)?;
        debug_assert_eq!(off, base_offset, "append landed at planned offset");
        state.segment_len += buf.len() as u64;
        Ok(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogEntryKind;
    use logbase_common::{Record, Timestamp};
    use logbase_dfs::DfsConfig;

    fn writer(segment_bytes: u64) -> (Dfs, LogWriter) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::create(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_segment_bytes(segment_bytes),
        )
        .unwrap();
        (dfs, w)
    }

    fn put_kind(key: &str, ts: u64) -> LogEntryKind {
        LogEntryKind::Write {
            txn_id: 0,
            tablet: 0,
            record: Record::put(key.as_bytes().to_vec(), 0, Timestamp(ts), vec![0u8; 16]),
        }
    }

    #[test]
    fn lsns_are_dense_and_increasing() {
        let (_dfs, w) = writer(1 << 20);
        let a = w.append("t", put_kind("a", 1)).unwrap();
        let b = w.append("t", put_kind("b", 2)).unwrap();
        assert_eq!(a.0, Lsn(1));
        assert_eq!(b.0, Lsn(2));
        assert!(b.1.offset > a.1.offset);
    }

    #[test]
    fn batch_is_one_dfs_append() {
        let (dfs, w) = writer(1 << 20);
        let before = dfs.metrics().snapshot().dfs_appends;
        let batch: Vec<_> = (0..10)
            .map(|i| ("t".to_string(), put_kind(&format!("k{i}"), i)))
            .collect();
        let pos = w.append_batch(&batch).unwrap();
        assert_eq!(pos.len(), 10);
        assert_eq!(dfs.metrics().snapshot().dfs_appends - before, 1);
        // Positions are contiguous.
        for win in pos.windows(2) {
            assert_eq!(win[0].1.offset + u64::from(win[0].1.len), win[1].1.offset);
        }
    }

    #[test]
    fn rotation_seals_and_creates_segments() {
        let (dfs, w) = writer(64); // tiny segments force rotation
        for i in 0..20 {
            w.append("t", put_kind(&format!("key-{i}"), i)).unwrap();
        }
        assert!(w.current_segment() >= 2);
        let segs = dfs.list("srv-0/log/segment-");
        assert_eq!(segs.len() as u32, w.current_segment() + 1);
        // All but the open segment are sealed.
        for s in &segs[..segs.len() - 1] {
            assert!(dfs.append(s, b"x").is_err(), "{s} should be sealed");
        }
    }

    #[test]
    fn reopen_continues_numbering() {
        let (dfs, w) = writer(64);
        for i in 0..10 {
            w.append("t", put_kind(&format!("key-{i}"), i)).unwrap();
        }
        let seg = w.current_segment();
        let next = w.next_lsn();
        drop(w);
        let w2 = LogWriter::reopen(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_segment_bytes(64),
            next,
        )
        .unwrap();
        assert_eq!(w2.current_segment(), seg);
        let (lsn, _) = w2.append("t", put_kind("after", 100)).unwrap();
        assert_eq!(lsn, next);
    }

    #[test]
    fn reopen_on_empty_prefix_creates_segment_zero() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let w = LogWriter::reopen(dfs, LogConfig::new("fresh/log"), Lsn(1)).unwrap();
        assert_eq!(w.current_segment(), 0);
        w.append("t", put_kind("x", 1)).unwrap();
    }

    #[test]
    fn reopen_after_torn_tail_rotates_to_fresh_segment() {
        let (dfs, w) = writer(1 << 20);
        w.append("t", put_kind("a", 1)).unwrap();
        let (_, p2) = w.append("t", put_kind("b", 2)).unwrap();
        let next = w.next_lsn();
        let seg = w.current_segment();
        drop(w);
        // Crash mid-append: half a frame lands at the segment tail.
        let torn = [200u8, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, b'p', b'a', b'r'];
        dfs.append(&segment_name("srv-0/log", seg), &torn).unwrap();

        let w2 = LogWriter::reopen(
            dfs.clone(),
            LogConfig::new("srv-0/log").with_segment_bytes(1 << 20),
            next,
        )
        .unwrap();
        // The damaged segment is retired; writing resumed in a new one.
        assert_eq!(w2.current_segment(), seg + 1);
        let (lsn, ptr) = w2.append("t", put_kind("c", 3)).unwrap();
        assert_eq!(lsn, next);
        assert_eq!(ptr.segment, seg + 1);
        // Pre-crash entries and the post-crash entry all replay; the torn
        // frame is skipped.
        let mut lsns = Vec::new();
        crate::reader::scan_log_tolerant(&dfs, "srv-0/log", 0, 0, |_, e| {
            lsns.push(e.lsn.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(lsns, vec![1, 2, 3]);
        // Point reads of pre-crash entries still work.
        assert!(crate::reader::read_entry(&dfs, "srv-0/log", p2).is_ok());
    }

    #[test]
    fn failing_gate_rejects_appends_without_touching_the_log() {
        use logbase_common::Error;
        let (dfs, w) = writer(1 << 20);
        w.append("t", put_kind("a", 1)).unwrap();
        let before = dfs.metrics().snapshot().dfs_appends;
        w.set_gate(Arc::new(|| {
            Err(Error::Fenced {
                server: "srv-0".into(),
                held: 1,
                current: 2,
            })
        }));
        let err = w.append("t", put_kind("b", 2)).unwrap_err();
        assert!(matches!(err, Error::Fenced { .. }));
        assert_eq!(dfs.metrics().snapshot().dfs_appends, before);
        assert_eq!(w.next_lsn(), Lsn(2), "rejected batch must not burn LSNs");
        // Replacing the gate with a passing one re-admits writes.
        w.set_gate(Arc::new(|| Ok(())));
        w.append("t", put_kind("c", 3)).unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (dfs, w) = writer(1 << 20);
        let before = dfs.metrics().snapshot().dfs_appends;
        assert!(w.append_batch(&[]).unwrap().is_empty());
        assert_eq!(dfs.metrics().snapshot().dfs_appends, before);
    }
}
