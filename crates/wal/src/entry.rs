//! Log entry model and binary codec.

use bytes::{Bytes, BytesMut};
use logbase_common::codec;
use logbase_common::{Error, Lsn, Record, RecordMeta, Result, Timestamp};

/// What a log entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntryKind {
    /// A versioned write (insert/update) or tombstone (delete) of one
    /// cell. `txn_id == 0` marks auto-committed single-record operations.
    Write {
        /// Transaction that produced the write (0 = auto-commit).
        txn_id: u64,
        /// Tablet the row belongs to (range index within the table).
        tablet: u32,
        /// The record: key, column group, timestamp and optional value.
        record: Record,
    },
    /// Transaction commit record: writes of `txn_id` with timestamp
    /// `commit_ts` are durable once this entry is persisted (§3.7.2).
    Commit {
        /// Committing transaction.
        txn_id: u64,
        /// Its commit timestamp.
        commit_ts: Timestamp,
    },
    /// Explicit abort marker (lets compaction drop the txn's writes
    /// without scanning past the end of the log).
    Abort {
        /// Aborted transaction.
        txn_id: u64,
    },
    /// Checkpoint marker: index effects up to `index_lsn` are persisted
    /// in the index file named by `index_file` (§3.8).
    Checkpoint {
        /// LSN covered by the persisted index files.
        index_lsn: Lsn,
        /// DFS name of the checkpoint descriptor.
        index_file: String,
    },
    /// DDL record: a table was created with the JSON-serialized schema.
    /// Makes schema changes durable even before the first checkpoint.
    Schema {
        /// `serde_json`-encoded `TableSchema`.
        schema_json: String,
    },
}

/// One log record: LSN + table + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Log sequence number, unique and increasing within one log.
    pub lsn: Lsn,
    /// Owning table name.
    pub table: String,
    /// Payload.
    pub kind: LogEntryKind,
}

const KIND_WRITE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_ABORT: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;
const KIND_SCHEMA: u8 = 5;

impl LogEntry {
    /// Serialize the entry payload (the caller frames it with a CRC).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.approx_payload_len());
        match &self.kind {
            LogEntryKind::Write {
                txn_id,
                tablet,
                record,
            } => {
                buf.extend_from_slice(&[KIND_WRITE]);
                buf.extend_from_slice(&self.lsn.0.to_le_bytes());
                codec::put_bytes(&mut buf, self.table.as_bytes());
                buf.extend_from_slice(&txn_id.to_le_bytes());
                buf.extend_from_slice(&tablet.to_le_bytes());
                buf.extend_from_slice(&record.meta.column_group.to_le_bytes());
                buf.extend_from_slice(&record.meta.timestamp.0.to_le_bytes());
                codec::put_bytes(&mut buf, &record.meta.key);
                match &record.value {
                    Some(v) => {
                        buf.extend_from_slice(&[1]);
                        codec::put_bytes(&mut buf, v);
                    }
                    None => buf.extend_from_slice(&[0]),
                }
            }
            LogEntryKind::Commit { txn_id, commit_ts } => {
                buf.extend_from_slice(&[KIND_COMMIT]);
                buf.extend_from_slice(&self.lsn.0.to_le_bytes());
                codec::put_bytes(&mut buf, self.table.as_bytes());
                buf.extend_from_slice(&txn_id.to_le_bytes());
                buf.extend_from_slice(&commit_ts.0.to_le_bytes());
            }
            LogEntryKind::Abort { txn_id } => {
                buf.extend_from_slice(&[KIND_ABORT]);
                buf.extend_from_slice(&self.lsn.0.to_le_bytes());
                codec::put_bytes(&mut buf, self.table.as_bytes());
                buf.extend_from_slice(&txn_id.to_le_bytes());
            }
            LogEntryKind::Checkpoint {
                index_lsn,
                index_file,
            } => {
                buf.extend_from_slice(&[KIND_CHECKPOINT]);
                buf.extend_from_slice(&self.lsn.0.to_le_bytes());
                codec::put_bytes(&mut buf, self.table.as_bytes());
                buf.extend_from_slice(&index_lsn.0.to_le_bytes());
                codec::put_bytes(&mut buf, index_file.as_bytes());
            }
            LogEntryKind::Schema { schema_json } => {
                buf.extend_from_slice(&[KIND_SCHEMA]);
                buf.extend_from_slice(&self.lsn.0.to_le_bytes());
                codec::put_bytes(&mut buf, self.table.as_bytes());
                codec::put_bytes(&mut buf, schema_json.as_bytes());
            }
        }
        buf.freeze()
    }

    fn approx_payload_len(&self) -> usize {
        match &self.kind {
            LogEntryKind::Write { record, .. } => record.meta.key.len() + record.value_len(),
            LogEntryKind::Checkpoint { index_file, .. } => index_file.len(),
            _ => 0,
        }
    }

    /// Decode an entry payload produced by [`LogEntry::encode`].
    pub fn decode(mut src: Bytes) -> Result<LogEntry> {
        let ctx = "log entry";
        let kind = codec::get_u8(&mut src, ctx)?;
        let lsn = Lsn(codec::get_u64(&mut src, ctx)?);
        let table_bytes = codec::get_bytes(&mut src, ctx)?;
        let table = String::from_utf8(table_bytes.to_vec())
            .map_err(|_| Error::Corruption("log entry table name is not UTF-8".into()))?;
        let kind = match kind {
            KIND_WRITE => {
                let txn_id = codec::get_u64(&mut src, ctx)?;
                let tablet = codec::get_u32(&mut src, ctx)?;
                let column_group = codec::get_u16(&mut src, ctx)?;
                let timestamp = Timestamp(codec::get_u64(&mut src, ctx)?);
                let key = codec::get_bytes(&mut src, ctx)?;
                let has_value = codec::get_u8(&mut src, ctx)?;
                let value = match has_value {
                    0 => None,
                    1 => Some(codec::get_bytes(&mut src, ctx)?),
                    other => {
                        return Err(Error::Corruption(format!(
                            "log entry: bad value flag {other}"
                        )))
                    }
                };
                LogEntryKind::Write {
                    txn_id,
                    tablet,
                    record: Record {
                        meta: RecordMeta {
                            key,
                            column_group,
                            timestamp,
                        },
                        value,
                    },
                }
            }
            KIND_COMMIT => LogEntryKind::Commit {
                txn_id: codec::get_u64(&mut src, ctx)?,
                commit_ts: Timestamp(codec::get_u64(&mut src, ctx)?),
            },
            KIND_ABORT => LogEntryKind::Abort {
                txn_id: codec::get_u64(&mut src, ctx)?,
            },
            KIND_CHECKPOINT => {
                let index_lsn = Lsn(codec::get_u64(&mut src, ctx)?);
                let file_bytes = codec::get_bytes(&mut src, ctx)?;
                LogEntryKind::Checkpoint {
                    index_lsn,
                    index_file: String::from_utf8(file_bytes.to_vec()).map_err(|_| {
                        Error::Corruption("checkpoint file name is not UTF-8".into())
                    })?,
                }
            }
            KIND_SCHEMA => {
                let json_bytes = codec::get_bytes(&mut src, ctx)?;
                LogEntryKind::Schema {
                    schema_json: String::from_utf8(json_bytes.to_vec())
                        .map_err(|_| Error::Corruption("schema entry is not UTF-8".into()))?,
                }
            }
            other => {
                return Err(Error::Corruption(format!(
                    "log entry: unknown kind byte {other}"
                )))
            }
        };
        Ok(LogEntry { lsn, table, kind })
    }

    /// Convenience constructor for an auto-commit write.
    pub fn write(lsn: Lsn, table: impl Into<String>, tablet: u32, record: Record) -> Self {
        LogEntry {
            lsn,
            table: table.into(),
            kind: LogEntryKind::Write {
                txn_id: 0,
                tablet,
                record,
            },
        }
    }

    /// The record inside a `Write` entry, if any.
    pub fn as_write(&self) -> Option<(&Record, u64, u32)> {
        match &self.kind {
            LogEntryKind::Write {
                record,
                txn_id,
                tablet,
            } => Some((record, *txn_id, *tablet)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(e: &LogEntry) -> LogEntry {
        LogEntry::decode(e.encode()).unwrap()
    }

    #[test]
    fn write_round_trip() {
        let e = LogEntry::write(
            Lsn(7),
            "users",
            3,
            Record::put(&b"alice"[..], 1, Timestamp(99), &b"payload"[..]),
        );
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn tombstone_round_trip() {
        let e = LogEntry::write(
            Lsn(8),
            "users",
            0,
            Record::tombstone(&b"bob"[..], 2, Timestamp(100)),
        );
        let back = round_trip(&e);
        assert_eq!(back, e);
        assert!(back.as_write().unwrap().0.is_tombstone());
    }

    #[test]
    fn commit_abort_checkpoint_round_trip() {
        for kind in [
            LogEntryKind::Commit {
                txn_id: 44,
                commit_ts: Timestamp(1000),
            },
            LogEntryKind::Abort { txn_id: 45 },
            LogEntryKind::Checkpoint {
                index_lsn: Lsn(500),
                index_file: "srv-0/ckpt/000007".to_string(),
            },
            LogEntryKind::Schema {
                schema_json: r#"{"name":"orders","column_groups":[]}"#.to_string(),
            },
        ] {
            let e = LogEntry {
                lsn: Lsn(9),
                table: "orders".to_string(),
                kind,
            };
            assert_eq!(round_trip(&e), e);
        }
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut bytes = LogEntry::write(
            Lsn(1),
            "t",
            0,
            Record::put(&b"k"[..], 0, Timestamp(1), &b"v"[..]),
        )
        .encode()
        .to_vec();
        bytes[0] = 200;
        assert!(LogEntry::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = LogEntry::write(
            Lsn(1),
            "table",
            0,
            Record::put(&b"key"[..], 0, Timestamp(1), &b"value"[..]),
        )
        .encode();
        for cut in [0, 1, 5, 10, bytes.len() - 1] {
            assert!(
                LogEntry::decode(bytes.slice(0..cut)).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_write_entries_round_trip(
            lsn in 0u64..u64::MAX,
            table in "[a-z]{1,12}",
            tablet in 0u32..1000,
            txn in 0u64..1_000_000,
            cg in 0u16..16,
            ts in 0u64..u64::MAX,
            key in proptest::collection::vec(any::<u8>(), 0..64),
            value in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..256)),
        ) {
            let record = Record {
                meta: RecordMeta {
                    key: Bytes::from(key),
                    column_group: cg,
                    timestamp: Timestamp(ts),
                },
                value: value.map(Bytes::from),
            };
            let e = LogEntry {
                lsn: Lsn(lsn),
                table,
                kind: LogEntryKind::Write { txn_id: txn, tablet, record },
            };
            prop_assert_eq!(LogEntry::decode(e.encode()).unwrap(), e);
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = LogEntry::decode(Bytes::from(bytes));
        }
    }
}
