//! Log entry model and binary codec.

use bytes::{Bytes, BytesMut};
use logbase_common::codec;
use logbase_common::{Error, Lsn, Record, RecordMeta, Result, Timestamp};

/// What a log entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntryKind {
    /// A versioned write (insert/update) or tombstone (delete) of one
    /// cell. `txn_id == 0` marks auto-committed single-record operations.
    Write {
        /// Transaction that produced the write (0 = auto-commit).
        txn_id: u64,
        /// Tablet the row belongs to (range index within the table).
        tablet: u32,
        /// The record: key, column group, timestamp and optional value.
        record: Record,
    },
    /// Transaction commit record: writes of `txn_id` with timestamp
    /// `commit_ts` are durable once this entry is persisted (§3.7.2).
    Commit {
        /// Committing transaction.
        txn_id: u64,
        /// Its commit timestamp.
        commit_ts: Timestamp,
    },
    /// Explicit abort marker (lets compaction drop the txn's writes
    /// without scanning past the end of the log).
    Abort {
        /// Aborted transaction.
        txn_id: u64,
    },
    /// Checkpoint marker: index effects up to `index_lsn` are persisted
    /// in the index file named by `index_file` (§3.8).
    Checkpoint {
        /// LSN covered by the persisted index files.
        index_lsn: Lsn,
        /// DFS name of the checkpoint descriptor.
        index_file: String,
    },
    /// DDL record: a table was created with the JSON-serialized schema.
    /// Makes schema changes durable even before the first checkpoint.
    Schema {
        /// `serde_json`-encoded `TableSchema`.
        schema_json: String,
    },
}

/// One log record: LSN + table + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Log sequence number, unique and increasing within one log.
    pub lsn: Lsn,
    /// Owning table name.
    pub table: String,
    /// Payload.
    pub kind: LogEntryKind,
}

const KIND_WRITE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_ABORT: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;
const KIND_SCHEMA: u8 = 5;

/// First payload byte of a compressed entry. Raw payloads always start
/// with a kind byte in `1..=5`, so the marker is unambiguous; a frame
/// whose payload opens with it continues `[raw_len: u32][lz4 block]` and
/// decodes to the raw payload it wraps. Readers need no mode flag —
/// compressed and uncompressed frames coexist in one log.
pub(crate) const COMPRESSED_MARKER: u8 = 0xC5;

/// Serialize the payload of entry `(lsn, table, kind)` directly into
/// `dst` — the borrowed-parts twin of [`LogEntry::encode`], used by the
/// batch encoder so building a [`LogEntry`] (and cloning `table`/`kind`
/// into it) never happens on the hot path.
pub fn encode_parts_into(dst: &mut BytesMut, lsn: Lsn, table: &str, kind: &LogEntryKind) {
    match kind {
        LogEntryKind::Write {
            txn_id,
            tablet,
            record,
        } => {
            dst.extend_from_slice(&[KIND_WRITE]);
            dst.extend_from_slice(&lsn.0.to_le_bytes());
            codec::put_bytes(dst, table.as_bytes());
            dst.extend_from_slice(&txn_id.to_le_bytes());
            dst.extend_from_slice(&tablet.to_le_bytes());
            dst.extend_from_slice(&record.meta.column_group.to_le_bytes());
            dst.extend_from_slice(&record.meta.timestamp.0.to_le_bytes());
            codec::put_bytes(dst, &record.meta.key);
            match &record.value {
                Some(v) => {
                    dst.extend_from_slice(&[1]);
                    codec::put_bytes(dst, v);
                }
                None => dst.extend_from_slice(&[0]),
            }
        }
        LogEntryKind::Commit { txn_id, commit_ts } => {
            dst.extend_from_slice(&[KIND_COMMIT]);
            dst.extend_from_slice(&lsn.0.to_le_bytes());
            codec::put_bytes(dst, table.as_bytes());
            dst.extend_from_slice(&txn_id.to_le_bytes());
            dst.extend_from_slice(&commit_ts.0.to_le_bytes());
        }
        LogEntryKind::Abort { txn_id } => {
            dst.extend_from_slice(&[KIND_ABORT]);
            dst.extend_from_slice(&lsn.0.to_le_bytes());
            codec::put_bytes(dst, table.as_bytes());
            dst.extend_from_slice(&txn_id.to_le_bytes());
        }
        LogEntryKind::Checkpoint {
            index_lsn,
            index_file,
        } => {
            dst.extend_from_slice(&[KIND_CHECKPOINT]);
            dst.extend_from_slice(&lsn.0.to_le_bytes());
            codec::put_bytes(dst, table.as_bytes());
            dst.extend_from_slice(&index_lsn.0.to_le_bytes());
            codec::put_bytes(dst, index_file.as_bytes());
        }
        LogEntryKind::Schema { schema_json } => {
            dst.extend_from_slice(&[KIND_SCHEMA]);
            dst.extend_from_slice(&lsn.0.to_le_bytes());
            codec::put_bytes(dst, table.as_bytes());
            codec::put_bytes(dst, schema_json.as_bytes());
        }
    }
}

/// Exact uncompressed payload length [`encode_parts_into`] will produce
/// for `(table, kind)`. The group committer uses this to close batches
/// on a byte budget without encoding anything.
pub fn encoded_len(table: &str, kind: &LogEntryKind) -> usize {
    // kind byte + lsn + (len-prefixed) table name.
    let head = 1 + 8 + 4 + table.len();
    head + match kind {
        LogEntryKind::Write { record, .. } => {
            8 + 4
                + 2
                + 8
                + 4
                + record.meta.key.len()
                + 1
                + record.value.as_ref().map_or(0, |v| 4 + v.len())
        }
        LogEntryKind::Commit { .. } => 8 + 8,
        LogEntryKind::Abort { .. } => 8,
        LogEntryKind::Checkpoint { index_file, .. } => 8 + 4 + index_file.len(),
        LogEntryKind::Schema { schema_json } => 4 + schema_json.len(),
    }
}

impl LogEntry {
    /// Serialize the entry payload (the caller frames it with a CRC).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(encoded_len(&self.table, &self.kind));
        encode_parts_into(&mut buf, self.lsn, &self.table, &self.kind);
        buf.freeze()
    }

    /// Decode an entry payload produced by [`LogEntry::encode`] or by the
    /// batch encoder — transparently inflating compressed payloads
    /// (leading [`COMPRESSED_MARKER`] byte) first.
    pub fn decode(mut src: Bytes) -> Result<LogEntry> {
        let ctx = "log entry";
        if src.first() == Some(&COMPRESSED_MARKER) {
            let _ = codec::get_u8(&mut src, ctx)?;
            let raw_len = codec::get_u32(&mut src, ctx)? as usize;
            if raw_len > codec::MAX_FRAME_LEN {
                return Err(Error::Corruption(format!(
                    "{ctx}: compressed entry announces {raw_len} raw bytes"
                )));
            }
            let raw = logbase_common::compress::lz4_decompress(&src, raw_len, ctx)?;
            src = Bytes::from(raw);
            if src.first() == Some(&COMPRESSED_MARKER) {
                return Err(Error::Corruption(format!(
                    "{ctx}: nested compressed payload"
                )));
            }
        }
        let kind = codec::get_u8(&mut src, ctx)?;
        let lsn = Lsn(codec::get_u64(&mut src, ctx)?);
        let table_bytes = codec::get_bytes(&mut src, ctx)?;
        let table = String::from_utf8(table_bytes.to_vec())
            .map_err(|_| Error::Corruption("log entry table name is not UTF-8".into()))?;
        let kind = match kind {
            KIND_WRITE => {
                let txn_id = codec::get_u64(&mut src, ctx)?;
                let tablet = codec::get_u32(&mut src, ctx)?;
                let column_group = codec::get_u16(&mut src, ctx)?;
                let timestamp = Timestamp(codec::get_u64(&mut src, ctx)?);
                let key = codec::get_bytes(&mut src, ctx)?;
                let has_value = codec::get_u8(&mut src, ctx)?;
                let value = match has_value {
                    0 => None,
                    1 => Some(codec::get_bytes(&mut src, ctx)?),
                    other => {
                        return Err(Error::Corruption(format!(
                            "log entry: bad value flag {other}"
                        )))
                    }
                };
                LogEntryKind::Write {
                    txn_id,
                    tablet,
                    record: Record {
                        meta: RecordMeta {
                            key,
                            column_group,
                            timestamp,
                        },
                        value,
                    },
                }
            }
            KIND_COMMIT => LogEntryKind::Commit {
                txn_id: codec::get_u64(&mut src, ctx)?,
                commit_ts: Timestamp(codec::get_u64(&mut src, ctx)?),
            },
            KIND_ABORT => LogEntryKind::Abort {
                txn_id: codec::get_u64(&mut src, ctx)?,
            },
            KIND_CHECKPOINT => {
                let index_lsn = Lsn(codec::get_u64(&mut src, ctx)?);
                let file_bytes = codec::get_bytes(&mut src, ctx)?;
                LogEntryKind::Checkpoint {
                    index_lsn,
                    index_file: String::from_utf8(file_bytes.to_vec()).map_err(|_| {
                        Error::Corruption("checkpoint file name is not UTF-8".into())
                    })?,
                }
            }
            KIND_SCHEMA => {
                let json_bytes = codec::get_bytes(&mut src, ctx)?;
                LogEntryKind::Schema {
                    schema_json: String::from_utf8(json_bytes.to_vec())
                        .map_err(|_| Error::Corruption("schema entry is not UTF-8".into()))?,
                }
            }
            other => {
                return Err(Error::Corruption(format!(
                    "log entry: unknown kind byte {other}"
                )))
            }
        };
        Ok(LogEntry { lsn, table, kind })
    }

    /// Convenience constructor for an auto-commit write.
    pub fn write(lsn: Lsn, table: impl Into<String>, tablet: u32, record: Record) -> Self {
        LogEntry {
            lsn,
            table: table.into(),
            kind: LogEntryKind::Write {
                txn_id: 0,
                tablet,
                record,
            },
        }
    }

    /// The record inside a `Write` entry, if any.
    pub fn as_write(&self) -> Option<(&Record, u64, u32)> {
        match &self.kind {
            LogEntryKind::Write {
                record,
                txn_id,
                tablet,
            } => Some((record, *txn_id, *tablet)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(e: &LogEntry) -> LogEntry {
        LogEntry::decode(e.encode()).unwrap()
    }

    #[test]
    fn write_round_trip() {
        let e = LogEntry::write(
            Lsn(7),
            "users",
            3,
            Record::put(&b"alice"[..], 1, Timestamp(99), &b"payload"[..]),
        );
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn tombstone_round_trip() {
        let e = LogEntry::write(
            Lsn(8),
            "users",
            0,
            Record::tombstone(&b"bob"[..], 2, Timestamp(100)),
        );
        let back = round_trip(&e);
        assert_eq!(back, e);
        assert!(back.as_write().unwrap().0.is_tombstone());
    }

    #[test]
    fn commit_abort_checkpoint_round_trip() {
        for kind in [
            LogEntryKind::Commit {
                txn_id: 44,
                commit_ts: Timestamp(1000),
            },
            LogEntryKind::Abort { txn_id: 45 },
            LogEntryKind::Checkpoint {
                index_lsn: Lsn(500),
                index_file: "srv-0/ckpt/000007".to_string(),
            },
            LogEntryKind::Schema {
                schema_json: r#"{"name":"orders","column_groups":[]}"#.to_string(),
            },
        ] {
            let e = LogEntry {
                lsn: Lsn(9),
                table: "orders".to_string(),
                kind,
            };
            assert_eq!(round_trip(&e), e);
        }
    }

    #[test]
    fn encoded_len_is_exact_for_every_kind() {
        let kinds = [
            LogEntryKind::Write {
                txn_id: 9,
                tablet: 2,
                record: Record::put(&b"key"[..], 1, Timestamp(5), &b"value"[..]),
            },
            LogEntryKind::Write {
                txn_id: 0,
                tablet: 0,
                record: Record::tombstone(&b"gone"[..], 0, Timestamp(7)),
            },
            LogEntryKind::Commit {
                txn_id: 3,
                commit_ts: Timestamp(44),
            },
            LogEntryKind::Abort { txn_id: 4 },
            LogEntryKind::Checkpoint {
                index_lsn: Lsn(10),
                index_file: "srv/ckpt/1".into(),
            },
            LogEntryKind::Schema {
                schema_json: "{}".into(),
            },
        ];
        for kind in kinds {
            let e = LogEntry {
                lsn: Lsn(12),
                table: "orders".into(),
                kind,
            };
            assert_eq!(
                e.encode().len(),
                super::encoded_len(&e.table, &e.kind),
                "size hint drifted for {:?}",
                e.kind
            );
        }
    }

    #[test]
    fn compressed_payload_decodes_transparently() {
        let e = LogEntry::write(
            Lsn(5),
            "users",
            1,
            Record::put(&b"carol"[..], 0, Timestamp(9), vec![0x42u8; 600]),
        );
        let raw = e.encode();
        let mut block = Vec::new();
        logbase_common::compress::lz4_compress(&raw, &mut block);
        let mut compressed = BytesMut::new();
        compressed.extend_from_slice(&[super::COMPRESSED_MARKER]);
        compressed.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        compressed.extend_from_slice(&block);
        assert!(compressed.len() < raw.len());
        assert_eq!(LogEntry::decode(compressed.freeze()).unwrap(), e);
    }

    #[test]
    fn truncated_compressed_payload_is_corruption_not_panic() {
        let e = LogEntry::write(
            Lsn(5),
            "users",
            1,
            Record::put(&b"dave"[..], 0, Timestamp(9), vec![0x17u8; 300]),
        );
        let raw = e.encode();
        let mut block = Vec::new();
        logbase_common::compress::lz4_compress(&raw, &mut block);
        let mut compressed = BytesMut::new();
        compressed.extend_from_slice(&[super::COMPRESSED_MARKER]);
        compressed.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        compressed.extend_from_slice(&block);
        let full = compressed.freeze();
        for cut in [1, 4, 5, 8, full.len() - 1] {
            assert!(
                LogEntry::decode(full.slice(..cut)).is_err(),
                "decode of {cut}-byte compressed prefix should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut bytes = LogEntry::write(
            Lsn(1),
            "t",
            0,
            Record::put(&b"k"[..], 0, Timestamp(1), &b"v"[..]),
        )
        .encode()
        .to_vec();
        bytes[0] = 200;
        assert!(LogEntry::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = LogEntry::write(
            Lsn(1),
            "table",
            0,
            Record::put(&b"key"[..], 0, Timestamp(1), &b"value"[..]),
        )
        .encode();
        for cut in [0, 1, 5, 10, bytes.len() - 1] {
            assert!(
                LogEntry::decode(bytes.slice(0..cut)).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_write_entries_round_trip(
            lsn in 0u64..u64::MAX,
            table in "[a-z]{1,12}",
            tablet in 0u32..1000,
            txn in 0u64..1_000_000,
            cg in 0u16..16,
            ts in 0u64..u64::MAX,
            key in proptest::collection::vec(any::<u8>(), 0..64),
            value in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..256)),
        ) {
            let record = Record {
                meta: RecordMeta {
                    key: Bytes::from(key),
                    column_group: cg,
                    timestamp: Timestamp(ts),
                },
                value: value.map(Bytes::from),
            };
            let e = LogEntry {
                lsn: Lsn(lsn),
                table,
                kind: LogEntryKind::Write { txn_id: txn, tablet, record },
            };
            prop_assert_eq!(LogEntry::decode(e.encode()).unwrap(), e);
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = LogEntry::decode(Bytes::from(bytes));
        }
    }
}
