//! Write-path crash tests: a server dying mid-batch-append (via the
//! `wal.append_batch.chunk` crash point) must never lose an acked entry,
//! even when the surviving tail of the log is a compressed frame.

use logbase_common::{Error, LogPtr, Lsn, Record, Timestamp};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_wal::{
    read_entry, scan_log_tolerant, segment_name, Compression, LogConfig, LogEntryKind, LogWriter,
};

fn put_sized(key: &str, ts: u64, value_bytes: usize) -> LogEntryKind {
    LogEntryKind::Write {
        txn_id: 0,
        tablet: 0,
        record: Record::put(
            key.as_bytes().to_vec(),
            0,
            Timestamp(ts),
            vec![0x6bu8; value_bytes],
        ),
    }
}

fn batch(tag: &str, n: u64, ts0: u64) -> Vec<(String, LogEntryKind)> {
    (0..n)
        .map(|i| {
            (
                "t".to_string(),
                put_sized(&format!("{tag}-{i:03}"), ts0 + i, 400),
            )
        })
        .collect()
}

/// Crash at the named `wal.append_batch.chunk` site before any bytes of
/// the dying batch land, with a torn half-frame left behind by the
/// in-flight DFS write. The tail of the surviving log is a *compressed*
/// frame; recovery must seal past the tear and replay every acked entry.
#[test]
fn crash_mid_batch_append_replays_every_acked_entry_with_compressed_tail() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
    let config = LogConfig::new("srv/log").with_compression(Compression::Lz4);
    let writer = LogWriter::create(dfs.clone(), config.clone()).unwrap();

    // Two acked batches of compressible entries: the log tail is now a
    // compressed frame.
    let mut acked: Vec<(Lsn, LogPtr)> = Vec::new();
    acked.extend(writer.append_batch(&batch("a", 10, 0)).unwrap());
    acked.extend(writer.append_batch(&batch("b", 10, 100)).unwrap());
    assert!(
        dfs.metrics().snapshot().wal_compression_saved_bytes > 0,
        "tail entries were not written compressed"
    );

    // The server dies mid-append of batch "c": the crash point fires
    // before the chunk reaches the DFS, so nothing of "c" is durable and
    // nothing of "c" was acked.
    dfs.fault_injector()
        .arm_crash_point("wal.append_batch.chunk");
    let err = writer.append_batch(&batch("c", 5, 200)).unwrap_err();
    assert!(matches!(err, Error::CrashPoint { .. }), "got {err}");
    assert_eq!(
        writer.next_lsn(),
        Lsn(21),
        "crashed batch must not burn LSNs"
    );
    let open_segment = writer.current_segment();
    drop(writer);

    // The in-flight DFS write the dying process never finished: half a
    // frame of garbage at the tail, after the compressed acked frames.
    let torn = [0xF0u8, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02];
    dfs.append(&segment_name("srv/log", open_segment), &torn)
        .unwrap();

    // Recovery: reopen seals the damaged segment and resumes cleanly.
    let writer = LogWriter::reopen(dfs.clone(), config, Lsn(21)).unwrap();
    assert_eq!(writer.current_segment(), open_segment + 1);
    let after: Vec<_> = writer.append_batch(&batch("d", 5, 300)).unwrap();
    assert_eq!(after.first().unwrap().0, Lsn(21));

    // Every acked entry — including the compressed pre-crash tail —
    // replays exactly once, in order; the torn frame is skipped.
    let mut lsns = Vec::new();
    scan_log_tolerant(&dfs, "srv/log", 0, 0, |_, e| {
        lsns.push(e.lsn.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(lsns, (1..=25).collect::<Vec<_>>());
    for (lsn, ptr) in acked.iter().chain(&after) {
        assert_eq!(read_entry(&dfs, "srv/log", *ptr).unwrap().lsn, *lsn);
    }
}

/// Crash between the chunks of a multi-segment batch: the durable prefix
/// keeps its LSNs (those frames are in the log), the lost suffix burns
/// nothing, and recovery replays a dense sequence.
#[test]
fn crash_between_chunks_keeps_lsns_dense_across_recovery() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
    let config = LogConfig::new("srv/log")
        .with_segment_bytes(2048)
        .with_compression(Compression::Lz4);
    let writer = LogWriter::create(dfs.clone(), config.clone()).unwrap();
    writer.append_batch(&batch("a", 4, 0)).unwrap();
    let durable_before = writer.next_lsn();

    // A batch spanning several segments, dying on its second chunk.
    dfs.fault_injector()
        .arm_crash_point_at("wal.append_batch.chunk", 2);
    let err = writer.append_batch(&batch("big", 40, 100)).unwrap_err();
    assert!(matches!(err, Error::CrashPoint { .. }), "got {err}");
    let durable_after = writer.next_lsn();
    assert!(
        durable_after > durable_before,
        "first chunk landed, its LSNs stay burned"
    );
    assert!(
        durable_after < Lsn(durable_before.0 + 40),
        "lost chunks must roll their LSNs back"
    );
    drop(writer);

    // Recovery continues exactly after the durable prefix; the log scans
    // densely with no gap where the lost chunks would have been.
    let writer = LogWriter::reopen(dfs.clone(), config, durable_after).unwrap();
    writer.append_batch(&batch("after", 3, 900)).unwrap();
    let mut lsns = Vec::new();
    scan_log_tolerant(&dfs, "srv/log", 0, 0, |_, e| {
        lsns.push(e.lsn.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(lsns, (1..=(durable_after.0 + 2)).collect::<Vec<_>>());
}
