//! Property tests on the log: arbitrary batch shapes and segment sizes
//! round-trip through append → point-read → scan, and every pointer the
//! writer returns resolves to its entry.

use logbase_common::{Record, Timestamp};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_wal::{scan_log, Compression, LogConfig, LogEntryKind, LogWriter};
use proptest::prelude::*;

fn kind_of(key: Vec<u8>, ts: u64, value: Vec<u8>, tombstone: bool) -> LogEntryKind {
    let record = if tombstone {
        Record::tombstone(key, 0, Timestamp(ts))
    } else {
        Record::put(key, 0, Timestamp(ts), value)
    };
    LogEntryKind::Write {
        txn_id: 0,
        tablet: 0,
        record,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32
        })]

    /// Batches of arbitrary sizes, tiny rotating segments: LSNs are
    /// dense, pointers resolve, scans return everything in order.
    #[test]
    fn prop_log_round_trip(
        segment_bytes in 64u64..2048,
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..16),
                 any::<u64>(),
                 proptest::collection::vec(any::<u8>(), 0..48),
                 any::<bool>()),
                1..8),
            1..12),
    ) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let writer = LogWriter::create(
            dfs.clone(),
            LogConfig::new("p/log").with_segment_bytes(segment_bytes),
        )
        .unwrap();
        let mut expected = Vec::new();
        let mut positions = Vec::new();
        for batch in &batches {
            let entries: Vec<(String, LogEntryKind)> = batch
                .iter()
                .map(|(k, ts, v, tomb)| {
                    ("t".to_string(), kind_of(k.clone(), *ts, v.clone(), *tomb))
                })
                .collect();
            let pos = writer.append_batch(&entries).unwrap();
            prop_assert_eq!(pos.len(), entries.len());
            positions.extend(pos.iter().map(|(_, p)| *p));
            expected.extend(entries.into_iter().map(|(_, k)| k));
        }
        // LSNs are dense starting at 1.
        prop_assert_eq!(writer.next_lsn().0, expected.len() as u64 + 1);

        // Every pointer resolves to its entry.
        for (ptr, kind) in positions.iter().zip(&expected) {
            let entry = logbase_wal::read_entry(&dfs, "p/log", *ptr).unwrap();
            prop_assert_eq!(&entry.kind, kind);
        }

        // A full scan returns everything, in order, with matching LSNs.
        let mut scanned = Vec::new();
        scan_log(&dfs, "p/log", 0, 0, |ptr, entry| {
            scanned.push((ptr, entry));
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(scanned.len(), expected.len());
        for (i, ((ptr, entry), kind)) in scanned.iter().zip(&expected).enumerate() {
            prop_assert_eq!(entry.lsn.0, i as u64 + 1);
            prop_assert_eq!(&entry.kind, kind);
            prop_assert_eq!(ptr, &positions[i]);
        }
    }

    /// Compressed and raw frames coexist in one log: batches written
    /// with compression toggling per batch (and values spanning the
    /// compressible / incompressible / below-threshold range) round-trip
    /// through point reads and a full scan, byte-for-byte.
    #[test]
    fn prop_mixed_compressed_and_raw_batches_round_trip(
        segment_bytes in 128u64..4096,
        batches in proptest::collection::vec(
            (any::<bool>(), // compress this batch?
             proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..16),
                 any::<u64>(),
                 // 0..300 straddles MIN_COMPRESS_BYTES on both sides.
                 proptest::collection::vec(any::<u8>(), 0..300),
                 any::<bool>()),
                1..8)),
            1..10),
    ) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let mut expected = Vec::new();
        let mut positions = Vec::new();
        let mut next = logbase_common::Lsn(1);
        for (i, (compress, batch)) in batches.iter().enumerate() {
            // Reopen the log with a different compression setting per
            // batch: the on-disk format must not care.
            let config = LogConfig::new("p/log")
                .with_segment_bytes(segment_bytes)
                .with_compression(if *compress { Compression::Lz4 } else { Compression::None });
            let writer = if i == 0 {
                LogWriter::create(dfs.clone(), config).unwrap()
            } else {
                LogWriter::reopen(dfs.clone(), config, next).unwrap()
            };
            let entries: Vec<(String, LogEntryKind)> = batch
                .iter()
                .map(|(k, ts, v, tomb)| {
                    ("t".to_string(), kind_of(k.clone(), *ts, v.clone(), *tomb))
                })
                .collect();
            let pos = writer.append_batch(&entries).unwrap();
            positions.extend(pos.iter().map(|(_, p)| *p));
            expected.extend(entries.into_iter().map(|(_, k)| k));
            next = writer.next_lsn();
        }
        prop_assert_eq!(next.0, expected.len() as u64 + 1);
        // Point reads decode both frame styles transparently.
        for (ptr, kind) in positions.iter().zip(&expected) {
            let entry = logbase_wal::read_entry(&dfs, "p/log", *ptr).unwrap();
            prop_assert_eq!(&entry.kind, kind);
        }
        // So does a sequential scan.
        let mut scanned = Vec::new();
        scan_log(&dfs, "p/log", 0, 0, |ptr, entry| {
            scanned.push((ptr, entry));
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(scanned.len(), expected.len());
        for (i, ((ptr, entry), kind)) in scanned.iter().zip(&expected).enumerate() {
            prop_assert_eq!(entry.lsn.0, i as u64 + 1);
            prop_assert_eq!(&entry.kind, kind);
            prop_assert_eq!(ptr, &positions[i]);
        }
    }

    /// Reopening mid-stream preserves positions: entries written before
    /// and after a reopen all scan back.
    #[test]
    fn prop_reopen_preserves_log(
        first in 1usize..20,
        second in 1usize..20,
        segment_bytes in 64u64..512,
    ) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let config = LogConfig::new("p/log").with_segment_bytes(segment_bytes);
        let writer = LogWriter::create(dfs.clone(), config.clone()).unwrap();
        for i in 0..first {
            writer
                .append("t", kind_of(vec![i as u8], i as u64, vec![7; 8], false))
                .unwrap();
        }
        let next = writer.next_lsn();
        drop(writer);
        let writer = LogWriter::reopen(dfs.clone(), config, next).unwrap();
        for i in 0..second {
            writer
                .append("t", kind_of(vec![i as u8], i as u64, vec![9; 8], false))
                .unwrap();
        }
        let mut count = 0;
        let mut last_lsn = 0;
        scan_log(&dfs, "p/log", 0, 0, |_, entry| {
            count += 1;
            assert!(entry.lsn.0 > last_lsn, "LSNs must increase");
            last_lsn = entry.lsn.0;
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(count, first + second);
    }
}
